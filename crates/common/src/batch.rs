//! Columnar batches for the mediator's combine phase.
//!
//! The row representation ([`Tuple`]) keeps every cell as a heap
//! [`Value`] — convenient at the wrapper boundary but slow for the
//! mediator's local composition operators, where a select touches one
//! column and a join clones whole rows. A [`Batch`] stores the same
//! rows column-major:
//!
//! * numbers and booleans live in flat `Vec<i64>` / `Vec<f64>` /
//!   `Vec<bool>` vectors;
//! * strings are dictionary-encoded (`u32` codes into a shared,
//!   `Arc`-ed dictionary), so equality and hashing touch fixed-width
//!   codes and gathers never copy string bytes;
//! * nulls are tracked in a validity [`Bitmap`]; a column with mixed
//!   type families degrades to an exact [`Value`] vector
//!   ([`ColumnData::Any`]) so batch results stay bit-identical to the
//!   row-at-a-time operators.
//!
//! Columns are shared via `Arc`: projection to attributes is a
//! re-slice, and union of same-typed batches extends vectors without
//! touching individual cells. Operators select rows with *selection
//! vectors* (`&[u32]` row ids) and materialize [`Tuple`]s only at the
//! final answer boundary.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{DiscoError, Result};
use crate::tuple::Tuple;
use crate::value::Value;

// ---------------------------------------------------------------------------
// Validity bitmap
// ---------------------------------------------------------------------------

/// A packed bitmap; bit `i` set means row `i` is valid (non-null).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// A bitmap of `len` set (valid) bits.
    pub fn new_set(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            self.words[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit at `i`. Panics if out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (valid) bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if every stored bit is set.
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut b = Bitmap::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

// ---------------------------------------------------------------------------
// Cell views: ValueRef and Key
// ---------------------------------------------------------------------------

/// A borrowed view of one cell — what [`Value`] is to a row, `ValueRef`
/// is to a column, without owning string storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    Null,
    Bool(bool),
    Long(i64),
    Double(f64),
    Str(&'a str),
}

impl<'a> ValueRef<'a> {
    /// Borrow a [`Value`] as a `ValueRef`.
    pub fn from_value(v: &'a Value) -> Self {
        match v {
            Value::Null => ValueRef::Null,
            Value::Bool(b) => ValueRef::Bool(*b),
            Value::Long(n) => ValueRef::Long(*n),
            Value::Double(d) => ValueRef::Double(*d),
            Value::Str(s) => ValueRef::Str(s),
        }
    }

    /// Materialize an owned [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(b),
            ValueRef::Long(n) => Value::Long(n),
            ValueRef::Double(d) => Value::Double(d),
            ValueRef::Str(s) => Value::Str(s.to_owned()),
        }
    }

    /// `true` for `Null`.
    pub fn is_null(self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Numeric view, mirroring [`Value::as_f64`].
    pub fn as_f64(self) -> Option<f64> {
        match self {
            ValueRef::Long(n) => Some(n as f64),
            ValueRef::Double(d) => Some(d),
            _ => None,
        }
    }

    /// Mirror of [`Value::partial_cmp_value`]: numbers compare across
    /// `Long`/`Double`, `Null` orders first, cross-family is `None`.
    pub fn partial_cmp_ref(self, other: ValueRef<'_>) -> Option<Ordering> {
        use ValueRef::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Bool(a), Bool(b)) => Some(a.cmp(&b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Mirror of [`Value::total_cmp_value`]: the same total order the
    /// row-at-a-time sort uses (`Null < Bool < numbers < Str`, `NaN`
    /// greatest among numbers).
    pub fn total_cmp_ref(self, other: ValueRef<'_>) -> Ordering {
        if let Some(ord) = self.partial_cmp_ref(other) {
            return ord;
        }
        fn rank(v: ValueRef<'_>) -> u8 {
            match v {
                ValueRef::Null => 0,
                ValueRef::Bool(_) => 1,
                ValueRef::Long(_) | ValueRef::Double(_) => 2,
                ValueRef::Str(_) => 3,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.total_cmp(&b)
            }
            ord => ord,
        }
    }

    /// Mirror of [`Value::width`].
    pub fn width(self) -> u64 {
        match self {
            ValueRef::Null => 1,
            ValueRef::Bool(_) => 1,
            ValueRef::Long(_) => 8,
            ValueRef::Double(_) => 8,
            ValueRef::Str(s) => s.len() as u64,
        }
    }

    /// Normalized equality key (`None` for `Null`) — see [`Key`].
    pub fn key(self) -> Option<Key<'a>> {
        match self {
            ValueRef::Null => None,
            ValueRef::Bool(b) => Some(Key::Bool(b)),
            ValueRef::Long(n) => Some(Key::num(n as f64)),
            ValueRef::Double(d) => Some(Key::num(d)),
            ValueRef::Str(s) => Some(Key::Str(s)),
        }
    }
}

/// A hashable equality key over cell values, with the same equivalence
/// classes as the row operators' string keys: numbers collapse across
/// `Long`/`Double` through their `f64` bits (with `-0.0` normalized to
/// `0.0`, and `NaN`s equal when their bits are), and `Null` has no key.
/// Unlike the row path's joined strings, composite keys built from
/// `Key`s cannot collide across separator bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Key<'a> {
    /// Normalized `f64` bit pattern of a number.
    Num(u64),
    Bool(bool),
    Str(&'a str),
}

impl Key<'_> {
    /// Key for a numeric value, collapsing `-0.0` into `0.0` so the two
    /// zeroes join and group together, as they do in the row operators.
    pub fn num(f: f64) -> Self {
        let f = if f == 0.0 { 0.0 } else { f };
        Key::Num(f.to_bits())
    }
}

// ---------------------------------------------------------------------------
// Columns
// ---------------------------------------------------------------------------

/// Physical storage of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Long(Vec<i64>),
    Double(Vec<f64>),
    Bool(Vec<bool>),
    /// Dictionary-encoded strings: `codes[row]` indexes into `dict`.
    /// The dictionary is shared (`Arc`), so gathers and re-slices copy
    /// only the fixed-width codes.
    Str {
        dict: Arc<Vec<String>>,
        codes: Vec<u32>,
    },
    /// Exact fallback for columns mixing type families (or all-null
    /// columns): plain [`Value`]s, so nothing is coerced and results
    /// stay identical to the row path.
    Any(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Long(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Any(v) => v.len(),
        }
    }
}

/// One column of a [`Batch`]: typed storage plus an optional validity
/// bitmap (`None` means every row is valid). Invalid rows hold an
/// arbitrary placeholder in the typed vectors and `Value::Null` in
/// [`ColumnData::Any`].
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Bitmap>,
}

impl Column {
    /// Build from storage and validity. Panics if lengths disagree.
    pub fn new(data: ColumnData, validity: Option<Bitmap>) -> Self {
        if let Some(v) = &validity {
            assert_eq!(v.len(), data.len(), "validity/data length mismatch");
        }
        Column { data, validity }
    }

    /// Build a column from owned values (type inference included).
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Self {
        let mut b = ColumnBuilder::new();
        for v in values {
            b.push_value(v);
        }
        b.finish()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical storage (for vectorized fast paths).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Validity bitmap; `None` means all rows valid.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// `true` if row `i` is non-null.
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.validity {
            Some(bm) => bm.get(i),
            None => true,
        }
    }

    /// Borrowed view of the cell at `row`.
    pub fn value_ref(&self, row: usize) -> ValueRef<'_> {
        if !self.is_valid(row) {
            return ValueRef::Null;
        }
        match &self.data {
            ColumnData::Long(v) => ValueRef::Long(v[row]),
            ColumnData::Double(v) => ValueRef::Double(v[row]),
            ColumnData::Bool(v) => ValueRef::Bool(v[row]),
            ColumnData::Str { dict, codes } => ValueRef::Str(&dict[codes[row] as usize]),
            ColumnData::Any(v) => ValueRef::from_value(&v[row]),
        }
    }

    /// Owned cell at `row`.
    pub fn value(&self, row: usize) -> Value {
        self.value_ref(row).to_value()
    }

    /// Equality key of the cell at `row` (`None` for null).
    pub fn key_at(&self, row: usize) -> Option<Key<'_>> {
        self.value_ref(row).key()
    }

    /// Gather the rows named by `sel` (in order) into a new column.
    pub fn take(&self, sel: &[u32]) -> Column {
        let validity = self
            .validity
            .as_ref()
            .map(|bm| sel.iter().map(|&i| bm.get(i as usize)).collect::<Bitmap>());
        let validity = match validity {
            Some(bm) if bm.all_set() => None,
            other => other,
        };
        let data = match &self.data {
            ColumnData::Long(v) => ColumnData::Long(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Double(v) => {
                ColumnData::Double(sel.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Bool(v) => ColumnData::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str { dict, codes } => ColumnData::Str {
                dict: Arc::clone(dict),
                codes: sel.iter().map(|&i| codes[i as usize]).collect(),
            },
            ColumnData::Any(v) => {
                ColumnData::Any(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column { data, validity }
    }

    /// Serialized width of all cells, matching the sum of
    /// [`Value::width`] over the materialized rows.
    pub fn byte_width(&self) -> u64 {
        let nulls = self
            .validity
            .as_ref()
            .map(|bm| (bm.len() - bm.count_set()) as u64)
            .unwrap_or(0);
        match &self.data {
            ColumnData::Long(v) => (v.len() as u64 - nulls) * 8 + nulls,
            ColumnData::Double(v) => (v.len() as u64 - nulls) * 8 + nulls,
            ColumnData::Bool(v) => v.len() as u64,
            ColumnData::Str { dict, codes } => {
                let lens: Vec<u64> = dict.iter().map(|s| s.len() as u64).collect();
                let mut total = nulls;
                for (row, &c) in codes.iter().enumerate() {
                    if self.is_valid(row) {
                        total += lens[c as usize];
                    }
                }
                total
            }
            ColumnData::Any(v) => v.iter().map(Value::width).sum(),
        }
    }
}

// ---------------------------------------------------------------------------
// Column builder
// ---------------------------------------------------------------------------

/// Incremental column constructor with type inference.
///
/// The builder starts untyped; the first non-null value fixes the
/// storage kind (earlier nulls are back-filled as invalid rows). A
/// later value of a different family degrades the column to
/// [`ColumnData::Any`], rematerializing what was pushed so far —
/// including a `Long` column seeing a `Double` (and vice versa), so
/// numeric cells keep their exact row-path representation.
#[derive(Debug)]
pub struct ColumnBuilder {
    kind: BuilderKind,
    validity: Bitmap,
    any_invalid: bool,
    len: usize,
}

#[derive(Debug)]
enum BuilderKind {
    /// Only nulls so far.
    Untyped,
    Long(Vec<i64>),
    Double(Vec<f64>),
    Bool(Vec<bool>),
    Str {
        dict: Vec<String>,
        codes: Vec<u32>,
        interner: HashMap<String, u32>,
    },
    Any(Vec<Value>),
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ColumnBuilder {
            kind: BuilderKind::Untyped,
            validity: Bitmap::new(),
            any_invalid: false,
            len: 0,
        }
    }

    /// A builder with row capacity reserved once the kind is known.
    pub fn with_capacity(_cap: usize) -> Self {
        // Capacity is reserved lazily when the first value fixes the
        // storage kind; the hint is accepted for API symmetry.
        Self::new()
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a null cell.
    pub fn push_null(&mut self) {
        self.validity.push(false);
        self.any_invalid = true;
        match &mut self.kind {
            BuilderKind::Untyped => {}
            BuilderKind::Long(v) => v.push(0),
            BuilderKind::Double(v) => v.push(0.0),
            BuilderKind::Bool(v) => v.push(false),
            BuilderKind::Str { codes, .. } => codes.push(0),
            BuilderKind::Any(v) => v.push(Value::Null),
        }
        self.len += 1;
    }

    /// Append a long cell.
    pub fn push_long(&mut self, n: i64) {
        match &mut self.kind {
            BuilderKind::Untyped => {
                let mut v = vec![0i64; self.len];
                v.push(n);
                self.kind = BuilderKind::Long(v);
            }
            BuilderKind::Long(v) => v.push(n),
            BuilderKind::Any(v) => v.push(Value::Long(n)),
            _ => {
                self.degrade_to_any();
                self.push_long(n);
                return;
            }
        }
        self.validity.push(true);
        self.len += 1;
    }

    /// Append a double cell.
    pub fn push_double(&mut self, d: f64) {
        match &mut self.kind {
            BuilderKind::Untyped => {
                let mut v = vec![0.0f64; self.len];
                v.push(d);
                self.kind = BuilderKind::Double(v);
            }
            BuilderKind::Double(v) => v.push(d),
            BuilderKind::Any(v) => v.push(Value::Double(d)),
            _ => {
                self.degrade_to_any();
                self.push_double(d);
                return;
            }
        }
        self.validity.push(true);
        self.len += 1;
    }

    /// Append a bool cell.
    pub fn push_bool(&mut self, b: bool) {
        match &mut self.kind {
            BuilderKind::Untyped => {
                let mut v = vec![false; self.len];
                v.push(b);
                self.kind = BuilderKind::Bool(v);
            }
            BuilderKind::Bool(v) => v.push(b),
            BuilderKind::Any(v) => v.push(Value::Bool(b)),
            _ => {
                self.degrade_to_any();
                self.push_bool(b);
                return;
            }
        }
        self.validity.push(true);
        self.len += 1;
    }

    /// Append a string cell, interning it in the dictionary. Accepts a
    /// borrowed `&str` so wire decoding can push without an extra
    /// allocation for already-seen strings.
    pub fn push_str(&mut self, s: &str) {
        match &mut self.kind {
            BuilderKind::Untyped => {
                self.kind = BuilderKind::Str {
                    dict: Vec::new(),
                    codes: vec![0; self.len],
                    interner: HashMap::new(),
                };
                self.push_str(s);
                return;
            }
            BuilderKind::Str {
                dict,
                codes,
                interner,
            } => {
                let code = match interner.get(s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(s.to_owned());
                        interner.insert(s.to_owned(), c);
                        c
                    }
                };
                codes.push(code);
            }
            BuilderKind::Any(v) => v.push(Value::Str(s.to_owned())),
            _ => {
                self.degrade_to_any();
                self.push_str(s);
                return;
            }
        }
        self.validity.push(true);
        self.len += 1;
    }

    /// Append an owned [`Value`].
    pub fn push_value(&mut self, v: Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Bool(b) => self.push_bool(b),
            Value::Long(n) => self.push_long(n),
            Value::Double(d) => self.push_double(d),
            Value::Str(s) => self.push_str(&s),
        }
    }

    /// Append a borrowed cell view.
    pub fn push_ref(&mut self, v: ValueRef<'_>) {
        match v {
            ValueRef::Null => self.push_null(),
            ValueRef::Bool(b) => self.push_bool(b),
            ValueRef::Long(n) => self.push_long(n),
            ValueRef::Double(d) => self.push_double(d),
            ValueRef::Str(s) => self.push_str(s),
        }
    }

    /// Append every row of an existing column, merging storage directly
    /// when the kinds line up (dictionary codes are remapped once per
    /// distinct string rather than per row).
    pub fn append_column(&mut self, col: &Column) {
        // Fast paths only when self is already the same kind (or empty
        // with no pending nulls); otherwise fall back to per-row pushes.
        let same_kind = match (&self.kind, col.data()) {
            (BuilderKind::Long(_), ColumnData::Long(_)) => true,
            (BuilderKind::Double(_), ColumnData::Double(_)) => true,
            (BuilderKind::Bool(_), ColumnData::Bool(_)) => true,
            (BuilderKind::Str { .. }, ColumnData::Str { .. }) => true,
            (BuilderKind::Untyped, _) if self.len == 0 => true,
            _ => false,
        };
        if !same_kind {
            for row in 0..col.len() {
                self.push_ref(col.value_ref(row));
            }
            return;
        }
        if matches!(self.kind, BuilderKind::Untyped) {
            // Seed the kind from the incoming column, then merge below.
            match col.data() {
                ColumnData::Long(_) => self.kind = BuilderKind::Long(Vec::new()),
                ColumnData::Double(_) => self.kind = BuilderKind::Double(Vec::new()),
                ColumnData::Bool(_) => self.kind = BuilderKind::Bool(Vec::new()),
                ColumnData::Str { .. } => {
                    self.kind = BuilderKind::Str {
                        dict: Vec::new(),
                        codes: Vec::new(),
                        interner: HashMap::new(),
                    }
                }
                ColumnData::Any(_) => self.kind = BuilderKind::Any(Vec::new()),
            }
        }
        match (&mut self.kind, col.data()) {
            (BuilderKind::Long(dst), ColumnData::Long(src)) => dst.extend_from_slice(src),
            (BuilderKind::Double(dst), ColumnData::Double(src)) => dst.extend_from_slice(src),
            (BuilderKind::Bool(dst), ColumnData::Bool(src)) => dst.extend_from_slice(src),
            (
                BuilderKind::Str {
                    dict,
                    codes,
                    interner,
                },
                ColumnData::Str {
                    dict: src_dict,
                    codes: src_codes,
                },
            ) => {
                // Remap the source dictionary once, then bulk-copy codes.
                let remap: Vec<u32> = src_dict
                    .iter()
                    .map(|s| match interner.get(s.as_str()) {
                        Some(&c) => c,
                        None => {
                            let c = dict.len() as u32;
                            dict.push(s.clone());
                            interner.insert(s.clone(), c);
                            c
                        }
                    })
                    .collect();
                codes.extend(src_codes.iter().map(|&c| remap[c as usize]));
            }
            (BuilderKind::Any(dst), ColumnData::Any(src)) => dst.extend_from_slice(src),
            _ => unreachable!("kind agreement checked above"),
        }
        match col.validity() {
            Some(bm) => {
                self.any_invalid = self.any_invalid || !bm.all_set();
                for i in 0..bm.len() {
                    self.validity.push(bm.get(i));
                }
            }
            None => {
                for _ in 0..col.len() {
                    self.validity.push(true);
                }
            }
        }
        self.len += col.len();
    }

    /// Rematerialize the typed storage as exact [`Value`]s.
    fn degrade_to_any(&mut self) {
        let values: Vec<Value> = match &self.kind {
            BuilderKind::Untyped => vec![Value::Null; self.len],
            BuilderKind::Long(v) => v
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    if self.validity.get(i) {
                        Value::Long(n)
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            BuilderKind::Double(v) => v
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    if self.validity.get(i) {
                        Value::Double(d)
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            BuilderKind::Bool(v) => v
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    if self.validity.get(i) {
                        Value::Bool(b)
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            BuilderKind::Str { dict, codes, .. } => codes
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    if self.validity.get(i) {
                        Value::Str(dict[c as usize].clone())
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            BuilderKind::Any(_) => return,
        };
        self.kind = BuilderKind::Any(values);
    }

    /// Finish the column. All-null columns finish as
    /// [`ColumnData::Any`]; the validity bitmap is dropped when every
    /// row is valid.
    pub fn finish(self) -> Column {
        let validity = if self.any_invalid {
            Some(self.validity)
        } else {
            None
        };
        let data = match self.kind {
            BuilderKind::Untyped => ColumnData::Any(vec![Value::Null; self.len]),
            BuilderKind::Long(v) => ColumnData::Long(v),
            BuilderKind::Double(v) => ColumnData::Double(v),
            BuilderKind::Bool(v) => ColumnData::Bool(v),
            BuilderKind::Str { dict, codes, .. } => ColumnData::Str {
                dict: Arc::new(dict),
                codes,
            },
            BuilderKind::Any(v) => ColumnData::Any(v),
        };
        Column { data, validity }
    }
}

// ---------------------------------------------------------------------------
// Batch
// ---------------------------------------------------------------------------

/// A column-major block of rows. Columns are `Arc`-shared, so cloning
/// a batch or re-slicing its columns is O(arity).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    len: usize,
    columns: Vec<Arc<Column>>,
}

impl Batch {
    /// An empty batch of the given arity.
    pub fn empty(arity: usize) -> Batch {
        Batch {
            len: 0,
            columns: (0..arity)
                .map(|_| Arc::new(ColumnBuilder::new().finish()))
                .collect(),
        }
    }

    /// Assemble a batch from columns. Errors if lengths disagree.
    pub fn from_columns(columns: Vec<Arc<Column>>) -> Result<Batch> {
        let len = columns.first().map(|c| c.len()).unwrap_or(0);
        if let Some(c) = columns.iter().find(|c| c.len() != len) {
            return Err(DiscoError::Exec(format!(
                "batch column length mismatch: {} vs {}",
                c.len(),
                len
            )));
        }
        Ok(Batch { len, columns })
    }

    /// Columnarize rows. Rows shorter than `arity` are null-padded;
    /// cells beyond `arity` are ignored.
    pub fn from_tuples(arity: usize, tuples: &[Tuple]) -> Batch {
        let mut builders: Vec<ColumnBuilder> = (0..arity).map(|_| ColumnBuilder::new()).collect();
        for t in tuples {
            for (i, b) in builders.iter_mut().enumerate() {
                match t.get(i) {
                    Some(v) => b.push_ref(ValueRef::from_value(v)),
                    None => b.push_null(),
                }
            }
        }
        Batch {
            len: tuples.len(),
            columns: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
        }
    }

    /// Materialize every row as a [`Tuple`] — the final answer
    /// boundary; nothing inside the combine pipeline calls this.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.len).map(|row| self.tuple_at(row)).collect()
    }

    /// Materialize the row at `row`.
    pub fn tuple_at(&self, row: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Arc<Column> {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Borrowed view of the cell at (`row`, `col`).
    pub fn value_ref(&self, row: usize, col: usize) -> ValueRef<'_> {
        self.columns[col].value_ref(row)
    }

    /// Gather the rows named by `sel` (in order) across all columns.
    pub fn take(&self, sel: &[u32]) -> Batch {
        Batch {
            len: sel.len(),
            columns: self.columns.iter().map(|c| Arc::new(c.take(sel))).collect(),
        }
    }

    /// Re-slice to the columns at `indices` (Arc clones, no copying).
    pub fn select_columns(&self, indices: &[usize]) -> Batch {
        Batch {
            len: self.len,
            columns: indices
                .iter()
                .map(|&i| Arc::clone(&self.columns[i]))
                .collect(),
        }
    }

    /// Column-wise concatenation of two equal-length batches (join
    /// output shape: left columns then right columns).
    pub fn hstack(&self, other: &Batch) -> Result<Batch> {
        if self.len != other.len {
            return Err(DiscoError::Exec(format!(
                "hstack length mismatch: {} vs {}",
                self.len, other.len
            )));
        }
        let mut columns = Vec::with_capacity(self.columns.len() + other.columns.len());
        columns.extend(self.columns.iter().cloned());
        columns.extend(other.columns.iter().cloned());
        Ok(Batch {
            len: self.len,
            columns,
        })
    }

    /// Row-wise concatenation (union). Errors on arity mismatch. When a
    /// column position has the same storage kind in every part, the
    /// vectors are merged directly (dictionary codes remapped once per
    /// distinct string).
    pub fn concat(parts: &[&Batch]) -> Result<Batch> {
        let Some(first) = parts.first() else {
            return Ok(Batch::empty(0));
        };
        let arity = first.arity();
        if let Some(p) = parts.iter().find(|p| p.arity() != arity) {
            return Err(DiscoError::Exec(format!(
                "union arity mismatch: {} vs {}",
                arity,
                p.arity()
            )));
        }
        let mut columns = Vec::with_capacity(arity);
        let mut len = 0;
        for col in 0..arity {
            let mut b = ColumnBuilder::new();
            for p in parts {
                b.append_column(&p.columns[col]);
            }
            columns.push(Arc::new(b.finish()));
        }
        for p in parts {
            len += p.len;
        }
        Ok(Batch { len, columns })
    }

    /// Serialized width of all rows: equals the sum of
    /// [`Tuple::width`] over [`Self::to_tuples`] without materializing.
    pub fn byte_width(&self) -> u64 {
        self.columns.iter().map(|c| c.byte_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![
                Value::Long(1),
                Value::Str("a".into()),
                Value::Double(0.5),
            ]),
            Tuple::new(vec![Value::Long(2), Value::Str("b".into()), Value::Null]),
            Tuple::new(vec![
                Value::Long(3),
                Value::Str("a".into()),
                Value::Double(2.5),
            ]),
        ]
    }

    #[test]
    fn bitmap_roundtrip() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_set(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(Bitmap::new_set(67).all_set());
        assert_eq!(Bitmap::new_set(67).len(), 67);
    }

    #[test]
    fn tuple_batch_roundtrip_is_identity() {
        let ts = rows();
        let b = Batch::from_tuples(3, &ts);
        assert_eq!(b.len(), 3);
        assert_eq!(b.arity(), 3);
        assert_eq!(b.to_tuples(), ts);
    }

    #[test]
    fn strings_are_dictionary_encoded() {
        let b = Batch::from_tuples(3, &rows());
        match b.column(1).data() {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.as_slice(), &["a".to_string(), "b".to_string()]);
                assert_eq!(codes, &[0, 1, 0]);
            }
            other => panic!("expected dict column, got {other:?}"),
        }
    }

    #[test]
    fn mixed_family_column_degrades_to_any() {
        let col = Column::from_values(vec![Value::Long(1), Value::Str("x".into()), Value::Null]);
        match col.data() {
            ColumnData::Any(v) => {
                assert_eq!(v, &[Value::Long(1), Value::Str("x".into()), Value::Null]);
            }
            other => panic!("expected Any column, got {other:?}"),
        }
        assert_eq!(col.value(0), Value::Long(1));
        assert!(!col.is_valid(2));
    }

    #[test]
    fn mixed_numerics_stay_exact() {
        // Long + Double in one column must keep their distinct
        // representations, not coerce to f64.
        let col = Column::from_values(vec![Value::Long(2), Value::Double(2.0)]);
        assert_eq!(col.value(0), Value::Long(2));
        assert_eq!(col.value(1), Value::Double(2.0));
    }

    #[test]
    fn leading_nulls_backfill_typed_columns() {
        let col = Column::from_values(vec![Value::Null, Value::Null, Value::Long(7)]);
        assert!(matches!(col.data(), ColumnData::Long(_)));
        assert_eq!(col.value(0), Value::Null);
        assert_eq!(col.value(2), Value::Long(7));
    }

    #[test]
    fn all_null_column_roundtrips() {
        let col = Column::from_values(vec![Value::Null, Value::Null]);
        assert_eq!(col.value(0), Value::Null);
        assert_eq!(col.value(1), Value::Null);
    }

    #[test]
    fn take_gathers_and_drops_full_validity() {
        let b = Batch::from_tuples(3, &rows());
        let g = b.take(&[2, 0]);
        assert_eq!(g.to_tuples(), vec![rows()[2].clone(), rows()[0].clone()]);
        // Column 2 had a null only at row 1, which was not gathered.
        assert!(g.column(2).validity().is_none());
    }

    #[test]
    fn concat_merges_dictionaries() {
        let a = Batch::from_tuples(1, &[Tuple::new(vec![Value::Str("x".into())])]);
        let b = Batch::from_tuples(
            1,
            &[
                Tuple::new(vec![Value::Str("y".into())]),
                Tuple::new(vec![Value::Str("x".into())]),
            ],
        );
        let u = Batch::concat(&[&a, &b]).unwrap();
        assert_eq!(u.len(), 3);
        match u.column(0).data() {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.as_slice(), &["x".to_string(), "y".to_string()]);
                assert_eq!(codes, &[0, 1, 0]);
            }
            other => panic!("expected dict column, got {other:?}"),
        }
    }

    #[test]
    fn concat_arity_mismatch_errors() {
        let a = Batch::empty(2);
        let b = Batch::empty(3);
        assert!(Batch::concat(&[&a, &b]).is_err());
    }

    #[test]
    fn concat_mixed_kinds_degrades() {
        let a = Batch::from_tuples(1, &[Tuple::new(vec![Value::Long(1)])]);
        let b = Batch::from_tuples(1, &[Tuple::new(vec![Value::Str("s".into())])]);
        let u = Batch::concat(&[&a, &b]).unwrap();
        assert_eq!(
            u.to_tuples(),
            vec![
                Tuple::new(vec![Value::Long(1)]),
                Tuple::new(vec![Value::Str("s".into())]),
            ]
        );
    }

    #[test]
    fn byte_width_matches_row_widths() {
        let ts = rows();
        let b = Batch::from_tuples(3, &ts);
        let expect: u64 = ts.iter().map(Tuple::width).sum();
        assert_eq!(b.byte_width(), expect);
    }

    #[test]
    fn hstack_concatenates_columns() {
        let l = Batch::from_tuples(1, &[Tuple::new(vec![Value::Long(1)])]);
        let r = Batch::from_tuples(1, &[Tuple::new(vec![Value::Str("z".into())])]);
        let j = l.hstack(&r).unwrap();
        assert_eq!(
            j.to_tuples(),
            vec![Tuple::new(vec![Value::Long(1), Value::Str("z".into())])]
        );
        assert!(l.hstack(&Batch::empty(1)).is_err());
    }

    #[test]
    fn keys_collapse_long_and_double() {
        assert_eq!(ValueRef::Long(2).key(), ValueRef::Double(2.0).key());
        assert_eq!(ValueRef::Double(0.0).key(), ValueRef::Double(-0.0).key());
        assert_eq!(ValueRef::Null.key(), None);
        assert_ne!(ValueRef::Str("1").key(), ValueRef::Long(1).key());
    }

    #[test]
    fn value_ref_cmp_mirrors_value_cmp() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Long(2),
            Value::Double(2.0),
            Value::Double(f64::NAN),
            Value::Str("a".into()),
        ];
        for a in &vals {
            for b in &vals {
                let (ra, rb) = (ValueRef::from_value(a), ValueRef::from_value(b));
                assert_eq!(ra.partial_cmp_ref(rb), a.partial_cmp_value(b), "{a} vs {b}");
                assert_eq!(ra.total_cmp_ref(rb), a.total_cmp_value(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn short_rows_null_pad() {
        let b = Batch::from_tuples(2, &[Tuple::new(vec![Value::Long(1)]), Tuple::new(vec![])]);
        assert_eq!(
            b.to_tuples(),
            vec![
                Tuple::new(vec![Value::Long(1), Value::Null]),
                Tuple::new(vec![Value::Null, Value::Null]),
            ]
        );
    }
}

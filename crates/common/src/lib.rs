//! Shared substrate types for the `disco-rs` workspace.
//!
//! This crate holds the vocabulary every other crate speaks:
//!
//! * [`Value`] — the polymorphic constant type of the paper's cost
//!   communication language (`Constant` in Figure 4) and the cell type of
//!   tuples flowing through the mediator;
//! * [`DataType`] — the elementary types of the exported IDL interfaces;
//! * [`Schema`] / [`Tuple`] — rows exchanged between wrappers and mediator;
//! * [`DiscoError`] — the umbrella error type;
//! * [`batch`] — column-major blocks of rows (typed vectors, dictionary
//!   encoding, validity bitmaps) for the mediator's vectorized combine
//!   phase;
//! * [`rng`] — deterministic random number helpers used by the simulated
//!   data sources and workload generators;
//! * [`health`] — per-wrapper failure/latency EWMAs feeding the
//!   estimator's adaptive wrapper-scope penalties;
//! * [`wire`] — the binary encode/decode substrate every payload crossing
//!   the mediator ↔ wrapper transport boundary is built from.
//!
//! Nothing here is specific to cost modelling; it is the substrate the DISCO
//! reproduction is built on.

pub mod batch;
pub mod error;
pub mod health;
pub mod rng;
pub mod schema;
pub mod tuple;
pub mod value;
pub mod wire;

pub use batch::{Batch, Bitmap, Column, ColumnBuilder, ColumnData, Key, ValueRef};
pub use error::{DiscoError, Result};
pub use health::{HealthPolicy, HealthSnapshot, HealthTracker};
pub use schema::{AttributeDef, QualifiedName, Schema, WrapperId};
pub use tuple::Tuple;
pub use value::{DataType, Value};
pub use wire::{WireDecode, WireEncode, WireReader, WireWriter};

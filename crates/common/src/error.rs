//! Umbrella error type for the workspace.
//!
//! Each layer reports failures through [`DiscoError`]; variants carry enough
//! context (usually a message built at the failure site) to diagnose without
//! a backtrace. User-facing paths (parsing queries or cost-rule text,
//! registering wrappers, executing plans) never panic.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DiscoError>;

/// All failure modes of the DISCO reproduction.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscoError {
    /// Lexing/parsing failure in the cost communication language or in the
    /// mediator's query language. Carries a human-readable message that
    /// includes the offending position.
    Parse(String),
    /// Semantic failure resolving names against the mediator catalog
    /// (unknown wrapper, collection or attribute, duplicate registration…).
    Catalog(String),
    /// A plan was structurally invalid for the requested operation
    /// (e.g. join predicate referencing a missing attribute).
    Plan(String),
    /// Cost estimation failed (unresolvable statistic, arithmetic on
    /// non-numeric values, no rule found where the default scope should
    /// have guaranteed one).
    Cost(String),
    /// A simulated data source failed to execute a subplan.
    Source(String),
    /// Runtime execution failure at the mediator.
    Exec(String),
    /// The operation is valid but not supported by this implementation or
    /// by the target wrapper's capabilities.
    Unsupported(String),
    /// A transport call did not complete within its deadline.
    Timeout(String),
    /// A remote endpoint is (or declared itself) unavailable: the wrapper
    /// refused service, exhausted its retry budget, or its circuit breaker
    /// is open.
    Unavailable(String),
    /// Internal control-flow sentinel: a running pipelined combine is
    /// being abandoned for mid-query re-optimization. Propagates unchanged
    /// through pull-based operators to the executor's pull loop, which
    /// catches it and re-drives from the already-materialized subanswers.
    /// Never surfaces to callers.
    Replan(String),
}

impl DiscoError {
    /// Short category tag, used in logs and test assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            DiscoError::Parse(_) => "parse",
            DiscoError::Catalog(_) => "catalog",
            DiscoError::Plan(_) => "plan",
            DiscoError::Cost(_) => "cost",
            DiscoError::Source(_) => "source",
            DiscoError::Exec(_) => "exec",
            DiscoError::Unsupported(_) => "unsupported",
            DiscoError::Timeout(_) => "timeout",
            DiscoError::Unavailable(_) => "unavailable",
            DiscoError::Replan(_) => "replan",
        }
    }

    /// `true` for failures a transport client may meaningfully retry or
    /// degrade around (the source might come back); semantic errors
    /// (parse, plan, …) are never retried.
    pub fn is_transient(&self) -> bool {
        matches!(self, DiscoError::Timeout(_) | DiscoError::Unavailable(_))
    }

    /// The message the variant was constructed with.
    pub fn message(&self) -> &str {
        match self {
            DiscoError::Parse(m)
            | DiscoError::Catalog(m)
            | DiscoError::Plan(m)
            | DiscoError::Cost(m)
            | DiscoError::Source(m)
            | DiscoError::Exec(m)
            | DiscoError::Unsupported(m)
            | DiscoError::Timeout(m)
            | DiscoError::Unavailable(m)
            | DiscoError::Replan(m) => m,
        }
    }

    /// Rebuild an error from its `kind()` tag and message — the inverse
    /// used when errors cross a serialized transport boundary. Unknown
    /// kinds decode as [`DiscoError::Exec`].
    pub fn from_kind(kind: &str, message: String) -> DiscoError {
        match kind {
            "parse" => DiscoError::Parse(message),
            "catalog" => DiscoError::Catalog(message),
            "plan" => DiscoError::Plan(message),
            "cost" => DiscoError::Cost(message),
            "source" => DiscoError::Source(message),
            "unsupported" => DiscoError::Unsupported(message),
            "timeout" => DiscoError::Timeout(message),
            "unavailable" => DiscoError::Unavailable(message),
            "replan" => DiscoError::Replan(message),
            _ => DiscoError::Exec(message),
        }
    }
}

impl fmt::Display for DiscoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for DiscoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_messages() {
        let e = DiscoError::Parse("unexpected ')' at 1:4".into());
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected ')' at 1:4");
        assert_eq!(e.to_string(), "parse error: unexpected ')' at 1:4");
    }

    #[test]
    fn all_variants_display() {
        let variants = [
            DiscoError::Parse("p".into()),
            DiscoError::Catalog("c".into()),
            DiscoError::Plan("pl".into()),
            DiscoError::Cost("co".into()),
            DiscoError::Source("s".into()),
            DiscoError::Exec("e".into()),
            DiscoError::Unsupported("u".into()),
            DiscoError::Timeout("t".into()),
            DiscoError::Unavailable("d".into()),
        ];
        for v in variants {
            assert!(v.to_string().contains(v.kind()));
        }
    }

    #[test]
    fn kind_round_trips_through_from_kind() {
        let variants = [
            DiscoError::Parse("m".into()),
            DiscoError::Catalog("m".into()),
            DiscoError::Plan("m".into()),
            DiscoError::Cost("m".into()),
            DiscoError::Source("m".into()),
            DiscoError::Exec("m".into()),
            DiscoError::Unsupported("m".into()),
            DiscoError::Timeout("m".into()),
            DiscoError::Unavailable("m".into()),
        ];
        for v in variants {
            let back = DiscoError::from_kind(v.kind(), v.message().to_owned());
            assert_eq!(back, v);
        }
        // Unknown kinds degrade to Exec rather than failing.
        assert_eq!(
            DiscoError::from_kind("martian", "m".into()),
            DiscoError::Exec("m".into())
        );
    }

    #[test]
    fn transience_partition() {
        assert!(DiscoError::Timeout("t".into()).is_transient());
        assert!(DiscoError::Unavailable("u".into()).is_transient());
        assert!(!DiscoError::Plan("p".into()).is_transient());
        assert!(!DiscoError::Exec("e".into()).is_transient());
    }
}

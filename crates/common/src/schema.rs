//! Schemas and names.
//!
//! A data source exports one or more *collections* (the paper's term for
//! extents of interface instances); each collection has a flat attribute
//! schema. The mediator addresses a collection by a [`QualifiedName`]
//! (`wrapper.collection`) once wrappers are registered.

use std::fmt;

use crate::value::DataType;

/// Identifier assigned by the mediator to a registered wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WrapperId(pub u32);

impl fmt::Display for WrapperId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// One attribute of an exported interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Attribute name as it appears in the IDL interface.
    pub name: String,
    /// Elementary type of the attribute.
    pub ty: DataType,
}

impl AttributeDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        AttributeDef {
            name: name.into(),
            ty,
        }
    }
}

/// Flat attribute schema of a collection or of an intermediate result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attributes: Vec<AttributeDef>,
}

impl Schema {
    /// Build a schema from attribute definitions.
    pub fn new(attributes: Vec<AttributeDef>) -> Self {
        Schema { attributes }
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Attribute definition by name.
    pub fn attribute(&self, name: &str) -> Option<&AttributeDef> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Schema of the concatenation `self ++ other` (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut attributes = self.attributes.clone();
        attributes.extend(other.attributes.iter().cloned());
        Schema { attributes }
    }

    /// Schema restricted to `names`, in the order given.
    ///
    /// Unknown names are skipped; callers validate against the catalog
    /// before projecting.
    pub fn project(&self, names: &[String]) -> Schema {
        let attributes = names
            .iter()
            .filter_map(|n| self.attribute(n).cloned())
            .collect();
        Schema { attributes }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        f.write_str(")")
    }
}

/// `wrapper.collection` address of a registered collection.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QualifiedName {
    /// Registered wrapper name (e.g. `"oo7"`).
    pub wrapper: String,
    /// Collection name within that wrapper (e.g. `"AtomicParts"`).
    pub collection: String,
}

impl QualifiedName {
    /// Convenience constructor.
    pub fn new(wrapper: impl Into<String>, collection: impl Into<String>) -> Self {
        QualifiedName {
            wrapper: wrapper.into(),
            collection: collection.into(),
        }
    }
}

impl fmt::Display for QualifiedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.wrapper, self.collection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            AttributeDef::new("a", DataType::Long),
            AttributeDef::new("b", DataType::Str),
            AttributeDef::new("c", DataType::Double),
        ])
    }

    #[test]
    fn index_and_lookup() {
        let s = abc();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.attribute("c").unwrap().ty, DataType::Double);
    }

    #[test]
    fn join_concatenates() {
        let s = abc();
        let t = Schema::new(vec![AttributeDef::new("d", DataType::Bool)]);
        let j = s.join(&t);
        assert_eq!(j.arity(), 4);
        assert_eq!(j.index_of("d"), Some(3));
    }

    #[test]
    fn project_preserves_requested_order() {
        let s = abc();
        let p = s.project(&["c".to_string(), "a".to_string()]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.index_of("c"), Some(0));
        assert_eq!(p.index_of("a"), Some(1));
    }

    #[test]
    fn project_skips_unknown() {
        let s = abc();
        let p = s.project(&["nope".to_string(), "a".to_string()]);
        assert_eq!(p.arity(), 1);
    }

    #[test]
    fn qualified_name_display() {
        let q = QualifiedName::new("oo7", "AtomicParts");
        assert_eq!(q.to_string(), "oo7.AtomicParts");
    }

    #[test]
    fn schema_display() {
        assert_eq!(abc().to_string(), "(a: long, b: string, c: double)");
    }
}

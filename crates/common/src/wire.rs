//! Binary wire substrate for the transport boundary.
//!
//! The mediator ↔ wrapper boundary is honest only if everything crossing
//! it is *encoded to bytes* — no shared pointers, no in-process shortcuts.
//! This module provides the low-level reader/writer pair plus codecs for
//! the substrate types every payload is built from (values, schemas,
//! tuples, qualified names). Higher layers (`disco-sources` for
//! subanswers, `disco-transport` for plans and registrations) compose
//! these into full messages.
//!
//! The format is deliberately simple: fixed-width little-endian scalars,
//! `u32`-length-prefixed strings and sequences, one tag byte per enum
//! variant. Malformed input decodes to [`DiscoError::Parse`], never a
//! panic — transport payloads are as untrusted as query text.

use crate::error::{DiscoError, Result};
use crate::schema::{AttributeDef, QualifiedName, Schema};
use crate::tuple::Tuple;
use crate::value::{DataType, Value};

/// Append-only byte sink messages are encoded into.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before anything is written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` as IEEE bits — round-trips every value including NaN bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Sequence length prefix; callers then encode each element.
    pub fn put_len(&mut self, n: usize) {
        self.put_u32(n as u32);
    }
}

/// Cursor over received bytes; every accessor bounds-checks.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails decoding when trailing garbage follows a complete message.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DiscoError::Parse(format!(
                "wire: {} trailing byte(s) after message",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DiscoError::Parse(format!(
                "wire: truncated message (needed {n} byte(s), had {})",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DiscoError::Parse(format!("wire: invalid bool byte {b}"))),
        }
    }

    pub fn get_str(&mut self) -> Result<String> {
        Ok(self.get_str_ref()?.to_owned())
    }

    /// Length-prefixed string, borrowed from the receive buffer.
    ///
    /// The columnar subanswer decoder uses this to intern strings into a
    /// dictionary without allocating a `String` per cell.
    pub fn get_str_ref(&mut self) -> Result<&'a str> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map_err(|_| DiscoError::Parse("wire: invalid UTF-8 in string".into()))
    }

    /// Sequence length prefix, sanity-checked against the bytes left: every
    /// element needs at least one byte, so a length larger than the
    /// remaining buffer is always malformed (prevents huge allocations
    /// from hostile prefixes).
    pub fn get_len(&mut self) -> Result<usize> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(DiscoError::Parse(format!(
                "wire: sequence of {n} elements cannot fit in {} remaining byte(s)",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// Types that encode themselves onto a [`WireWriter`].
pub trait WireEncode {
    fn encode(&self, w: &mut WireWriter);

    /// Convenience: encode into a fresh byte vector.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Types that decode themselves from a [`WireReader`].
pub trait WireDecode: Sized {
    fn decode(r: &mut WireReader<'_>) -> Result<Self>;

    /// Convenience: decode a full message, rejecting trailing bytes.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

impl WireEncode for DataType {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(match self {
            DataType::Bool => 0,
            DataType::Long => 1,
            DataType::Double => 2,
            DataType::Str => 3,
        });
    }
}

impl WireDecode for DataType {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => DataType::Bool,
            1 => DataType::Long,
            2 => DataType::Double,
            3 => DataType::Str,
            t => return Err(DiscoError::Parse(format!("wire: unknown DataType tag {t}"))),
        })
    }
}

impl WireEncode for Value {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Value::Null => w.put_u8(0),
            Value::Bool(b) => {
                w.put_u8(1);
                w.put_bool(*b);
            }
            Value::Long(v) => {
                w.put_u8(2);
                w.put_i64(*v);
            }
            Value::Double(v) => {
                w.put_u8(3);
                w.put_f64(*v);
            }
            Value::Str(s) => {
                w.put_u8(4);
                w.put_str(s);
            }
        }
    }
}

impl WireDecode for Value {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => Value::Null,
            1 => Value::Bool(r.get_bool()?),
            2 => Value::Long(r.get_i64()?),
            3 => Value::Double(r.get_f64()?),
            4 => Value::Str(r.get_str()?),
            t => return Err(DiscoError::Parse(format!("wire: unknown Value tag {t}"))),
        })
    }
}

impl WireEncode for AttributeDef {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.name);
        self.ty.encode(w);
    }
}

impl WireDecode for AttributeDef {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let name = r.get_str()?;
        let ty = DataType::decode(r)?;
        Ok(AttributeDef { name, ty })
    }
}

impl WireEncode for Schema {
    fn encode(&self, w: &mut WireWriter) {
        w.put_len(self.arity());
        for a in self.attributes() {
            a.encode(w);
        }
    }
}

impl WireDecode for Schema {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let n = r.get_len()?;
        let mut attrs = Vec::with_capacity(n);
        for _ in 0..n {
            attrs.push(AttributeDef::decode(r)?);
        }
        Ok(Schema::new(attrs))
    }
}

impl WireEncode for QualifiedName {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.wrapper);
        w.put_str(&self.collection);
    }
}

impl WireDecode for QualifiedName {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let wrapper = r.get_str()?;
        let collection = r.get_str()?;
        Ok(QualifiedName {
            wrapper,
            collection,
        })
    }
}

impl WireEncode for Tuple {
    fn encode(&self, w: &mut WireWriter) {
        w.put_len(self.arity());
        for v in self.values() {
            v.encode(w);
        }
    }
}

impl WireDecode for Tuple {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let n = r.get_len()?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(Value::decode(r)?);
        }
        Ok(Tuple::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire_bytes();
        let back = T::from_wire_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Long(i64::MIN),
            Value::Long(i64::MAX),
            Value::Double(-0.0),
            Value::Double(f64::MAX),
            Value::Str(String::new()),
            Value::Str("héllo wörld".into()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let bytes = Value::Double(f64::NAN).to_wire_bytes();
        let back = Value::from_wire_bytes(&bytes).unwrap();
        match back {
            Value::Double(d) => assert!(d.is_nan()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn schema_and_tuple_round_trip() {
        let schema = Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("name", DataType::Str),
            AttributeDef::new("score", DataType::Double),
            AttributeDef::new("live", DataType::Bool),
        ]);
        round_trip(&schema);
        round_trip(&Tuple::new(vec![
            Value::Long(7),
            Value::Str("x".into()),
            Value::Double(1.5),
            Value::Null,
        ]));
        round_trip(&QualifiedName::new("hr", "Employee"));
    }

    #[test]
    fn truncated_input_is_a_parse_error() {
        let bytes = Value::Str("hello".into()).to_wire_bytes();
        for cut in 0..bytes.len() {
            let err = Value::from_wire_bytes(&bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), "parse", "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Value::Long(1).to_wire_bytes();
        bytes.push(0xFF);
        assert_eq!(Value::from_wire_bytes(&bytes).unwrap_err().kind(), "parse");
    }

    #[test]
    fn unknown_tags_rejected() {
        assert_eq!(Value::from_wire_bytes(&[9]).unwrap_err().kind(), "parse");
        assert_eq!(DataType::from_wire_bytes(&[7]).unwrap_err().kind(), "parse");
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A schema claiming u32::MAX attributes in a 4-byte message must
        // fail cleanly instead of attempting a giant allocation.
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        assert_eq!(
            Schema::from_wire_bytes(&w.into_bytes()).unwrap_err().kind(),
            "parse"
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(4); // Value::Str tag
        w.put_u32(2);
        w.put_u8(0xC3);
        w.put_u8(0x28); // malformed UTF-8 pair
        assert_eq!(
            Value::from_wire_bytes(&w.into_bytes()).unwrap_err().kind(),
            "parse"
        );
    }
}

//! Per-wrapper health tracking for adaptive scope penalties.
//!
//! The transport layer records every submit outcome here; the estimator
//! consults [`HealthTracker::penalty`] as a multiplicative factor on the
//! time variables of `submit` nodes (wrapper scope, §4.1 of the paper),
//! so a wrapper that keeps timing out genuinely loses plans to its
//! replicas — and wins them back as the penalty decays on success.
//!
//! Two exponentially-weighted moving averages are kept per wrapper:
//!
//! * **failure rate** — 1.0 for a failed submit attempt, 0.0 for a
//!   successful one;
//! * **latency ratio** — observed communication time divided by the
//!   predicted total time for that subplan (only sampled when a
//!   prediction was available). A healthy wrapper sits at or below 1.0;
//!   a straggler drifts above it.
//!
//! The penalty is `1 + failure_weight·fail + latency_weight·max(0,
//! ratio − 1)`, clamped to `[1, max_penalty]`. [`HealthTracker::tick`]
//! applies a mild decay to *every* tracked wrapper once per query so a
//! penalized wrapper that lost all its traffic (and therefore records
//! no successes) still recovers instead of being starved forever.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tuning knobs for [`HealthTracker`]. Embedded in the transport
/// layer's `ResiliencePolicy` so all resilience knobs live in one
/// place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// EWMA weight of a new failure/success observation (0..=1).
    pub failure_alpha: f64,
    /// EWMA weight of a new latency-ratio observation (0..=1).
    pub latency_alpha: f64,
    /// Penalty contribution per unit of failure EWMA.
    pub failure_weight: f64,
    /// Penalty contribution per unit of latency ratio above 1.0.
    pub latency_weight: f64,
    /// Upper clamp on the multiplicative penalty.
    pub max_penalty: f64,
    /// Fraction of each EWMA shed by one [`HealthTracker::tick`] call
    /// (invoked once per executed query), so unused wrappers heal.
    pub decay_per_tick: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            failure_alpha: 0.35,
            latency_alpha: 0.35,
            failure_weight: 6.0,
            latency_weight: 1.0,
            max_penalty: 16.0,
            decay_per_tick: 0.08,
        }
    }
}

/// Point-in-time view of one wrapper's health, for metrics and reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSnapshot {
    /// EWMA of the failure indicator (0 = always succeeds).
    pub failure_ewma: f64,
    /// EWMA of observed/predicted latency (1 = exactly as predicted).
    pub latency_ratio: f64,
    /// Multiplicative penalty derived from the two EWMAs (≥ 1).
    pub penalty: f64,
    /// Total submit attempts observed for this wrapper.
    pub observations: u64,
}

#[derive(Debug, Clone, Copy)]
struct Health {
    failure_ewma: f64,
    latency_ratio: f64,
    observations: u64,
}

impl Health {
    fn new() -> Self {
        Health {
            failure_ewma: 0.0,
            latency_ratio: 1.0,
            observations: 0,
        }
    }
}

/// Thread-safe per-wrapper health registry shared between the
/// transport client (writer) and the estimator (reader).
#[derive(Debug)]
pub struct HealthTracker {
    policy: HealthPolicy,
    inner: Mutex<BTreeMap<String, Health>>,
    /// Bumped whenever any wrapper's *effective* penalty changes
    /// (quantized to 1/100ths, so asymptotic EWMA residue inside the
    /// dead zone does not churn it). Plan caches key their entries on
    /// this: a changed version means a previously-losing access path
    /// may now win, so cached decisions must be re-derived.
    version: AtomicU64,
}

impl Default for HealthTracker {
    fn default() -> Self {
        HealthTracker::new(HealthPolicy::default())
    }
}

impl HealthTracker {
    pub fn new(policy: HealthPolicy) -> Self {
        HealthTracker {
            policy,
            inner: Mutex::new(BTreeMap::new()),
            version: AtomicU64::new(0),
        }
    }

    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Monotonic counter of effective-penalty changes; see the field
    /// doc. Cheap to poll (one relaxed atomic load).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Quantized effective penalty, the unit of version-change
    /// detection: identical values mean the optimizer would make the
    /// same choices, so a plan cached against the old value stays
    /// valid.
    fn quantized(&self, h: &Health) -> u64 {
        (self.penalty_of(h) * 100.0).round() as u64
    }

    /// Record one successful submit attempt. `observed_ms` is the
    /// communication time actually charged; `predicted_ms` the cost
    /// model's total-time prediction for the subplan, when available.
    pub fn record_success(&self, wrapper: &str, observed_ms: f64, predicted_ms: Option<f64>) {
        let mut inner = self.inner.lock().unwrap();
        let h = inner.entry(wrapper.to_string()).or_insert_with(Health::new);
        let before = self.quantized(h);
        h.observations += 1;
        let a = self.policy.failure_alpha;
        h.failure_ewma *= 1.0 - a;
        if let Some(pred) = predicted_ms {
            if pred > 0.0 && observed_ms.is_finite() {
                let ratio = observed_ms / pred;
                let b = self.policy.latency_alpha;
                h.latency_ratio = (1.0 - b) * h.latency_ratio + b * ratio;
            }
        }
        if self.quantized(h) != before {
            self.version.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one failed submit attempt (timeout, drop, unavailable).
    pub fn record_failure(&self, wrapper: &str) {
        let mut inner = self.inner.lock().unwrap();
        let h = inner.entry(wrapper.to_string()).or_insert_with(Health::new);
        let before = self.quantized(h);
        h.observations += 1;
        let a = self.policy.failure_alpha;
        h.failure_ewma = (1.0 - a) * h.failure_ewma + a;
        if self.quantized(h) != before {
            self.version.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Mild decay applied to every tracked wrapper; called once per
    /// executed query so wrappers that lost all traffic still heal.
    pub fn tick(&self) {
        let mut inner = self.inner.lock().unwrap();
        let d = self.policy.decay_per_tick;
        let mut changed = false;
        for h in inner.values_mut() {
            let before = self.quantized(h);
            h.failure_ewma *= 1.0 - d;
            h.latency_ratio = 1.0 + (h.latency_ratio - 1.0) * (1.0 - d);
            changed |= self.quantized(h) != before;
        }
        if changed {
            self.version.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn penalty_of(&self, h: &Health) -> f64 {
        let p = 1.0
            + self.policy.failure_weight * h.failure_ewma
            + self.policy.latency_weight * (h.latency_ratio - 1.0).max(0.0);
        // Dead zone: the EWMAs decay asymptotically and never reach
        // exactly zero, but a negligible residue must read as fully
        // healthy so an almost-healed wrapper wins cost ties against
        // its replicas again (the optimizer compares strictly).
        if p < 1.05 {
            return 1.0;
        }
        p.clamp(1.0, self.policy.max_penalty.max(1.0))
    }

    /// Multiplicative wrapper-scope penalty (≥ 1; 1 = healthy or
    /// never observed).
    pub fn penalty(&self, wrapper: &str) -> f64 {
        let inner = self.inner.lock().unwrap();
        match inner.get(wrapper) {
            Some(h) => self.penalty_of(h),
            None => 1.0,
        }
    }

    /// Snapshot of every tracked wrapper, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, HealthSnapshot)> {
        let inner = self.inner.lock().unwrap();
        inner
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    HealthSnapshot {
                        failure_ewma: h.failure_ewma,
                        latency_ratio: h.latency_ratio,
                        penalty: self.penalty_of(h),
                        observations: h.observations,
                    },
                )
            })
            .collect()
    }

    /// Forget all recorded history (used by tests and the chaos
    /// harness between runs).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        if !inner.is_empty() {
            self.version.fetch_add(1, Ordering::Relaxed);
        }
        inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_wrapper_is_healthy() {
        let t = HealthTracker::default();
        assert_eq!(t.penalty("nowhere"), 1.0);
    }

    #[test]
    fn failures_raise_penalty_and_successes_decay_it() {
        let t = HealthTracker::default();
        for _ in 0..6 {
            t.record_failure("w");
        }
        let peak = t.penalty("w");
        assert!(peak > 2.0, "peak penalty {peak} too small");
        for _ in 0..20 {
            t.record_success("w", 100.0, Some(100.0));
        }
        let healed = t.penalty("w");
        assert!(
            healed < peak * 0.2,
            "penalty {healed} did not decay from {peak}"
        );
    }

    #[test]
    fn straggler_latency_raises_penalty() {
        let t = HealthTracker::default();
        for _ in 0..10 {
            t.record_success("slow", 1000.0, Some(100.0));
        }
        assert!(t.penalty("slow") > 2.0);
        for _ in 0..10 {
            t.record_success("fast", 50.0, Some(100.0));
        }
        assert_eq!(t.penalty("fast"), 1.0);
    }

    #[test]
    fn tick_heals_idle_wrappers() {
        let t = HealthTracker::default();
        for _ in 0..8 {
            t.record_failure("w");
        }
        let peak = t.penalty("w");
        for _ in 0..60 {
            t.tick();
        }
        assert!(t.penalty("w") < (peak - 1.0) * 0.05 + 1.0);
    }

    #[test]
    fn version_tracks_effective_penalty_changes() {
        let t = HealthTracker::default();
        let v0 = t.version();
        // Healthy traffic inside the dead zone must not churn the
        // version (otherwise every query would flush plan caches).
        for _ in 0..10 {
            t.record_success("w", 100.0, Some(100.0));
            t.tick();
        }
        assert_eq!(t.version(), v0, "healthy steady state bumped version");
        t.record_failure("w");
        t.record_failure("w");
        assert!(t.version() > v0, "penalty shift did not bump version");
        let v1 = t.version();
        for _ in 0..80 {
            t.tick();
        }
        assert!(t.version() > v1, "decay back to healthy did not bump");
        let healed = t.version();
        for _ in 0..5 {
            t.tick();
        }
        assert_eq!(t.version(), healed, "ticks at rest kept bumping");
    }

    #[test]
    fn penalty_is_clamped() {
        let policy = HealthPolicy {
            max_penalty: 3.0,
            ..HealthPolicy::default()
        };
        let t = HealthTracker::new(policy);
        for _ in 0..50 {
            t.record_failure("w");
        }
        assert!(t.penalty("w") <= 3.0);
    }
}

//! Row representation exchanged between sources, wrappers and the mediator.

use std::fmt;

use crate::error::{DiscoError, Result};
use crate::value::Value;

/// A flat row of [`Value`]s.
///
/// Tuples carry no schema pointer; operators that need attribute positions
/// resolve them once against the plan's schema and then index numerically,
/// keeping the hot execution path allocation-free.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Cell at `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// All cells.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of cells.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Concatenation `self ++ other` (join output row).
    pub fn join(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Row restricted to the cells at `indices`, in that order.
    ///
    /// Every index is expected to be in range: the caller resolved them
    /// against the schema, so an out-of-range index is a
    /// schema-resolution bug. Debug builds assert; release builds
    /// substitute `Value::Null` so the output arity always equals
    /// `indices.len()` instead of silently truncating the row. Use
    /// [`try_project`](Self::try_project) for a recoverable error.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        debug_assert!(
            indices.iter().all(|&i| i < self.values.len()),
            "Tuple::project index out of range (arity {}, indices {:?})",
            self.values.len(),
            indices
        );
        let values = indices
            .iter()
            .map(|&i| self.values.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        Tuple { values }
    }

    /// Checked projection: errors on any out-of-range index.
    pub fn try_project(&self, indices: &[usize]) -> Result<Tuple> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.values.len()) {
            return Err(DiscoError::Exec(format!(
                "projection index {bad} out of range for tuple of arity {}",
                self.values.len()
            )));
        }
        Ok(self.project(indices))
    }

    /// Approximate serialized width in bytes (sum of cell widths).
    pub fn width(&self) -> u64 {
        self.values.iter().map(Value::width).sum()
    }

    /// Consume the tuple, yielding its cells.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("]")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Tuple {
        Tuple::new(vec![
            Value::Long(1),
            Value::Str("x".into()),
            Value::Double(2.5),
        ])
    }

    #[test]
    fn get_and_arity() {
        let t = row();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::Long(1)));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn join_concatenates_cells() {
        let t = row().join(&Tuple::new(vec![Value::Bool(true)]));
        assert_eq!(t.arity(), 4);
        assert_eq!(t.get(3), Some(&Value::Bool(true)));
    }

    #[test]
    fn project_reorders() {
        let t = row().project(&[2, 0]);
        assert_eq!(t.values(), &[Value::Double(2.5), Value::Long(1)]);
    }

    #[test]
    fn try_project_checks_range() {
        let t = row();
        assert_eq!(
            t.try_project(&[1, 2]).unwrap().values(),
            &[Value::Str("x".into()), Value::Double(2.5)]
        );
        let err = t.try_project(&[0, 3]).unwrap_err();
        assert!(err.to_string().contains("index 3"), "{err}");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "index out of range")]
    fn project_out_of_range_asserts_in_debug() {
        let _ = row().project(&[3]);
    }

    #[test]
    fn width_sums_cells() {
        assert_eq!(row().width(), 8 + 1 + 8);
    }

    #[test]
    fn display() {
        assert_eq!(row().to_string(), "[1, \"x\", 2.5]");
    }
}

//! The polymorphic value type shared by data tuples, predicates and the cost
//! communication language.
//!
//! The paper encodes attribute minima/maxima in "a special polymorphic
//! `Constant` object" (Figure 4). [`Value`] plays that role here, and doubles
//! as the cell type for tuples so that predicate evaluation, statistics and
//! cost formulas all agree on one representation.

use std::cmp::Ordering;
use std::fmt;

/// Elementary types of the exported IDL interfaces (paper §3.1).
///
/// The paper's IDL subset has built-in elementary types; complex types
/// (tuple/sequence constructors) are represented structurally by the schema
/// layer, so only scalars appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean flag (e.g. the `Indexed` statistic).
    Bool,
    /// 64-bit signed integer; covers the IDL `short`/`long` family.
    Long,
    /// 64-bit IEEE float; used for measures and derived statistics.
    Double,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "boolean",
            DataType::Long => "long",
            DataType::Double => "double",
            DataType::Str => "string",
        };
        f.write_str(s)
    }
}

/// A polymorphic constant: the paper's `Constant` object.
///
/// `Value` is totally ordered *within* a type family (numbers order across
/// `Long`/`Double`); comparisons across incompatible families return `None`
/// from [`Value::partial_cmp_value`] and predicates treat them as
/// not-satisfied rather than panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent value (outer joins, missing statistics).
    Null,
    Bool(bool),
    Long(i64),
    Double(f64),
    Str(String),
}

impl Value {
    /// The runtime type of the value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Long(_) => Some(DataType::Long),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Numeric view of the value, if it is a number.
    ///
    /// The cost language is untyped-numeric: `Long` promotes to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Long(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view, truncating doubles with integral values.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Long(v) => Some(*v),
            Value::Double(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compare two values where comparable.
    ///
    /// Numbers compare across `Long`/`Double`. `Null` compares equal to
    /// `Null` and less than everything else (a total order convenient for
    /// sorting); cross-family comparisons of non-null values yield `None`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order used for sorting tuples: extends
    /// [`partial_cmp_value`](Self::partial_cmp_value) by ranking
    /// incomparable families in a fixed order (`Null < Bool < numbers < Str`)
    /// and treating `NaN` as greater than all numbers.
    pub fn total_cmp_value(&self, other: &Value) -> Ordering {
        if let Some(ord) = self.partial_cmp_value(other) {
            return ord;
        }
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Long(_) | Value::Double(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => {
                // Same (numeric) rank but partial_cmp failed: NaN involved.
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.total_cmp(&b)
            }
            ord => ord,
        }
    }

    /// Approximate serialized width in bytes, used by size statistics when a
    /// source does not export `ObjectSize`.
    pub fn width(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Long(_) => 8,
            Value::Double(_) => 8,
            Value::Str(s) => s.len() as u64,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Long(3).partial_cmp_value(&Value::Double(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Long(2).partial_cmp_value(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Double(10.0).partial_cmp_value(&Value::Long(4)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incompatible_families_are_incomparable() {
        assert_eq!(
            Value::Long(1).partial_cmp_value(&Value::Str("1".into())),
            None
        );
        assert_eq!(Value::Bool(true).partial_cmp_value(&Value::Long(1)), None);
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(
            Value::Null.partial_cmp_value(&Value::Long(-100)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Null.partial_cmp_value(&Value::Null),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn total_order_handles_mixed_families() {
        let mut vals = [
            Value::Str("a".into()),
            Value::Long(5),
            Value::Null,
            Value::Bool(false),
            Value::Double(1.5),
        ];
        vals.sort_by(|a, b| a.total_cmp_value(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(vals[4], Value::Str("a".into()));
    }

    #[test]
    fn total_order_handles_nan() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.total_cmp_value(&Value::Double(1.0)), Ordering::Greater);
        assert_eq!(nan.total_cmp_value(&nan), Ordering::Equal);
    }

    #[test]
    fn conversions_and_views() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(2.0).as_i64(), Some(2));
        assert_eq!(Value::from(2.5).as_i64(), None);
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(7i64).as_f64(), Some(7.0));
    }

    #[test]
    fn widths() {
        assert_eq!(Value::Long(1).width(), 8);
        assert_eq!(Value::Str("abcd".into()).width(), 4);
        assert_eq!(Value::Null.width(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Long(42).to_string(), "42");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
        assert_eq!(Value::Null.to_string(), "null");
    }
}

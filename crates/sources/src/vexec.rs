//! Vectorized operator implementations over columnar [`Batch`]es.
//!
//! Each function mirrors its row-at-a-time counterpart in [`crate::exec`]
//! — same signatures modulo `Batch` for `Vec<Tuple>`, same error
//! messages, and bit-identical results in the same order — but works
//! column-major:
//!
//! * **select** builds a selection vector (surviving row ids) per
//!   conjunct, with type-specialized loops for numeric, dictionary
//!   string, and boolean columns, then gathers once;
//! * **project** re-slices attribute columns (an `Arc` clone per
//!   column), computing only constant and arithmetic columns;
//! * **hash join** builds on the key column (hashing normalized
//!   [`Key`]s, not formatted strings) and emits row-id pairs, gathering
//!   output columns instead of cloning rows;
//! * **aggregate / dedup** group on `Key` vectors;
//! * **sort** permutes row ids and gathers once.
//!
//! One documented divergence: the row operators key composite
//! (dedup/group) values by joining per-cell strings with `|`, which can
//! collide when string cells contain the separator; the columnar path
//! keys on structured `Vec<Option<Key>>`, which cannot. Equivalence
//! holds on any data free of such engineered collisions.

use std::collections::HashMap;
use std::sync::Arc;

use disco_algebra::logical::AggExpr;
use disco_algebra::{AggFunc, CompareOp, JoinPredicate, Predicate, ScalarExpr, SelectPredicate};
use disco_common::{
    Batch, Column, ColumnBuilder, ColumnData, DiscoError, Key, Result, Schema, Value, ValueRef,
};

use crate::exec::project_schema;

/// Record one operator's output in the global metrics registry
/// (`vexec_rows_total` / `vexec_batches_total`, labelled by operator).
/// Per-batch, not per-row, so the hot loops stay untouched.
fn observe(op: &str, rows: usize) {
    if disco_obs::enabled() {
        let labels = [("op", op)];
        disco_obs::counter(disco_obs::names::VEXEC_ROWS, &labels).add(rows as u64);
        disco_obs::counter(disco_obs::names::VEXEC_BATCHES, &labels).inc();
    }
}

/// Mirror of [`CompareOp::eval`] on borrowed cell views: nulls fail,
/// cross-family comparisons fail, numbers compare across `Long`/`Double`.
fn cmp_ref(op: CompareOp, a: ValueRef<'_>, b: ValueRef<'_>) -> bool {
    if a.is_null() || b.is_null() {
        return false;
    }
    match a.partial_cmp_ref(b) {
        Some(ord) => match op {
            CompareOp::Eq => ord.is_eq(),
            CompareOp::Ne => ord.is_ne(),
            CompareOp::Lt => ord.is_lt(),
            CompareOp::Le => ord.is_le(),
            CompareOp::Gt => ord.is_gt(),
            CompareOp::Ge => ord.is_ge(),
        },
        None => false,
    }
}

fn cmp_ord(op: CompareOp, ord: std::cmp::Ordering) -> bool {
    match op {
        CompareOp::Eq => ord.is_eq(),
        CompareOp::Ne => ord.is_ne(),
        CompareOp::Lt => ord.is_lt(),
        CompareOp::Le => ord.is_le(),
        CompareOp::Gt => ord.is_gt(),
        CompareOp::Ge => ord.is_ge(),
    }
}

/// Rows of `col` (restricted to `sel`) that satisfy `conjunct`.
fn apply_conjunct(col: &Column, conjunct: &SelectPredicate, sel: &[u32]) -> Vec<u32> {
    let op = conjunct.op;
    let valid = |row: u32| col.is_valid(row as usize);
    match (col.data(), &conjunct.value) {
        // Numeric column vs numeric constant: compare in f64, exactly as
        // Value::partial_cmp_value does for every numeric pair.
        (ColumnData::Long(data), c) if c.as_f64().is_some() => {
            let b = c.as_f64().expect("numeric");
            sel.iter()
                .copied()
                .filter(|&row| {
                    valid(row)
                        && (data[row as usize] as f64)
                            .partial_cmp(&b)
                            .is_some_and(|ord| cmp_ord(op, ord))
                })
                .collect()
        }
        (ColumnData::Double(data), c) if c.as_f64().is_some() => {
            let b = c.as_f64().expect("numeric");
            sel.iter()
                .copied()
                .filter(|&row| {
                    valid(row)
                        && data[row as usize]
                            .partial_cmp(&b)
                            .is_some_and(|ord| cmp_ord(op, ord))
                })
                .collect()
        }
        // Dictionary column vs string constant: decide once per distinct
        // string, then test codes.
        (ColumnData::Str { dict, codes }, Value::Str(s)) => {
            let pass: Vec<bool> = dict
                .iter()
                .map(|d| cmp_ord(op, d.as_str().cmp(s)))
                .collect();
            sel.iter()
                .copied()
                .filter(|&row| valid(row) && pass[codes[row as usize] as usize])
                .collect()
        }
        (ColumnData::Bool(data), Value::Bool(b)) => sel
            .iter()
            .copied()
            .filter(|&row| valid(row) && cmp_ord(op, data[row as usize].cmp(b)))
            .collect(),
        // Fallback (mixed columns, cross-family constants, null
        // constants): per-row mirror of CompareOp::eval.
        _ => {
            let c = ValueRef::from_value(&conjunct.value);
            sel.iter()
                .copied()
                .filter(|&row| cmp_ref(op, col.value_ref(row as usize), c))
                .collect()
        }
    }
}

/// Filter a batch by a conjunctive predicate (vectorized `exec::filter`).
pub fn filter(schema: &Schema, batch: &Batch, pred: &Predicate) -> Result<Batch> {
    let resolved: Vec<(usize, &SelectPredicate)> = pred
        .conjuncts
        .iter()
        .map(|c| {
            schema
                .index_of(&c.attribute)
                .map(|i| (i, c))
                .ok_or_else(|| DiscoError::Exec(format!("unknown attribute `{}`", c.attribute)))
        })
        .collect::<Result<_>>()?;
    if resolved.is_empty() {
        observe("filter", batch.len());
        return Ok(batch.clone());
    }
    let mut sel: Vec<u32> = (0..batch.len() as u32).collect();
    for (i, c) in resolved {
        if sel.is_empty() {
            break;
        }
        sel = apply_conjunct(batch.column(i), c, &sel);
    }
    observe("filter", sel.len());
    Ok(batch.take(&sel))
}

/// Project a batch to named expressions (vectorized `exec::project`).
///
/// Attribute columns are `Arc` re-slices; constant columns are built
/// once; arithmetic columns evaluate [`ScalarExpr`] per row against a
/// materialized scratch tuple so the semantics (including error cases)
/// match the row path exactly.
pub fn project(
    schema: &Schema,
    batch: &Batch,
    columns: &[(String, ScalarExpr)],
) -> Result<(Schema, Batch)> {
    let out_schema = project_schema(schema, columns);
    if batch.is_empty() {
        // The row path evaluates nothing on empty input, so unknown
        // attributes are not an error here either.
        return Ok((out_schema, Batch::empty(columns.len())));
    }
    let mut out: Vec<Option<Arc<Column>>> = vec![None; columns.len()];
    let mut scalar_cols: Vec<(usize, &ScalarExpr)> = Vec::new();
    for (pos, (_, e)) in columns.iter().enumerate() {
        match e {
            ScalarExpr::Attr(a) => {
                let i = schema
                    .index_of(a)
                    .ok_or_else(|| DiscoError::Exec(format!("unknown attribute `{a}`")))?;
                out[pos] = Some(Arc::clone(batch.column(i)));
            }
            ScalarExpr::Const(v) => {
                let mut b = ColumnBuilder::new();
                for _ in 0..batch.len() {
                    b.push_ref(ValueRef::from_value(v));
                }
                out[pos] = Some(Arc::new(b.finish()));
            }
            ScalarExpr::Binary { .. } => scalar_cols.push((pos, e)),
        }
    }
    if !scalar_cols.is_empty() {
        let mut builders: Vec<ColumnBuilder> =
            scalar_cols.iter().map(|_| ColumnBuilder::new()).collect();
        for row in 0..batch.len() {
            // One scratch tuple serves every arithmetic column of the row.
            let t = batch.tuple_at(row);
            for ((_, e), b) in scalar_cols.iter().zip(builders.iter_mut()) {
                b.push_value(e.eval(schema, &t)?);
            }
        }
        for ((pos, _), b) in scalar_cols.iter().zip(builders) {
            out[*pos] = Some(Arc::new(b.finish()));
        }
    }
    let columns = out
        .into_iter()
        .map(|c| c.expect("all positions filled"))
        .collect();
    observe("project", batch.len());
    Ok((out_schema, Batch::from_columns(columns)?))
}

/// Key column view used by the joins: precomputes dictionary keys so
/// hashing a dictionary column touches only codes.
fn keys_of(col: &Column) -> Vec<Option<Key<'_>>> {
    match col.data() {
        ColumnData::Str { dict, codes } => {
            let per_code: Vec<Key<'_>> = dict.iter().map(|s| Key::Str(s.as_str())).collect();
            codes
                .iter()
                .enumerate()
                .map(|(row, &c)| {
                    if col.is_valid(row) {
                        Some(per_code[c as usize])
                    } else {
                        None
                    }
                })
                .collect()
        }
        ColumnData::Long(data) => data
            .iter()
            .enumerate()
            .map(|(row, &n)| {
                if col.is_valid(row) {
                    Some(Key::num(n as f64))
                } else {
                    None
                }
            })
            .collect(),
        ColumnData::Double(data) => data
            .iter()
            .enumerate()
            .map(|(row, &d)| {
                if col.is_valid(row) {
                    Some(Key::num(d))
                } else {
                    None
                }
            })
            .collect(),
        _ => (0..col.len()).map(|row| col.key_at(row)).collect(),
    }
}

/// Hash equi-join emitting row-id pairs, then gathering (vectorized
/// `exec::hash_join`). Output rows appear in the same order as the row
/// path: probe order outer, build insertion order inner.
pub fn hash_join(
    left_schema: &Schema,
    left: &Batch,
    right_schema: &Schema,
    right: &Batch,
    pred: &JoinPredicate,
) -> Result<Batch> {
    if pred.op != CompareOp::Eq {
        return Err(DiscoError::Exec(format!(
            "hash join requires an equality predicate, got `{}`",
            pred.op
        )));
    }
    let li = left_schema
        .index_of(&pred.left_attr)
        .ok_or_else(|| DiscoError::Exec(format!("unknown join attribute `{}`", pred.left_attr)))?;
    let ri = right_schema
        .index_of(&pred.right_attr)
        .ok_or_else(|| DiscoError::Exec(format!("unknown join attribute `{}`", pred.right_attr)))?;
    let rkeys = keys_of(right.column(ri));
    let mut table: HashMap<Key<'_>, Vec<u32>> = HashMap::new();
    for (row, k) in rkeys.iter().enumerate() {
        if let Some(k) = k {
            table.entry(*k).or_default().push(row as u32);
        }
    }
    let lkeys = keys_of(left.column(li));
    let mut lids: Vec<u32> = Vec::new();
    let mut rids: Vec<u32> = Vec::new();
    for (row, k) in lkeys.iter().enumerate() {
        let Some(k) = k else { continue };
        if let Some(matches) = table.get(k) {
            for &r in matches {
                lids.push(row as u32);
                rids.push(r);
            }
        }
    }
    observe("hash_join", lids.len());
    left.take(&lids).hstack(&right.take(&rids))
}

/// Nested-loop join for arbitrary comparison predicates (vectorized
/// `exec::nested_loop_join`).
pub fn nested_loop_join(
    left_schema: &Schema,
    left: &Batch,
    right_schema: &Schema,
    right: &Batch,
    pred: &JoinPredicate,
) -> Result<Batch> {
    let li = left_schema
        .index_of(&pred.left_attr)
        .ok_or_else(|| DiscoError::Exec(format!("unknown join attribute `{}`", pred.left_attr)))?;
    let ri = right_schema
        .index_of(&pred.right_attr)
        .ok_or_else(|| DiscoError::Exec(format!("unknown join attribute `{}`", pred.right_attr)))?;
    let (lcol, rcol) = (left.column(li), right.column(ri));
    let mut lids: Vec<u32> = Vec::new();
    let mut rids: Vec<u32> = Vec::new();
    for l in 0..left.len() {
        let lv = lcol.value_ref(l);
        for r in 0..right.len() {
            if cmp_ref(pred.op, lv, rcol.value_ref(r)) {
                lids.push(l as u32);
                rids.push(r as u32);
            }
        }
    }
    observe("nested_loop_join", lids.len());
    left.take(&lids).hstack(&right.take(&rids))
}

/// Duplicate elimination, first occurrence wins (vectorized
/// `exec::dedup`).
pub fn dedup(batch: &Batch) -> Batch {
    let per_col: Vec<Vec<Option<Key<'_>>>> = batch.columns().iter().map(|c| keys_of(c)).collect();
    let mut seen: HashMap<Vec<Option<Key<'_>>>, ()> = HashMap::new();
    let mut sel: Vec<u32> = Vec::new();
    for row in 0..batch.len() {
        let key: Vec<Option<Key<'_>>> = per_col.iter().map(|c| c[row]).collect();
        if seen.insert(key, ()).is_none() {
            sel.push(row as u32);
        }
    }
    observe("dedup", sel.len());
    batch.take(&sel)
}

/// Stable multi-key sort via a row-id permutation (vectorized
/// `exec::sort`).
pub fn sort(schema: &Schema, batch: &Batch, keys: &[(String, bool)]) -> Result<Batch> {
    let resolved: Vec<(usize, bool)> = keys
        .iter()
        .map(|(k, asc)| {
            schema
                .index_of(k)
                .map(|i| (i, *asc))
                .ok_or_else(|| DiscoError::Exec(format!("unknown sort key `{k}`")))
        })
        .collect::<Result<_>>()?;
    let mut sel: Vec<u32> = (0..batch.len() as u32).collect();
    sel.sort_by(|&a, &b| {
        for (i, asc) in &resolved {
            let col = batch.column(*i);
            let ord = col
                .value_ref(a as usize)
                .total_cmp_ref(col.value_ref(b as usize));
            let ord = if *asc { ord } else { ord.reverse() };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    observe("sort", sel.len());
    Ok(batch.take(&sel))
}

/// Group and aggregate (vectorized `exec::aggregate`): group keys
/// first, then aggregates, groups in first-appearance order.
pub fn aggregate(
    schema: &Schema,
    batch: &Batch,
    group_by: &[String],
    aggs: &[AggExpr],
) -> Result<Batch> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| {
            schema
                .index_of(g)
                .ok_or_else(|| DiscoError::Exec(format!("unknown group-by attribute `{g}`")))
        })
        .collect::<Result<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.arg {
            Some(arg) => schema
                .index_of(arg)
                .map(Some)
                .ok_or_else(|| DiscoError::Exec(format!("unknown aggregate argument `{arg}`"))),
            None => Ok(None),
        })
        .collect::<Result<_>>()?;

    // Same accumulator as the row path, fed from borrowed cell views.
    #[derive(Clone)]
    struct Acc {
        count: u64,
        sum: f64,
        min: Option<Value>,
        max: Option<Value>,
        non_null: u64,
    }
    impl Acc {
        fn new() -> Self {
            Acc {
                count: 0,
                sum: 0.0,
                min: None,
                max: None,
                non_null: 0,
            }
        }
        fn feed(&mut self, v: ValueRef<'_>) {
            self.count += 1;
            if v.is_null() {
                return;
            }
            self.non_null += 1;
            if let Some(f) = v.as_f64() {
                self.sum += f;
            }
            let better_min = self
                .min
                .as_ref()
                .map(|m| v.total_cmp_ref(ValueRef::from_value(m)).is_lt())
                .unwrap_or(true);
            if better_min {
                self.min = Some(v.to_value());
            }
            let better_max = self
                .max
                .as_ref()
                .map(|m| v.total_cmp_ref(ValueRef::from_value(m)).is_gt())
                .unwrap_or(true);
            if better_max {
                self.max = Some(v.to_value());
            }
        }
    }

    let group_keys: Vec<Vec<Option<Key<'_>>>> = group_idx
        .iter()
        .map(|&i| keys_of(batch.column(i)))
        .collect();
    let mut groups: HashMap<Vec<Option<Key<'_>>>, usize> = HashMap::new();
    // Per group: representative key row id + accumulators.
    let mut reps: Vec<u32> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    for row in 0..batch.len() {
        let key: Vec<Option<Key<'_>>> = group_keys.iter().map(|c| c[row]).collect();
        let gid = *groups.entry(key).or_insert_with(|| {
            reps.push(row as u32);
            accs.push(vec![Acc::new(); aggs.len()]);
            accs.len() - 1
        });
        for (acc, idx) in accs[gid].iter_mut().zip(&agg_idx) {
            if let Some(i) = idx {
                acc.feed(batch.value_ref(row, *i));
            } else {
                acc.count += 1;
            }
        }
    }
    let arity = group_by.len() + aggs.len();
    if reps.is_empty() && group_by.is_empty() {
        // A global aggregate over an empty input still yields one row.
        let mut builders: Vec<ColumnBuilder> = (0..arity).map(|_| ColumnBuilder::new()).collect();
        for (a, b) in aggs.iter().zip(builders.iter_mut()) {
            match a.func {
                AggFunc::Count => b.push_long(0),
                _ => b.push_null(),
            }
        }
        observe("aggregate", 1);
        return Batch::from_columns(builders.into_iter().map(|b| Arc::new(b.finish())).collect());
    }
    let mut builders: Vec<ColumnBuilder> = (0..arity).map(|_| ColumnBuilder::new()).collect();
    for (gid, &rep) in reps.iter().enumerate() {
        for (pos, &i) in group_idx.iter().enumerate() {
            builders[pos].push_ref(batch.value_ref(rep as usize, i));
        }
        for ((acc, a), b) in accs[gid]
            .iter()
            .zip(aggs)
            .zip(builders[group_by.len()..].iter_mut())
        {
            match a.func {
                AggFunc::Count => b.push_long(match a.arg {
                    Some(_) => acc.non_null as i64,
                    None => acc.count as i64,
                }),
                AggFunc::Sum => {
                    if acc.non_null == 0 {
                        b.push_null()
                    } else {
                        b.push_double(acc.sum)
                    }
                }
                AggFunc::Avg => {
                    if acc.non_null == 0 {
                        b.push_null()
                    } else {
                        b.push_double(acc.sum / acc.non_null as f64)
                    }
                }
                AggFunc::Min => match &acc.min {
                    Some(v) => b.push_ref(ValueRef::from_value(v)),
                    None => b.push_null(),
                },
                AggFunc::Max => match &acc.max {
                    Some(v) => b.push_ref(ValueRef::from_value(v)),
                    None => b.push_null(),
                },
            }
        }
    }
    observe("aggregate", reps.len());
    Batch::from_columns(builders.into_iter().map(|b| Arc::new(b.finish())).collect())
}

/// Union (row-wise concatenation); errors on arity mismatch.
pub fn union(left: &Batch, right: &Batch) -> Result<Batch> {
    observe("union", left.len() + right.len());
    Batch::concat(&[left, right])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use disco_algebra::SelectPredicate;
    use disco_common::{AttributeDef, DataType, Tuple};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("grp", DataType::Long),
            AttributeDef::new("name", DataType::Str),
        ])
    }

    fn rows() -> Vec<Tuple> {
        (0..10)
            .map(|i| {
                Tuple::new(vec![
                    Value::Long(i),
                    Value::Long(i % 3),
                    Value::Str(format!("n{}", i % 2)),
                ])
            })
            .collect()
    }

    fn batch() -> Batch {
        Batch::from_tuples(3, &rows())
    }

    #[test]
    fn filter_matches_row_path() {
        let p = Predicate::all(vec![
            SelectPredicate::new("grp", CompareOp::Eq, Value::Long(1)),
            SelectPredicate::new("id", CompareOp::Ge, Value::Long(4)),
        ]);
        let row = exec::filter(&schema(), &rows(), &p).unwrap();
        let col = filter(&schema(), &batch(), &p).unwrap();
        assert_eq!(col.to_tuples(), row);
    }

    #[test]
    fn filter_string_and_unknown_attr() {
        let p = Predicate::single(SelectPredicate::new(
            "name",
            CompareOp::Eq,
            Value::Str("n1".into()),
        ));
        let row = exec::filter(&schema(), &rows(), &p).unwrap();
        let col = filter(&schema(), &batch(), &p).unwrap();
        assert_eq!(col.to_tuples(), row);
        let bad = Predicate::single(SelectPredicate::new("zzz", CompareOp::Eq, Value::Long(1)));
        assert!(filter(&schema(), &batch(), &bad).is_err());
    }

    #[test]
    fn project_attrs_are_reslices() {
        let cols = vec![
            ("name".to_string(), ScalarExpr::attr("name")),
            ("id".to_string(), ScalarExpr::attr("id")),
        ];
        let (rs, row) = exec::project(&schema(), &rows(), &cols).unwrap();
        let (cs, col) = project(&schema(), &batch(), &cols).unwrap();
        assert_eq!(rs, cs);
        assert_eq!(col.to_tuples(), row);
        // Attribute projection shares storage with the input batch.
        assert!(Arc::ptr_eq(col.column(1), batch().column(0)) || col.column(1).len() == 10);
    }

    #[test]
    fn project_binary_matches_row_path() {
        let cols = vec![(
            "id2".to_string(),
            ScalarExpr::Binary {
                op: disco_algebra::expr::ArithOp::Mul,
                left: Box::new(ScalarExpr::attr("id")),
                right: Box::new(ScalarExpr::constant(2i64)),
            },
        )];
        let (_, row) = exec::project(&schema(), &rows(), &cols).unwrap();
        let (_, col) = project(&schema(), &batch(), &cols).unwrap();
        assert_eq!(col.to_tuples(), row);
    }

    #[test]
    fn hash_join_matches_row_path_in_order() {
        let pred = JoinPredicate::equi("grp", "grp");
        let row = exec::hash_join(&schema(), &rows(), &schema(), &rows(), &pred).unwrap();
        let col = hash_join(&schema(), &batch(), &schema(), &batch(), &pred).unwrap();
        assert_eq!(col.to_tuples(), row);
        assert_eq!(col.len(), 34);
    }

    #[test]
    fn hash_join_rejects_non_equi_and_nulls_never_join() {
        let pred = JoinPredicate {
            left_attr: "id".into(),
            op: CompareOp::Lt,
            right_attr: "id".into(),
        };
        assert!(hash_join(&schema(), &batch(), &schema(), &batch(), &pred).is_err());
        let s = Schema::new(vec![AttributeDef::new("k", DataType::Long)]);
        let b = Batch::from_tuples(
            1,
            &[
                Tuple::new(vec![Value::Null]),
                Tuple::new(vec![Value::Long(1)]),
            ],
        );
        let out = hash_join(&s, &b, &s, &b, &JoinPredicate::equi("k", "k")).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn numeric_keys_join_across_types() {
        let s = Schema::new(vec![AttributeDef::new("k", DataType::Long)]);
        let l = Batch::from_tuples(1, &[Tuple::new(vec![Value::Long(2)])]);
        let r = Batch::from_tuples(1, &[Tuple::new(vec![Value::Double(2.0)])]);
        let out = hash_join(&s, &l, &s, &r, &JoinPredicate::equi("k", "k")).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn nested_loop_matches_row_path() {
        let pred = JoinPredicate {
            left_attr: "id".into(),
            op: CompareOp::Lt,
            right_attr: "id".into(),
        };
        let row = exec::nested_loop_join(&schema(), &rows(), &schema(), &rows(), &pred).unwrap();
        let col = nested_loop_join(&schema(), &batch(), &schema(), &batch(), &pred).unwrap();
        assert_eq!(col.to_tuples(), row);
    }

    #[test]
    fn dedup_matches_row_path() {
        let tuples = vec![
            Tuple::new(vec![Value::Long(1)]),
            Tuple::new(vec![Value::Long(2)]),
            Tuple::new(vec![Value::Long(1)]),
            Tuple::new(vec![Value::Double(1.0)]),
        ];
        let row = exec::dedup(&tuples);
        let col = dedup(&Batch::from_tuples(1, &tuples));
        assert_eq!(col.to_tuples(), row);
        assert_eq!(col.len(), 2);
    }

    #[test]
    fn sort_matches_row_path() {
        let keys = [("grp".to_string(), true), ("id".to_string(), false)];
        let mut row = rows();
        exec::sort(&schema(), &mut row, &keys).unwrap();
        let col = sort(&schema(), &batch(), &keys).unwrap();
        assert_eq!(col.to_tuples(), row);
        assert!(sort(&schema(), &batch(), &[("zzz".into(), true)]).is_err());
    }

    #[test]
    fn aggregate_matches_row_path() {
        let aggs = vec![
            AggExpr {
                name: "n".into(),
                func: AggFunc::Count,
                arg: None,
            },
            AggExpr {
                name: "total".into(),
                func: AggFunc::Sum,
                arg: Some("id".into()),
            },
            AggExpr {
                name: "lo".into(),
                func: AggFunc::Min,
                arg: Some("id".into()),
            },
            AggExpr {
                name: "hi".into(),
                func: AggFunc::Max,
                arg: Some("id".into()),
            },
        ];
        let row = exec::aggregate(&schema(), &rows(), &["grp".to_string()], &aggs).unwrap();
        let col = aggregate(&schema(), &batch(), &["grp".to_string()], &aggs).unwrap();
        assert_eq!(col.to_tuples(), row);
    }

    #[test]
    fn aggregate_global_empty_matches_row_path() {
        let aggs = vec![
            AggExpr {
                name: "n".into(),
                func: AggFunc::Count,
                arg: None,
            },
            AggExpr {
                name: "avg".into(),
                func: AggFunc::Avg,
                arg: Some("id".into()),
            },
        ];
        let empty = Batch::empty(3);
        let row = exec::aggregate(&schema(), &[], &[], &aggs).unwrap();
        let col = aggregate(&schema(), &empty, &[], &aggs).unwrap();
        assert_eq!(col.to_tuples(), row);
        // Grouped empty: no rows.
        let col = aggregate(&schema(), &empty, &["grp".to_string()], &aggs).unwrap();
        assert!(col.is_empty());
    }

    #[test]
    fn union_matches_extend() {
        let u = union(&batch(), &batch()).unwrap();
        let mut expect = rows();
        expect.extend(rows());
        assert_eq!(u.to_tuples(), expect);
        assert!(union(&batch(), &Batch::empty(2)).is_err());
    }
}

//! The paged store engine — the simulated object-database / relational
//! substrate.
//!
//! A [`PagedStore`] holds collections laid out on simulated pages
//! ([`HeapFile`]), optionally indexed ([`BPlusTree`]) and optionally
//! clustered. Executing a subplan really performs the page accesses
//! through a cold LRU [`BufferPool`] and charges the source's
//! [`CostProfile`] to a [`VirtualClock`] — the "Experiment" series of
//! Figure 12 is the elapsed time this engine reports for index scans at
//! varying selectivity.

use std::collections::BTreeMap;

use disco_algebra::{CompareOp, LogicalPlan};
use disco_catalog::{AttributeStats, CollectionStats, ExtentStats};
use disco_common::rng::StdRng;
use disco_common::{rng, DiscoError, Result, Schema, Tuple, Value};

use crate::btree::BPlusTree;
use crate::buffer::BufferPool;
use crate::clock::{CostProfile, VirtualClock};
use crate::exec;
use crate::heap::{HeapFile, Placement};
use crate::source::{DataSource, ExecStats, SubAnswer};

/// One collection stored in the engine.
#[derive(Debug, Clone)]
struct StoredCollection {
    schema: Schema,
    tuples: Vec<Tuple>,
    heap: HeapFile,
    indexes: BTreeMap<String, BPlusTree>,
    clustered_on: Option<String>,
    object_size: u64,
    /// Offset added to local page numbers so collections share the
    /// buffer pool without collisions.
    page_base: u64,
}

/// Builder for loading one collection into a [`PagedStore`].
#[derive(Debug, Clone)]
pub struct CollectionBuilder {
    schema: Schema,
    tuples: Vec<Tuple>,
    object_size: Option<u64>,
    page_size: u64,
    fill_factor: f64,
    cluster_on: Option<String>,
    indexes: Vec<String>,
}

impl CollectionBuilder {
    /// Start a collection with the given schema.
    pub fn new(schema: Schema) -> Self {
        CollectionBuilder {
            schema,
            tuples: Vec::new(),
            object_size: None,
            page_size: 4_096,
            fill_factor: 0.96,
            cluster_on: None,
            indexes: Vec::new(),
        }
    }

    /// Add one row.
    pub fn row(mut self, values: Vec<Value>) -> Self {
        self.tuples.push(Tuple::new(values));
        self
    }

    /// Add many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.tuples.extend(rows.into_iter().map(Tuple::new));
        self
    }

    /// Logical on-disk object size in bytes (defaults to the average
    /// tuple width). The OO7 `AtomicParts` are 56 bytes.
    pub fn object_size(mut self, bytes: u64) -> Self {
        self.object_size = Some(bytes);
        self
    }

    /// Page size in bytes (default 4096).
    pub fn page_size(mut self, bytes: u64) -> Self {
        self.page_size = bytes;
        self
    }

    /// Page fill factor (default 0.96, the OO7 setup).
    pub fn fill_factor(mut self, f: f64) -> Self {
        self.fill_factor = f;
        self
    }

    /// Cluster storage on an attribute's order instead of uniform random
    /// placement.
    pub fn cluster_on(mut self, attr: impl Into<String>) -> Self {
        self.cluster_on = Some(attr.into());
        self
    }

    /// Build a B+-tree index on an attribute.
    pub fn index(mut self, attr: impl Into<String>) -> Self {
        self.indexes.push(attr.into());
        self
    }

    fn build(self, page_base: u64, rng_source: &mut StdRng) -> Result<StoredCollection> {
        let n = self.tuples.len();
        let object_size = self.object_size.unwrap_or_else(|| {
            let total: u64 = self.tuples.iter().map(Tuple::width).sum();
            (total / n.max(1) as u64).max(1)
        });
        // Clustering rank: position of each object in the cluster key order.
        let rank = match &self.cluster_on {
            None => None,
            Some(attr) => {
                let idx = self.schema.index_of(attr).ok_or_else(|| {
                    DiscoError::Source(format!("cannot cluster on unknown attribute `{attr}`"))
                })?;
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    let (x, y) = (self.tuples[a].get(idx), self.tuples[b].get(idx));
                    match (x, y) {
                        (Some(x), Some(y)) => x.total_cmp_value(y),
                        _ => std::cmp::Ordering::Equal,
                    }
                });
                let mut rank = vec![0usize; n];
                for (pos, &obj) in order.iter().enumerate() {
                    rank[obj] = pos;
                }
                Some(rank)
            }
        };
        let placement = if self.cluster_on.is_some() {
            Placement::Clustered
        } else {
            Placement::Random
        };
        let heap = HeapFile::layout(
            n,
            object_size,
            self.page_size,
            self.fill_factor,
            placement,
            rank,
            rng_source,
        );
        let mut indexes = BTreeMap::new();
        for attr in &self.indexes {
            let idx = self.schema.index_of(attr).ok_or_else(|| {
                DiscoError::Source(format!("cannot index unknown attribute `{attr}`"))
            })?;
            let tree = BPlusTree::build(
                self.tuples
                    .iter()
                    .enumerate()
                    .map(|(rid, t)| (t.get(idx).cloned().unwrap_or(Value::Null), rid as u32)),
            );
            indexes.insert(attr.clone(), tree);
        }
        Ok(StoredCollection {
            schema: self.schema,
            tuples: self.tuples,
            heap,
            indexes,
            clustered_on: self.cluster_on,
            object_size,
            page_base,
        })
    }
}

/// A simulated paged data source.
#[derive(Debug, Clone)]
pub struct PagedStore {
    name: String,
    profile: CostProfile,
    buffer_capacity: usize,
    collections: BTreeMap<String, StoredCollection>,
    seed: u64,
    next_page_base: u64,
    histogram_buckets: Option<usize>,
}

impl PagedStore {
    /// New store with a cost profile. The default buffer pool holds 2048
    /// pages — large enough that a query faults each distinct page once
    /// (the regime Yao's formula models).
    pub fn new(name: impl Into<String>, profile: CostProfile) -> Self {
        PagedStore {
            name: name.into(),
            profile,
            buffer_capacity: 2_048,
            collections: BTreeMap::new(),
            seed: rng::DEFAULT_SEED,
            next_page_base: 0,
            histogram_buckets: None,
        }
    }

    /// Export equi-depth histograms (with the given bucket count) for
    /// numeric attributes in [`DataSource::statistics`] — the richer
    /// distribution statistics of \[IP95\] that the paper's ad-hoc
    /// `selectivity(A, V)` functions may consult.
    pub fn with_histograms(mut self, buckets: usize) -> Self {
        self.histogram_buckets = Some(buckets.max(1));
        self
    }

    /// Override the buffer pool capacity (pages).
    pub fn with_buffer_capacity(mut self, pages: usize) -> Self {
        self.buffer_capacity = pages;
        self
    }

    /// Override the placement seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The store's cost profile.
    pub fn profile(&self) -> &CostProfile {
        &self.profile
    }

    /// Load a collection.
    pub fn add_collection(
        &mut self,
        name: impl Into<String>,
        builder: CollectionBuilder,
    ) -> Result<()> {
        let name = name.into();
        if self.collections.contains_key(&name) {
            return Err(DiscoError::Source(format!(
                "collection `{name}` already loaded"
            )));
        }
        let mut r = rng::seeded(self.seed, &format!("{}::{name}", self.name));
        let built = builder.build(self.next_page_base, &mut r)?;
        self.next_page_base += built.heap.pages().max(1);
        self.collections.insert(name, built);
        Ok(())
    }

    fn collection(&self, name: &str) -> Result<&StoredCollection> {
        self.collections
            .get(name)
            .ok_or_else(|| DiscoError::Source(format!("unknown collection `{name}`")))
    }

    /// Pages of a collection (diagnostics, experiment reporting).
    pub fn pages_of(&self, collection: &str) -> Result<u64> {
        Ok(self.collection(collection)?.heap.pages())
    }

    fn exec(
        &self,
        plan: &LogicalPlan,
        clock: &mut VirtualClock,
        buf: &mut BufferPool,
        scanned: &mut u64,
    ) -> Result<(Schema, Vec<Tuple>)> {
        let p = &self.profile;
        match plan {
            LogicalPlan::Scan { collection, .. } => {
                let c = self.collection(&collection.collection)?;
                // Full sequential read: every page once, in storage order.
                for page in 0..c.heap.pages() {
                    buf.access(c.page_base + page, p, clock);
                }
                clock.charge(c.tuples.len() as f64 * p.cpu_scan_ms);
                *scanned += c.tuples.len() as u64;
                Ok((c.schema.clone(), c.tuples.clone()))
            }
            LogicalPlan::Select { input, predicate } => {
                // Index access path: single-conjunct selection directly
                // over a stored collection with a matching index.
                if let LogicalPlan::Scan { collection, .. } = input.as_ref() {
                    if let [cond] = predicate.conjuncts.as_slice() {
                        let c = self.collection(&collection.collection)?;
                        if let Some(tree) = c.indexes.get(&cond.attribute) {
                            if let Some(rids) = tree.scan(cond.op, &cond.value) {
                                clock.charge(p.probe_ms);
                                let mut out = Vec::with_capacity(rids.len());
                                for rid in rids {
                                    let page = c.heap.page_of(rid as usize);
                                    buf.access(c.page_base + page, p, clock);
                                    clock.charge(p.cpu_scan_ms);
                                    *scanned += 1;
                                    out.push(c.tuples[rid as usize].clone());
                                }
                                return Ok((c.schema.clone(), out));
                            }
                        }
                    }
                }
                let (schema, tuples) = self.exec(input, clock, buf, scanned)?;
                clock
                    .charge(tuples.len() as f64 * predicate.conjuncts.len() as f64 * p.cpu_pred_ms);
                let out = exec::filter(&schema, &tuples, predicate)?;
                Ok((schema, out))
            }
            LogicalPlan::Project { input, columns } => {
                let (schema, tuples) = self.exec(input, clock, buf, scanned)?;
                clock.charge(tuples.len() as f64 * p.cpu_scan_ms);
                exec::project(&schema, &tuples, columns)
            }
            LogicalPlan::Sort { input, keys } => {
                let (schema, mut tuples) = self.exec(input, clock, buf, scanned)?;
                let n = tuples.len() as f64;
                clock.charge(p.sort_factor_ms * n * n.max(2.0).log2());
                exec::sort(&schema, &mut tuples, keys)?;
                Ok((schema, tuples))
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                ..
            } => {
                // Index join: the inner side is a stored collection with
                // an index on the join attribute.
                if predicate.op == CompareOp::Eq {
                    if let LogicalPlan::Scan { collection, .. } = right.as_ref() {
                        let c = self.collection(&collection.collection)?;
                        if let Some(tree) = c.indexes.get(&predicate.right_attr) {
                            let (ls, lt) = self.exec(left, clock, buf, scanned)?;
                            let li = ls.index_of(&predicate.left_attr).ok_or_else(|| {
                                DiscoError::Exec(format!(
                                    "unknown join attribute `{}`",
                                    predicate.left_attr
                                ))
                            })?;
                            let mut out = Vec::new();
                            for l in &lt {
                                clock.charge(p.probe_ms);
                                let Some(v) = l.get(li) else { continue };
                                for &rid in tree.lookup(v) {
                                    let page = c.heap.page_of(rid as usize);
                                    buf.access(c.page_base + page, p, clock);
                                    clock.charge(p.cpu_scan_ms);
                                    *scanned += 1;
                                    out.push(l.join(&c.tuples[rid as usize]));
                                }
                            }
                            return Ok((ls.join(&c.schema), out));
                        }
                    }
                }
                let (ls, lt) = self.exec(left, clock, buf, scanned)?;
                let (rs, rt) = self.exec(right, clock, buf, scanned)?;
                let out_schema = ls.join(&rs);
                let out = if predicate.op == CompareOp::Eq {
                    clock.charge((lt.len() + rt.len()) as f64 * p.cpu_hash_ms);
                    let out = exec::hash_join(&ls, &lt, &rs, &rt, predicate)?;
                    clock.charge(out.len() as f64 * p.cpu_hash_ms);
                    out
                } else {
                    clock.charge((lt.len() * rt.len()) as f64 * p.cpu_pred_ms);
                    exec::nested_loop_join(&ls, &lt, &rs, &rt, predicate)?
                };
                Ok((out_schema, out))
            }
            LogicalPlan::Union { left, right } => {
                let (ls, mut lt) = self.exec(left, clock, buf, scanned)?;
                let (rs, rt) = self.exec(right, clock, buf, scanned)?;
                if ls.arity() != rs.arity() {
                    return Err(DiscoError::Exec("union arity mismatch".into()));
                }
                clock.charge(rt.len() as f64 * p.cpu_scan_ms);
                lt.extend(rt);
                Ok((ls, lt))
            }
            LogicalPlan::Dedup { input } => {
                let (schema, tuples) = self.exec(input, clock, buf, scanned)?;
                clock.charge(tuples.len() as f64 * p.cpu_hash_ms);
                let out = exec::dedup(&tuples);
                Ok((schema, out))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (schema, tuples) = self.exec(input, clock, buf, scanned)?;
                clock.charge(tuples.len() as f64 * p.cpu_hash_ms);
                let out = exec::aggregate(&schema, &tuples, group_by, aggs)?;
                let out_schema = plan.output_schema()?;
                Ok((out_schema, out))
            }
            LogicalPlan::Submit { .. } => Err(DiscoError::Source(
                "data sources do not execute `submit` operators".into(),
            )),
        }
    }
}

/// Is the root operator blocking (first tuple only after all input
/// consumed)?
pub(crate) fn blocking_root(plan: &LogicalPlan) -> bool {
    matches!(
        plan,
        LogicalPlan::Sort { .. } | LogicalPlan::Aggregate { .. } | LogicalPlan::Dedup { .. }
    )
}

impl DataSource for PagedStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn collections(&self) -> Vec<(String, Schema)> {
        self.collections
            .iter()
            .map(|(n, c)| (n.clone(), c.schema.clone()))
            .collect()
    }

    fn statistics(&self, collection: &str) -> Option<CollectionStats> {
        let c = self.collections.get(collection)?;
        let n = c.tuples.len() as u64;
        let mut stats = CollectionStats::new(ExtentStats {
            count_object: n,
            total_size: n * c.object_size,
            object_size: c.object_size,
            count_page: None,
        });
        for (i, attr) in c.schema.attributes().iter().enumerate() {
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            let mut distinct: std::collections::HashSet<String> = std::collections::HashSet::new();
            for t in &c.tuples {
                let Some(v) = t.get(i) else { continue };
                if v.is_null() {
                    continue;
                }
                distinct.insert(format!("{v}"));
                if min
                    .as_ref()
                    .map(|m| v.total_cmp_value(m).is_lt())
                    .unwrap_or(true)
                {
                    min = Some(v.clone());
                }
                if max
                    .as_ref()
                    .map(|m| v.total_cmp_value(m).is_gt())
                    .unwrap_or(true)
                {
                    max = Some(v.clone());
                }
            }
            let mut a = AttributeStats::new(
                distinct.len().max(1) as u64,
                min.unwrap_or(Value::Null),
                max.unwrap_or(Value::Null),
            );
            a.indexed = c.indexes.contains_key(&attr.name);
            if let Some(buckets) = self.histogram_buckets {
                let values: Vec<f64> = c
                    .tuples
                    .iter()
                    .filter_map(|t| t.get(i).and_then(Value::as_f64))
                    .collect();
                if !values.is_empty() {
                    if let Some(h) = disco_catalog::Histogram::equi_depth(&values, buckets) {
                        a = a.with_histogram(h);
                    }
                }
            }
            stats = stats.with_attribute(attr.name.clone(), a);
        }
        let _ = &c.clustered_on; // clustering is deliberately NOT exported:
                                 // the generic model cannot see it (§5/§7).
        Some(stats)
    }

    fn execute(&self, plan: &LogicalPlan) -> Result<SubAnswer> {
        let mut clock = VirtualClock::new();
        clock.charge(self.profile.overhead_ms);
        let mut buf = BufferPool::new(self.buffer_capacity);
        let mut scanned = 0u64;
        let (schema, tuples) = self.exec(plan, &mut clock, &mut buf, &mut scanned)?;
        let produced = clock.now();
        // Deliver results.
        clock.charge(tuples.len() as f64 * self.profile.output_ms);
        let elapsed = clock.now();
        let one = (!tuples.is_empty()) as u64 as f64;
        let time_first = if blocking_root(plan) {
            produced + one * self.profile.output_ms
        } else {
            // Pipelined approximation: overhead, one page fault if any I/O
            // happened, one delivery.
            self.profile.overhead_ms
                + (buf.faults() > 0) as u64 as f64 * self.profile.io_ms
                + one * self.profile.output_ms
        };
        if disco_obs::metrics::enabled() {
            let labels = &[("engine", "simulated"), ("source", self.name.as_str())][..];
            disco_obs::counter(disco_obs::names::STORE_PAGE_FAULTS, labels).add(buf.faults());
            disco_obs::counter(disco_obs::names::STORE_BUFFER_HITS, labels).add(buf.hits());
            disco_obs::counter(disco_obs::names::STORE_EVICTIONS, labels).add(buf.evictions());
        }
        Ok(SubAnswer {
            schema,
            tuples,
            stats: ExecStats {
                elapsed_ms: elapsed,
                time_first_ms: time_first.min(elapsed),
                pages_read: buf.faults(),
                buffer_hits: buf.hits(),
                objects_scanned: scanned,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::PlanBuilder;
    use disco_common::{AttributeDef, DataType, QualifiedName};

    fn small_store(cluster: bool) -> PagedStore {
        // 7000 objects × 56 B on 4096-byte pages @96% → 70/page, 100 pages.
        let schema = Schema::new(vec![
            AttributeDef::new("Id", DataType::Long),
            AttributeDef::new("BuildDate", DataType::Long),
        ]);
        let mut b = CollectionBuilder::new(schema)
            .rows((0..7_000i64).map(|i| vec![Value::Long(i), Value::Long(i % 100)]))
            .object_size(56)
            .index("Id");
        if cluster {
            b = b.cluster_on("Id");
        }
        let mut s = PagedStore::new("os", CostProfile::object_store());
        s.add_collection("AtomicParts", b).unwrap();
        s
    }

    fn scan() -> PlanBuilder {
        PlanBuilder::scan(
            QualifiedName::new("os", "AtomicParts"),
            Schema::new(vec![
                AttributeDef::new("Id", DataType::Long),
                AttributeDef::new("BuildDate", DataType::Long),
            ]),
        )
    }

    #[test]
    fn full_scan_costs_pages_plus_delivery() {
        let s = small_store(false);
        let ans = s.execute(&scan().build()).unwrap();
        assert_eq!(ans.tuples.len(), 7_000);
        assert_eq!(ans.stats.pages_read, 100);
        let p = CostProfile::object_store();
        let expected = p.overhead_ms + 100.0 * p.io_ms + 7_000.0 * (p.cpu_scan_ms + p.output_ms);
        assert!((ans.stats.elapsed_ms - expected).abs() < 1e-6);
    }

    #[test]
    fn index_scan_touches_yao_many_pages() {
        let s = small_store(false);
        // 10% selectivity: k = 700 objects over 100 pages.
        let plan = scan().select("Id", CompareOp::Lt, 700i64).build();
        let ans = s.execute(&plan).unwrap();
        assert_eq!(ans.tuples.len(), 700);
        // Yao expectation: 100 * (1 - (1 - 1/100 ... )) ≈ 99.9 pages.
        let expect = disco_core_yao(7_000, 100, 700);
        let got = ans.stats.pages_read as f64;
        assert!((got - expect).abs() < 8.0, "got {got}, expected ≈{expect}");
    }

    /// Local copy of the exact Yao formula to avoid a dependency cycle.
    fn disco_core_yao(n: u64, m: u64, k: u64) -> f64 {
        let (n, m_f) = (n as f64, m as f64);
        let per = n / m_f;
        let mut prod = 1.0;
        for i in 0..k {
            prod *= (n - per - i as f64) / (n - i as f64);
            if prod <= 0.0 {
                prod = 0.0;
                break;
            }
        }
        m_f * (1.0 - prod)
    }

    #[test]
    fn clustered_index_scan_touches_few_pages() {
        let s = small_store(true);
        let plan = scan().select("Id", CompareOp::Lt, 700i64).build();
        let ans = s.execute(&plan).unwrap();
        assert_eq!(ans.tuples.len(), 700);
        // 700 consecutive keys at 70/page = 10 pages.
        assert_eq!(ans.stats.pages_read, 10);
        // Same answer as unclustered; the cost difference is exactly the
        // extra page faults (≈90 pages × 25 ms).
        let unc = small_store(false).execute(&plan).unwrap();
        assert_eq!(unc.tuples.len(), 700);
        assert!(unc.stats.pages_read > 80);
        let delta_pages = (unc.stats.pages_read - ans.stats.pages_read) as f64;
        let delta_ms = unc.stats.elapsed_ms - ans.stats.elapsed_ms;
        assert!(
            (delta_ms - delta_pages * 25.0).abs() < 1e-6,
            "{delta_ms} vs {delta_pages}"
        );
    }

    #[test]
    fn selection_without_index_filters_full_scan() {
        let s = small_store(false);
        let plan = scan().select("BuildDate", CompareOp::Eq, 7i64).build();
        let ans = s.execute(&plan).unwrap();
        assert_eq!(ans.tuples.len(), 70);
        assert_eq!(ans.stats.pages_read, 100); // full scan underneath
    }

    #[test]
    fn statistics_reflect_data() {
        let s = small_store(false);
        let st = s.statistics("AtomicParts").unwrap();
        assert_eq!(st.extent.count_object, 7_000);
        assert_eq!(st.extent.object_size, 56);
        let id = st.attribute("Id");
        assert!(id.indexed);
        assert_eq!(id.count_distinct, 7_000);
        assert_eq!(id.min, Value::Long(0));
        assert_eq!(id.max, Value::Long(6_999));
        let bd = st.attribute("BuildDate");
        assert!(!bd.indexed);
        assert_eq!(bd.count_distinct, 100);
        assert!(s.statistics("Nope").is_none());
    }

    #[test]
    fn index_join_executes() {
        let s = small_store(false);
        let left = scan().select("Id", CompareOp::Lt, 10i64);
        let plan = left.join(scan(), "Id", "Id").build();
        let ans = s.execute(&plan).unwrap();
        assert_eq!(ans.tuples.len(), 10);
        assert_eq!(ans.schema.arity(), 4);
    }

    #[test]
    fn hash_join_fallback_on_unindexed() {
        let s = small_store(false);
        let plan = scan()
            .select("Id", CompareOp::Lt, 5i64)
            .join(
                scan().select("Id", CompareOp::Lt, 5i64),
                "BuildDate",
                "BuildDate",
            )
            .build();
        let ans = s.execute(&plan).unwrap();
        // BuildDate = Id%100 for Id<5: 5 × 5 pairs where equal → 5.
        assert_eq!(ans.tuples.len(), 5);
    }

    #[test]
    fn aggregate_and_sort_paths() {
        let s = small_store(false);
        let plan = scan()
            .aggregate(
                &["BuildDate"],
                vec![("n", disco_algebra::AggFunc::Count, None)],
            )
            .build();
        let ans = s.execute(&plan).unwrap();
        assert_eq!(ans.tuples.len(), 100);
        // Blocking root: first tuple arrives near the end.
        assert!(ans.stats.time_first_ms > ans.stats.elapsed_ms * 0.5);

        let sorted = s.execute(&scan().sort_asc(&["BuildDate"]).build()).unwrap();
        assert_eq!(sorted.tuples.len(), 7_000);
        assert!(sorted.stats.time_first_ms > 0.0);
    }

    #[test]
    fn submit_rejected() {
        let s = small_store(false);
        let plan = scan().submit("os").build();
        assert_eq!(s.execute(&plan).unwrap_err().kind(), "source");
    }

    #[test]
    fn unknown_collection_rejected() {
        let s = small_store(false);
        let plan = PlanBuilder::scan(
            QualifiedName::new("os", "Ghost"),
            Schema::new(vec![AttributeDef::new("x", DataType::Long)]),
        )
        .build();
        assert_eq!(s.execute(&plan).unwrap_err().kind(), "source");
    }

    #[test]
    fn execution_is_deterministic() {
        let plan = scan().select("Id", CompareOp::Lt, 700i64).build();
        let a = small_store(false).execute(&plan).unwrap();
        let b = small_store(false).execute(&plan).unwrap();
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn duplicate_collection_rejected() {
        let mut s = small_store(false);
        let e = s
            .add_collection(
                "AtomicParts",
                CollectionBuilder::new(Schema::new(vec![AttributeDef::new("x", DataType::Long)])),
            )
            .unwrap_err();
        assert_eq!(e.kind(), "source");
    }

    #[test]
    fn histograms_exported_on_request() {
        let schema = Schema::new(vec![AttributeDef::new("v", DataType::Long)]);
        // Heavy skew: 90% of the values are 7.
        let rows = (0..1_000i64).map(|i| vec![Value::Long(if i < 900 { 7 } else { i })]);
        let mut s = PagedStore::new("s", CostProfile::relational()).with_histograms(16);
        s.add_collection("T", CollectionBuilder::new(schema).rows(rows))
            .unwrap();
        let stats = s.statistics("T").unwrap();
        let attr = stats.attribute("v");
        let h = attr.histogram.as_ref().expect("histogram exported");
        assert_eq!(h.total(), 1_000);
        // Selectivity of v = 7 must reflect the skew, not 1/distinct.
        use disco_algebra::SelectPredicate;
        let sel = disco_catalog::restriction_selectivity(
            &stats,
            &SelectPredicate::new("v", CompareOp::Eq, Value::Long(7)),
        );
        assert!(sel > 0.5, "skew missed: {sel}");
        // Without histograms the uniform assumption misses it badly.
        let mut plain = PagedStore::new("p", CostProfile::relational());
        let schema = Schema::new(vec![AttributeDef::new("v", DataType::Long)]);
        let rows = (0..1_000i64).map(|i| vec![Value::Long(if i < 900 { 7 } else { i })]);
        plain
            .add_collection("T", CollectionBuilder::new(schema).rows(rows))
            .unwrap();
        let plain_stats = plain.statistics("T").unwrap();
        let plain_sel = disco_catalog::restriction_selectivity(
            &plain_stats,
            &SelectPredicate::new("v", CompareOp::Eq, Value::Long(7)),
        );
        assert!(
            plain_sel < 0.05,
            "uniform assumption should miss: {plain_sel}"
        );
    }
}

//! A [`DataSource`] backed by the real disk engine in `disco-store`.
//!
//! [`StoreSource`] executes the same plan shapes as [`PagedStore`]
//! (sequential scans, index selections, index joins, and the in-memory
//! operator fallbacks from [`exec`]) but its page faults are *performed*,
//! not simulated: every heap or index page comes through `disco-store`'s
//! buffer pool, and [`ExecStats::pages_read`] reports the data-page
//! faults that actually happened. CPU and delivery time still accrue on
//! the virtual clock with the same constants as the simulated engine, and
//! each fault charges the same 25 ms, so elapsed figures stay comparable
//! across the two engines; index-page I/O is counted in the pool's
//! metrics but not charged (the simulated engine keeps its index in
//! memory, and the cost rules fold traversal into `Probe`).
//!
//! Unlike the simulated store, the pool is *shared across queries*: runs
//! warm unless [`StoreSource::clear_cache`] intervenes. Cold-cache
//! experiments (the Yao validation regime) clear between queries;
//! leaving the cache warm exercises the catalog's `CacheRegime::Warm`
//! scopes.
//!
//! [`PagedStore`]: crate::store::PagedStore

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use disco_algebra::{CompareOp, LogicalPlan};
use disco_catalog::{AttributeStats, CollectionStats, ExtentStats};
use disco_common::{DiscoError, Result, Schema, Tuple, Value};
use disco_store::{DiskStore, PoolCounters, StoreSession};

use crate::clock::{CostProfile, VirtualClock};
use crate::exec;
use crate::source::{DataSource, ExecStats, SubAnswer};
use crate::store::blocking_root;

/// A disk-backed data source.
#[derive(Debug, Clone)]
pub struct StoreSource {
    store: DiskStore,
    profile: CostProfile,
    histogram_buckets: Option<usize>,
    stats_cache: Arc<Mutex<BTreeMap<String, CollectionStats>>>,
}

impl StoreSource {
    /// Wrap a loaded [`DiskStore`] with a cost profile.
    pub fn new(store: DiskStore, profile: CostProfile) -> Self {
        StoreSource {
            store,
            profile,
            histogram_buckets: None,
            stats_cache: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Export equi-depth histograms for numeric attributes, like
    /// [`PagedStore::with_histograms`].
    ///
    /// [`PagedStore::with_histograms`]: crate::store::PagedStore::with_histograms
    pub fn with_histograms(mut self, buckets: usize) -> Self {
        self.histogram_buckets = Some(buckets.max(1));
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    /// The store's cost profile.
    pub fn profile(&self) -> &CostProfile {
        &self.profile
    }

    /// Drop cached pages so the next query runs against a cold pool.
    pub fn clear_cache(&self) -> Result<()> {
        self.store.clear_cache()
    }

    /// Lifetime buffer-pool counters (across all queries so far).
    pub fn pool_counters(&self) -> PoolCounters {
        self.store.counters()
    }

    fn exec(
        &self,
        session: &StoreSession<'_>,
        plan: &LogicalPlan,
        clock: &mut VirtualClock,
        scanned: &mut u64,
    ) -> Result<(Schema, Vec<Tuple>)> {
        let p = &self.profile;
        match plan {
            LogicalPlan::Scan { collection, .. } => {
                let name = collection.collection.as_str();
                let c = self.store.collection(name)?;
                let schema = c.schema().clone();
                let tuples = session.scan(name)?;
                clock.charge(tuples.len() as f64 * p.cpu_scan_ms);
                *scanned += tuples.len() as u64;
                Ok((schema, tuples))
            }
            LogicalPlan::Select { input, predicate } => {
                // Index access path, identical shape to the simulated
                // engine: one conjunct straight over an indexed scan.
                if let LogicalPlan::Scan { collection, .. } = input.as_ref() {
                    if let [cond] = predicate.conjuncts.as_slice() {
                        let name = collection.collection.as_str();
                        let c = self.store.collection(name)?;
                        if let Some(rids) =
                            session.index_rids(name, &cond.attribute, cond.op, &cond.value)?
                        {
                            clock.charge(p.probe_ms);
                            let mut out = Vec::with_capacity(rids.len());
                            for rid in rids {
                                out.push(session.fetch(name, rid)?);
                                clock.charge(p.cpu_scan_ms);
                                *scanned += 1;
                            }
                            return Ok((c.schema().clone(), out));
                        }
                    }
                }
                let (schema, tuples) = self.exec(session, input, clock, scanned)?;
                clock
                    .charge(tuples.len() as f64 * predicate.conjuncts.len() as f64 * p.cpu_pred_ms);
                let out = exec::filter(&schema, &tuples, predicate)?;
                Ok((schema, out))
            }
            LogicalPlan::Project { input, columns } => {
                let (schema, tuples) = self.exec(session, input, clock, scanned)?;
                clock.charge(tuples.len() as f64 * p.cpu_scan_ms);
                exec::project(&schema, &tuples, columns)
            }
            LogicalPlan::Sort { input, keys } => {
                let (schema, mut tuples) = self.exec(session, input, clock, scanned)?;
                let n = tuples.len() as f64;
                clock.charge(p.sort_factor_ms * n * n.max(2.0).log2());
                exec::sort(&schema, &mut tuples, keys)?;
                Ok((schema, tuples))
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                ..
            } => {
                // Index join: inner side is an indexed stored collection.
                if predicate.op == CompareOp::Eq {
                    if let LogicalPlan::Scan { collection, .. } = right.as_ref() {
                        let name = collection.collection.as_str();
                        let c = self.store.collection(name)?;
                        if c.has_index(&predicate.right_attr) {
                            let (ls, lt) = self.exec(session, left, clock, scanned)?;
                            let li = ls.index_of(&predicate.left_attr).ok_or_else(|| {
                                DiscoError::Exec(format!(
                                    "unknown join attribute `{}`",
                                    predicate.left_attr
                                ))
                            })?;
                            let mut out = Vec::new();
                            for l in &lt {
                                clock.charge(p.probe_ms);
                                let Some(v) = l.get(li) else { continue };
                                let rids = session
                                    .lookup_rids(name, &predicate.right_attr, v)?
                                    .unwrap_or_default();
                                for rid in rids {
                                    let r = session.fetch(name, rid)?;
                                    clock.charge(p.cpu_scan_ms);
                                    *scanned += 1;
                                    out.push(l.join(&r));
                                }
                            }
                            return Ok((ls.join(c.schema()), out));
                        }
                    }
                }
                let (ls, lt) = self.exec(session, left, clock, scanned)?;
                let (rs, rt) = self.exec(session, right, clock, scanned)?;
                let out_schema = ls.join(&rs);
                let out = if predicate.op == CompareOp::Eq {
                    clock.charge((lt.len() + rt.len()) as f64 * p.cpu_hash_ms);
                    let out = exec::hash_join(&ls, &lt, &rs, &rt, predicate)?;
                    clock.charge(out.len() as f64 * p.cpu_hash_ms);
                    out
                } else {
                    clock.charge((lt.len() * rt.len()) as f64 * p.cpu_pred_ms);
                    exec::nested_loop_join(&ls, &lt, &rs, &rt, predicate)?
                };
                Ok((out_schema, out))
            }
            LogicalPlan::Union { left, right } => {
                let (ls, mut lt) = self.exec(session, left, clock, scanned)?;
                let (rs, rt) = self.exec(session, right, clock, scanned)?;
                if ls.arity() != rs.arity() {
                    return Err(DiscoError::Exec("union arity mismatch".into()));
                }
                clock.charge(rt.len() as f64 * p.cpu_scan_ms);
                lt.extend(rt);
                Ok((ls, lt))
            }
            LogicalPlan::Dedup { input } => {
                let (schema, tuples) = self.exec(session, input, clock, scanned)?;
                clock.charge(tuples.len() as f64 * p.cpu_hash_ms);
                let out = exec::dedup(&tuples);
                Ok((schema, out))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (schema, tuples) = self.exec(session, input, clock, scanned)?;
                clock.charge(tuples.len() as f64 * p.cpu_hash_ms);
                let out = exec::aggregate(&schema, &tuples, group_by, aggs)?;
                let out_schema = plan.output_schema()?;
                Ok((out_schema, out))
            }
            LogicalPlan::Submit { .. } => Err(DiscoError::Source(
                "data sources do not execute `submit` operators".into(),
            )),
        }
    }

    fn compute_statistics(&self, collection: &str) -> Option<CollectionStats> {
        let c = self.store.collection(collection).ok()?;
        let session = self.store.session();
        let tuples = session.scan(collection).ok()?;
        let n = tuples.len() as u64;
        let mut stats = CollectionStats::new(
            ExtentStats {
                count_object: n,
                total_size: n * c.object_size(),
                object_size: c.object_size(),
                count_page: None,
            }
            // Real engines know their page count — export it measured.
            .with_count_page(c.pages()),
        );
        for (i, attr) in c.schema().attributes().iter().enumerate() {
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            let mut distinct: std::collections::HashSet<String> = std::collections::HashSet::new();
            for t in &tuples {
                let Some(v) = t.get(i) else { continue };
                if v.is_null() {
                    continue;
                }
                distinct.insert(format!("{v}"));
                if min
                    .as_ref()
                    .map(|m| v.total_cmp_value(m).is_lt())
                    .unwrap_or(true)
                {
                    min = Some(v.clone());
                }
                if max
                    .as_ref()
                    .map(|m| v.total_cmp_value(m).is_gt())
                    .unwrap_or(true)
                {
                    max = Some(v.clone());
                }
            }
            let mut a = AttributeStats::new(
                distinct.len().max(1) as u64,
                min.unwrap_or(Value::Null),
                max.unwrap_or(Value::Null),
            );
            a.indexed = c.has_index(&attr.name);
            if let Some(buckets) = self.histogram_buckets {
                let values: Vec<f64> = tuples
                    .iter()
                    .filter_map(|t| t.get(i).and_then(Value::as_f64))
                    .collect();
                if !values.is_empty() {
                    if let Some(h) = disco_catalog::Histogram::equi_depth(&values, buckets) {
                        a = a.with_histogram(h);
                    }
                }
            }
            stats = stats.with_attribute(attr.name.clone(), a);
        }
        // Clustering is deliberately NOT exported, mirroring the
        // simulated store: the generic model cannot see it (§5/§7).
        Some(stats)
    }
}

impl DataSource for StoreSource {
    fn name(&self) -> &str {
        self.store.name()
    }

    fn collections(&self) -> Vec<(String, Schema)> {
        self.store.collections()
    }

    fn statistics(&self, collection: &str) -> Option<CollectionStats> {
        if let Some(cached) = self
            .stats_cache
            .lock()
            .expect("stats cache")
            .get(collection)
        {
            return Some(cached.clone());
        }
        let stats = self.compute_statistics(collection)?;
        self.stats_cache
            .lock()
            .expect("stats cache")
            .insert(collection.to_string(), stats.clone());
        Some(stats)
    }

    fn execute(&self, plan: &LogicalPlan) -> Result<SubAnswer> {
        let session = self.store.session();
        let mut clock = VirtualClock::new();
        clock.charge(self.profile.overhead_ms);
        let mut scanned = 0u64;
        let (schema, tuples) = self.exec(&session, plan, &mut clock, &mut scanned)?;
        let io = session.io();
        // Charge the fault I/O that physically happened (data pages; see
        // module docs for why index pages are uncharged).
        clock.charge(io.data_faults as f64 * self.profile.io_ms);
        let produced = clock.now();
        clock.charge(tuples.len() as f64 * self.profile.output_ms);
        let elapsed = clock.now();
        let one = (!tuples.is_empty()) as u64 as f64;
        let time_first = if blocking_root(plan) {
            produced + one * self.profile.output_ms
        } else {
            self.profile.overhead_ms
                + (io.data_faults > 0) as u64 as f64 * self.profile.io_ms
                + one * self.profile.output_ms
        };
        if disco_obs::metrics::enabled() {
            let labels = &[("engine", "disk"), ("source", self.store.name())][..];
            disco_obs::counter(disco_obs::names::STORE_PAGE_FAULTS, labels).add(io.faults);
            disco_obs::counter(disco_obs::names::STORE_BUFFER_HITS, labels).add(io.hits);
            disco_obs::counter(disco_obs::names::STORE_EVICTIONS, labels).add(io.evictions);
        }
        Ok(SubAnswer {
            schema,
            tuples,
            stats: ExecStats {
                elapsed_ms: elapsed,
                time_first_ms: time_first.min(elapsed),
                pages_read: io.data_faults,
                buffer_hits: io.hits,
                objects_scanned: scanned,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::PlanBuilder;
    use disco_common::{AttributeDef, DataType, QualifiedName};
    use disco_store::{DiskCollectionBuilder, DiskStoreBuilder};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ])
    }

    fn source(n: i64) -> StoreSource {
        let store = DiskStoreBuilder::new("disk")
            .collection(
                "T",
                DiskCollectionBuilder::new(schema())
                    .rows((0..n).map(|i| vec![Value::Long(i), Value::Long(i % 10)]))
                    .object_size(56)
                    .index("id"),
            )
            .build()
            .unwrap();
        StoreSource::new(store, CostProfile::object_store())
    }

    fn scan() -> PlanBuilder {
        PlanBuilder::scan(QualifiedName::new("disk", "T"), schema())
    }

    #[test]
    fn scan_executes_and_reports_real_faults() {
        let s = source(700);
        s.clear_cache().unwrap();
        let plan = scan().build();
        let a = s.execute(&plan).unwrap();
        assert_eq!(a.tuples.len(), 700);
        // 700 × 56 B at 96 % fill → 70 per page → 10 pages, all faulted.
        assert_eq!(a.stats.pages_read, 10);
        assert_eq!(a.stats.objects_scanned, 700);
        // Warm re-run: zero faults, all hits.
        let b = s.execute(&plan).unwrap();
        assert_eq!(b.stats.pages_read, 0);
        assert!(b.stats.buffer_hits >= 10);
        assert_eq!(b.tuples, a.tuples);
    }

    #[test]
    fn index_select_fetches_only_matching_pages() {
        let s = source(700);
        s.clear_cache().unwrap();
        let plan = scan().select("id", CompareOp::Eq, 123i64).build();
        let a = s.execute(&plan).unwrap();
        assert_eq!(a.tuples.len(), 1);
        assert_eq!(a.stats.pages_read, 1);
        assert_eq!(a.tuples[0].get(0), Some(&Value::Long(123)));
    }

    #[test]
    fn statistics_export_measured_pages() {
        let s = source(700);
        let stats = s.statistics("T").unwrap();
        assert_eq!(stats.extent.count_object, 700);
        assert_eq!(stats.extent.count_page, Some(10));
        assert_eq!(stats.extent.count_pages(4_096), 10);
        assert!(stats.attributes.get("id").unwrap().indexed);
        assert!(!stats.attributes.get("v").unwrap().indexed);
        // Cached second call.
        assert_eq!(s.statistics("T").unwrap(), stats);
        assert!(s.statistics("missing").is_none());
    }

    #[test]
    fn elapsed_matches_simulated_formula_for_cold_scan() {
        let s = source(700);
        s.clear_cache().unwrap();
        let plan = scan().build();
        let a = s.execute(&plan).unwrap();
        let p = CostProfile::object_store();
        let expect = p.overhead_ms + 10.0 * p.io_ms + 700.0 * p.cpu_scan_ms + 700.0 * p.output_ms;
        assert!((a.stats.elapsed_ms - expect).abs() < 1e-9);
    }
}

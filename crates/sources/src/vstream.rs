//! Pull-based streaming counterparts of the [`crate::vexec`] operators.
//!
//! The two-phase combine path runs each vectorized operator once over a
//! fully materialized batch. The streaming path instead threads bounded
//! chunks through a tree of [`BatchStream`]s: linear operators (filter,
//! project, union pass-through, limit) transform each chunk as it
//! arrives, joins materialize only their build side, and the inherently
//! blocking operators (sort, dedup, aggregate, sort-merge join) drain
//! their input before emitting a single output chunk.
//!
//! Equivalence contract: for every operator, the concatenation of its
//! streamed output chunks is byte-identical to the one-shot `vexec`
//! result over the concatenation of its input chunks, in the same row
//! order. Virtual-clock charges are reported through a [`Meter`] using
//! the same per-tuple formulas as the two-phase executor, so the totals
//! agree too (up to float summation order).
//!
//! Cost constants are passed in by the caller (the mediator's executor
//! owns the registry); a stream built with [`no_meter`] charges nothing.

use std::rc::Rc;

use disco_algebra::logical::AggExpr;
use disco_algebra::{JoinPredicate, Predicate, ScalarExpr};
use disco_common::{Batch, DiscoError, Result, Schema};

use crate::vexec;

/// Charge hook: receives simulated milliseconds as an operator works.
/// `Rc` so one clock (and one per-node tally) can back many operators.
pub type Meter = Rc<dyn Fn(f64)>;

/// A meter that discards every charge.
pub fn no_meter() -> Meter {
    Rc::new(|_| {})
}

/// A pull-based stream of columnar chunks with a fixed schema.
///
/// `next_batch` yields `Ok(Some(chunk))` until the stream is exhausted,
/// then `Ok(None)`; chunks may be empty. An error is terminal.
pub trait BatchStream {
    /// Schema of every chunk this stream yields.
    fn schema(&self) -> &Schema;

    /// Pull the next chunk.
    fn next_batch(&mut self) -> Result<Option<Batch>>;
}

/// Drain a stream to a single batch (concatenation of its chunks).
pub fn drain(stream: &mut dyn BatchStream) -> Result<Batch> {
    let arity = stream.schema().arity();
    let mut chunks = Vec::new();
    while let Some(b) = stream.next_batch()? {
        chunks.push(b);
    }
    if chunks.is_empty() {
        return Ok(Batch::empty(arity));
    }
    let refs: Vec<&Batch> = chunks.iter().collect();
    Batch::concat(&refs)
}

/// An in-memory source serving a pre-built batch in bounded chunks —
/// the streaming adapter for in-process subanswers and tests. Always
/// yields at least one (possibly empty) chunk.
pub struct BatchSource {
    schema: Schema,
    batch: Batch,
    next_row: usize,
    chunk_rows: usize,
    served: bool,
}

impl BatchSource {
    /// Serve `batch` in chunks of at most `chunk_rows` rows (clamped to
    /// at least 1).
    pub fn new(schema: Schema, batch: Batch, chunk_rows: usize) -> Self {
        BatchSource {
            schema,
            batch,
            next_row: 0,
            chunk_rows: chunk_rows.max(1),
            served: false,
        }
    }
}

impl BatchStream for BatchSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.next_row >= self.batch.len() {
            if self.served {
                return Ok(None);
            }
            // An empty answer still ships one empty chunk, mirroring the
            // wire protocol's schema-bearing first frame.
            self.served = true;
            return Ok(Some(Batch::empty(self.batch.arity())));
        }
        self.served = true;
        let end = (self.next_row + self.chunk_rows).min(self.batch.len());
        let sel: Vec<u32> = (self.next_row as u32..end as u32).collect();
        self.next_row = end;
        Ok(Some(self.batch.take(&sel)))
    }
}

/// Streaming filter: charges and filters each chunk as it arrives.
pub struct FilterStream {
    input: Box<dyn BatchStream>,
    predicate: Predicate,
    meter: Meter,
    /// Simulated ms per input row (`conjuncts × CpuPred`).
    cost_per_row: f64,
}

impl FilterStream {
    pub fn new(
        input: Box<dyn BatchStream>,
        predicate: Predicate,
        meter: Meter,
        cost_per_row: f64,
    ) -> Self {
        FilterStream {
            input,
            predicate,
            meter,
            cost_per_row,
        }
    }
}

impl BatchStream for FilterStream {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        match self.input.next_batch()? {
            None => Ok(None),
            Some(b) => {
                (self.meter)(b.len() as f64 * self.cost_per_row);
                Ok(Some(vexec::filter(
                    self.input.schema(),
                    &b,
                    &self.predicate,
                )?))
            }
        }
    }
}

/// Streaming projection: charges and projects each chunk as it arrives.
/// The output schema is derived at construction (no rows needed).
pub struct ProjectStream {
    input: Box<dyn BatchStream>,
    columns: Vec<(String, ScalarExpr)>,
    schema: Schema,
    meter: Meter,
    /// Simulated ms per input row (`CpuHash`).
    cost_per_row: f64,
}

impl ProjectStream {
    pub fn new(
        input: Box<dyn BatchStream>,
        columns: Vec<(String, ScalarExpr)>,
        meter: Meter,
        cost_per_row: f64,
    ) -> Result<Self> {
        // The empty-batch path computes the output schema without
        // touching any data (and without erroring on unknown
        // attributes, exactly like the row engine on empty input).
        let empty = Batch::empty(input.schema().arity());
        let (schema, _) = vexec::project(input.schema(), &empty, &columns)?;
        Ok(ProjectStream {
            input,
            columns,
            schema,
            meter,
            cost_per_row,
        })
    }
}

impl BatchStream for ProjectStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        match self.input.next_batch()? {
            None => Ok(None),
            Some(b) => {
                (self.meter)(b.len() as f64 * self.cost_per_row);
                let (_, out) = vexec::project(self.input.schema(), &b, &self.columns)?;
                Ok(Some(out))
            }
        }
    }
}

/// Streaming hash join: drains and charges the build (right) side on
/// the first pull, then probes with each left chunk as it arrives —
/// output order matches the one-shot join (probe order outer).
pub struct HashJoinStream {
    left: Box<dyn BatchStream>,
    right: Box<dyn BatchStream>,
    predicate: JoinPredicate,
    schema: Schema,
    meter: Meter,
    /// Simulated ms per build/probe/output row (`CpuHash`).
    cpu_hash: f64,
    build: Option<Batch>,
}

impl HashJoinStream {
    pub fn new(
        left: Box<dyn BatchStream>,
        right: Box<dyn BatchStream>,
        predicate: JoinPredicate,
        meter: Meter,
        cpu_hash: f64,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        HashJoinStream {
            left,
            right,
            predicate,
            schema,
            meter,
            cpu_hash,
            build: None,
        }
    }
}

impl BatchStream for HashJoinStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.build.is_none() {
            let rb = drain(self.right.as_mut())?;
            (self.meter)(rb.len() as f64 * self.cpu_hash);
            self.build = Some(rb);
        }
        match self.left.next_batch()? {
            None => Ok(None),
            Some(lb) => {
                (self.meter)(lb.len() as f64 * self.cpu_hash);
                let build = self.build.as_ref().expect("build side drained");
                let out = vexec::hash_join(
                    self.left.schema(),
                    &lb,
                    self.right.schema(),
                    build,
                    &self.predicate,
                )?;
                (self.meter)(out.len() as f64 * self.cpu_hash);
                Ok(Some(out))
            }
        }
    }
}

/// Streaming nested-loop join: materializes the right side on the first
/// pull, then joins each left chunk against it.
pub struct NestedLoopStream {
    left: Box<dyn BatchStream>,
    right: Box<dyn BatchStream>,
    predicate: JoinPredicate,
    schema: Schema,
    meter: Meter,
    /// Simulated ms per compared pair (`CpuPred`).
    cpu_pred: f64,
    inner: Option<Batch>,
}

impl NestedLoopStream {
    pub fn new(
        left: Box<dyn BatchStream>,
        right: Box<dyn BatchStream>,
        predicate: JoinPredicate,
        meter: Meter,
        cpu_pred: f64,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        NestedLoopStream {
            left,
            right,
            predicate,
            schema,
            meter,
            cpu_pred,
            inner: None,
        }
    }
}

impl BatchStream for NestedLoopStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.inner.is_none() {
            self.inner = Some(drain(self.right.as_mut())?);
        }
        match self.left.next_batch()? {
            None => Ok(None),
            Some(lb) => {
                let inner = self.inner.as_ref().expect("inner side drained");
                (self.meter)((lb.len() * inner.len()) as f64 * self.cpu_pred);
                Ok(Some(vexec::nested_loop_join(
                    self.left.schema(),
                    &lb,
                    self.right.schema(),
                    inner,
                    &self.predicate,
                )?))
            }
        }
    }
}

/// Streaming sort-merge join: inherently blocking — both sides drain
/// before the single output chunk, charged as the sort-based algorithm
/// it models (sorts plus a merge pass), exactly like the two-phase path.
pub struct SortMergeStream {
    left: Box<dyn BatchStream>,
    right: Box<dyn BatchStream>,
    predicate: JoinPredicate,
    schema: Schema,
    meter: Meter,
    sort_factor: f64,
    cpu_pred: f64,
    done: bool,
}

impl SortMergeStream {
    pub fn new(
        left: Box<dyn BatchStream>,
        right: Box<dyn BatchStream>,
        predicate: JoinPredicate,
        meter: Meter,
        sort_factor: f64,
        cpu_pred: f64,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        SortMergeStream {
            left,
            right,
            predicate,
            schema,
            meter,
            sort_factor,
            cpu_pred,
            done: false,
        }
    }
}

impl BatchStream for SortMergeStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let lb = drain(self.left.as_mut())?;
        let rb = drain(self.right.as_mut())?;
        let sf = self.sort_factor;
        let (nl, nr) = (lb.len() as f64, rb.len() as f64);
        (self.meter)(sf * nl * nl.max(2.0).log2() + sf * nr * nr.max(2.0).log2());
        (self.meter)((nl + nr) * self.cpu_pred);
        Ok(Some(vexec::hash_join(
            self.left.schema(),
            &lb,
            self.right.schema(),
            &rb,
            &self.predicate,
        )?))
    }
}

/// Streaming union: left chunks pass through unmetered, then right
/// chunks metered per row — the same total charge as the two-phase
/// union (which charges only the right cardinality).
pub struct UnionStream {
    left: Box<dyn BatchStream>,
    right: Box<dyn BatchStream>,
    meter: Meter,
    /// Simulated ms per right-side row (`CpuHash`).
    cost_per_row: f64,
    left_done: bool,
}

impl UnionStream {
    /// Errors on arity mismatch with the two-phase message.
    pub fn new(
        left: Box<dyn BatchStream>,
        right: Box<dyn BatchStream>,
        meter: Meter,
        cost_per_row: f64,
    ) -> Result<Self> {
        if left.schema().arity() != right.schema().arity() {
            return Err(DiscoError::Exec("union arity mismatch".into()));
        }
        Ok(UnionStream {
            left,
            right,
            meter,
            cost_per_row,
            left_done: false,
        })
    }
}

impl BatchStream for UnionStream {
    fn schema(&self) -> &Schema {
        self.left.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if !self.left_done {
            match self.left.next_batch()? {
                Some(b) => return Ok(Some(b)),
                None => self.left_done = true,
            }
        }
        match self.right.next_batch()? {
            None => Ok(None),
            Some(b) => {
                (self.meter)(b.len() as f64 * self.cost_per_row);
                Ok(Some(b))
            }
        }
    }
}

/// Blocking dedup: drains its input (cross-chunk duplicates must be
/// seen together), charges once over the full cardinality, emits one
/// chunk.
pub struct DedupStream {
    input: Box<dyn BatchStream>,
    meter: Meter,
    /// Simulated ms per input row (`CpuHash`).
    cost_per_row: f64,
    done: bool,
}

impl DedupStream {
    pub fn new(input: Box<dyn BatchStream>, meter: Meter, cost_per_row: f64) -> Self {
        DedupStream {
            input,
            meter,
            cost_per_row,
            done: false,
        }
    }
}

impl BatchStream for DedupStream {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let all = drain(self.input.as_mut())?;
        (self.meter)(all.len() as f64 * self.cost_per_row);
        Ok(Some(vexec::dedup(&all)))
    }
}

/// Blocking sort: drains its input, charges `SortFactor × n log n`,
/// emits one sorted chunk.
pub struct SortStream {
    input: Box<dyn BatchStream>,
    keys: Vec<(String, bool)>,
    meter: Meter,
    sort_factor: f64,
    done: bool,
}

impl SortStream {
    pub fn new(
        input: Box<dyn BatchStream>,
        keys: Vec<(String, bool)>,
        meter: Meter,
        sort_factor: f64,
    ) -> Self {
        SortStream {
            input,
            keys,
            meter,
            sort_factor,
            done: false,
        }
    }
}

impl BatchStream for SortStream {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let all = drain(self.input.as_mut())?;
        let n = all.len() as f64;
        (self.meter)(self.sort_factor * n * n.max(2.0).log2());
        Ok(Some(vexec::sort(self.input.schema(), &all, &self.keys)?))
    }
}

/// Blocking aggregate: drains its input, charges once, emits one chunk.
/// The output schema is supplied by the caller (group keys + aggregate
/// result types are a planner concern).
pub struct AggregateStream {
    input: Box<dyn BatchStream>,
    group_by: Vec<String>,
    aggs: Vec<AggExpr>,
    schema: Schema,
    meter: Meter,
    /// Simulated ms per input row (`CpuHash`).
    cost_per_row: f64,
    done: bool,
}

impl AggregateStream {
    pub fn new(
        input: Box<dyn BatchStream>,
        group_by: Vec<String>,
        aggs: Vec<AggExpr>,
        out_schema: Schema,
        meter: Meter,
        cost_per_row: f64,
    ) -> Self {
        AggregateStream {
            input,
            group_by,
            aggs,
            schema: out_schema,
            meter,
            cost_per_row,
            done: false,
        }
    }
}

impl BatchStream for AggregateStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let all = drain(self.input.as_mut())?;
        (self.meter)(all.len() as f64 * self.cost_per_row);
        Ok(Some(vexec::aggregate(
            self.input.schema(),
            &all,
            &self.group_by,
            &self.aggs,
        )?))
    }
}

/// Streaming limit: passes chunks through until `n` rows have been
/// delivered, truncating the final chunk, then stops pulling its input
/// entirely — the early-stop that makes `TimeFirst`-optimal plans pay
/// for only the rows they return.
pub struct LimitStream {
    input: Box<dyn BatchStream>,
    remaining: u64,
}

impl LimitStream {
    pub fn new(input: Box<dyn BatchStream>, limit: u64) -> Self {
        LimitStream {
            input,
            remaining: limit,
        }
    }
}

impl BatchStream for LimitStream {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next_batch()? {
            None => Ok(None),
            Some(b) => {
                if (b.len() as u64) <= self.remaining {
                    self.remaining -= b.len() as u64;
                    Ok(Some(b))
                } else {
                    let sel: Vec<u32> = (0..self.remaining as u32).collect();
                    self.remaining = 0;
                    Ok(Some(b.take(&sel)))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    use disco_algebra::{CompareOp, SelectPredicate};
    use disco_common::{AttributeDef, DataType, Tuple, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("grp", DataType::Long),
        ])
    }

    fn batch(n: i64) -> Batch {
        let rows: Vec<Tuple> = (0..n)
            .map(|i| Tuple::new(vec![Value::Long(i), Value::Long(i % 3)]))
            .collect();
        Batch::from_tuples(2, &rows)
    }

    fn source(n: i64, chunk_rows: usize) -> Box<dyn BatchStream> {
        Box::new(BatchSource::new(schema(), batch(n), chunk_rows))
    }

    fn counting_meter() -> (Meter, Rc<Cell<f64>>) {
        let total = Rc::new(Cell::new(0.0));
        let t = Rc::clone(&total);
        (Rc::new(move |ms| t.set(t.get() + ms)), total)
    }

    #[test]
    fn source_chunks_reassemble_and_empty_source_serves_one_chunk() {
        let mut s = BatchSource::new(schema(), batch(10), 3);
        let mut chunks = Vec::new();
        while let Some(b) = s.next_batch().unwrap() {
            chunks.push(b.len());
        }
        assert_eq!(chunks, vec![3, 3, 3, 1]);
        let mut s = BatchSource::new(schema(), batch(10), 3);
        assert_eq!(drain(&mut s).unwrap().to_tuples(), batch(10).to_tuples());

        let mut empty = BatchSource::new(schema(), Batch::empty(2), 4);
        let first = empty.next_batch().unwrap().expect("one empty chunk");
        assert!(first.is_empty());
        assert!(empty.next_batch().unwrap().is_none());
    }

    #[test]
    fn filter_stream_matches_one_shot_and_charge() {
        let pred = Predicate::single(SelectPredicate::new("grp", CompareOp::Eq, Value::Long(1)));
        let (meter, total) = counting_meter();
        let mut s = FilterStream::new(source(10, 3), pred.clone(), meter, 0.05);
        let streamed = drain(&mut s).unwrap();
        let one_shot = vexec::filter(&schema(), &batch(10), &pred).unwrap();
        assert_eq!(streamed.to_tuples(), one_shot.to_tuples());
        assert!((total.get() - 10.0 * 0.05).abs() < 1e-9);
    }

    #[test]
    fn hash_join_stream_matches_one_shot_order_and_charge() {
        let pred = JoinPredicate::equi("grp", "grp");
        let (meter, total) = counting_meter();
        let mut s = HashJoinStream::new(source(10, 3), source(7, 2), pred.clone(), meter, 0.02);
        let streamed = drain(&mut s).unwrap();
        let one_shot =
            vexec::hash_join(&schema(), &batch(10), &schema(), &batch(7), &pred).unwrap();
        assert_eq!(streamed.to_tuples(), one_shot.to_tuples());
        // (lb + rb + out) × CpuHash, chunk-summed.
        let expect = (10.0 + 7.0 + one_shot.len() as f64) * 0.02;
        assert!((total.get() - expect).abs() < 1e-9);
    }

    #[test]
    fn nested_loop_and_sortmerge_match_one_shot() {
        let lt = JoinPredicate {
            left_attr: "id".into(),
            op: CompareOp::Lt,
            right_attr: "id".into(),
        };
        let mut s = NestedLoopStream::new(source(6, 2), source(5, 2), lt.clone(), no_meter(), 0.0);
        let streamed = drain(&mut s).unwrap();
        let one_shot =
            vexec::nested_loop_join(&schema(), &batch(6), &schema(), &batch(5), &lt).unwrap();
        assert_eq!(streamed.to_tuples(), one_shot.to_tuples());

        let eq = JoinPredicate::equi("grp", "grp");
        let mut s =
            SortMergeStream::new(source(6, 2), source(5, 2), eq.clone(), no_meter(), 0.0, 0.0);
        let streamed = drain(&mut s).unwrap();
        let one_shot = vexec::hash_join(&schema(), &batch(6), &schema(), &batch(5), &eq).unwrap();
        assert_eq!(streamed.to_tuples(), one_shot.to_tuples());
    }

    #[test]
    fn union_streams_left_then_right_and_rejects_arity_mismatch() {
        let mut s = UnionStream::new(source(4, 3), source(3, 2), no_meter(), 0.0).unwrap();
        let streamed = drain(&mut s).unwrap();
        let one_shot = vexec::union(&batch(4), &batch(3)).unwrap();
        assert_eq!(streamed.to_tuples(), one_shot.to_tuples());

        let narrow = Schema::new(vec![AttributeDef::new("id", DataType::Long)]);
        let other = Box::new(BatchSource::new(narrow, Batch::empty(1), 4));
        let err = match UnionStream::new(source(4, 3), other, no_meter(), 0.0) {
            Err(e) => e,
            Ok(_) => panic!("arity mismatch accepted"),
        };
        assert!(err.to_string().contains("union arity mismatch"));
    }

    #[test]
    fn blocking_operators_drain_then_emit_once() {
        let mut s = SortStream::new(
            source(10, 3),
            vec![("grp".into(), true), ("id".into(), false)],
            no_meter(),
            0.0,
        );
        let first = s.next_batch().unwrap().unwrap();
        assert!(s.next_batch().unwrap().is_none());
        let one_shot = vexec::sort(
            &schema(),
            &batch(10),
            &[("grp".into(), true), ("id".into(), false)],
        )
        .unwrap();
        assert_eq!(first.to_tuples(), one_shot.to_tuples());

        let dup_rows: Vec<Tuple> = (0..8)
            .map(|i| Tuple::new(vec![Value::Long(i % 2), Value::Long(0)]))
            .collect();
        let dup = Batch::from_tuples(2, &dup_rows);
        let mut s = DedupStream::new(
            Box::new(BatchSource::new(schema(), dup.clone(), 3)),
            no_meter(),
            0.0,
        );
        let streamed = drain(&mut s).unwrap();
        assert_eq!(streamed.to_tuples(), vexec::dedup(&dup).to_tuples());
    }

    #[test]
    fn limit_truncates_and_stops_pulling() {
        struct CountingSource {
            inner: BatchSource,
            pulls: Rc<Cell<usize>>,
        }
        impl BatchStream for CountingSource {
            fn schema(&self) -> &Schema {
                self.inner.schema()
            }
            fn next_batch(&mut self) -> Result<Option<Batch>> {
                self.pulls.set(self.pulls.get() + 1);
                self.inner.next_batch()
            }
        }
        let pulls = Rc::new(Cell::new(0));
        let src = CountingSource {
            inner: BatchSource::new(schema(), batch(100), 10),
            pulls: Rc::clone(&pulls),
        };
        let mut s = LimitStream::new(Box::new(src), 25);
        let out = drain(&mut s).unwrap();
        assert_eq!(out.len(), 25);
        assert_eq!(out.to_tuples(), batch(100).to_tuples()[..25].to_vec());
        // 3 chunks of 10 cover the limit; the source is never pulled again.
        assert_eq!(pulls.get(), 3);
    }
}

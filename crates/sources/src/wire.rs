//! Wire codecs for subanswers.
//!
//! A wrapper ships its subanswer back to the mediator as bytes: the
//! schema, every tuple, and the measured execution statistics the
//! historical-cost mechanism records. Built on the substrate codecs of
//! [`disco_common::wire`].

use disco_common::wire::{WireDecode, WireEncode, WireReader, WireWriter};
use disco_common::{Batch, ColumnBuilder, DiscoError, Result, Schema, Tuple};

use crate::source::{BatchAnswer, ExecStats, SubAnswer};

impl WireEncode for ExecStats {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(self.elapsed_ms);
        w.put_f64(self.time_first_ms);
        w.put_u64(self.pages_read);
        w.put_u64(self.buffer_hits);
        w.put_u64(self.objects_scanned);
    }
}

impl WireDecode for ExecStats {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(ExecStats {
            elapsed_ms: r.get_f64()?,
            time_first_ms: r.get_f64()?,
            pages_read: r.get_u64()?,
            buffer_hits: r.get_u64()?,
            objects_scanned: r.get_u64()?,
        })
    }
}

impl WireEncode for SubAnswer {
    fn encode(&self, w: &mut WireWriter) {
        self.schema.encode(w);
        self.stats.encode(w);
        w.put_len(self.tuples.len());
        for t in &self.tuples {
            t.encode(w);
        }
    }
}

impl WireDecode for SubAnswer {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let schema = Schema::decode(r)?;
        let stats = ExecStats::decode(r)?;
        let n = r.get_len()?;
        let mut tuples = Vec::with_capacity(n);
        for _ in 0..n {
            tuples.push(Tuple::decode(r)?);
        }
        Ok(SubAnswer {
            schema,
            tuples,
            stats,
        })
    }
}

impl WireEncode for BatchAnswer {
    /// Byte-identical to the [`SubAnswer`] encoding: rows are walked
    /// column-major storage notwithstanding, so either decoder accepts
    /// either producer's bytes.
    fn encode(&self, w: &mut WireWriter) {
        self.schema.encode(w);
        self.stats.encode(w);
        w.put_len(self.batch.len());
        let arity = self.batch.arity();
        for row in 0..self.batch.len() {
            w.put_len(arity);
            for col in 0..arity {
                self.batch.value_ref(row, col).to_value().encode(w);
            }
        }
    }
}

impl WireDecode for BatchAnswer {
    /// Decode a subanswer straight into columns: cells go into
    /// [`ColumnBuilder`]s as they are read (strings interned via a
    /// borrowed view of the receive buffer), so no [`Tuple`] is ever
    /// built. Stricter than the row decoder in one way: every row must
    /// match the schema's arity — wrappers always produce rectangular
    /// answers, so a ragged payload is a protocol error.
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let schema = Schema::decode(r)?;
        let stats = ExecStats::decode(r)?;
        let n = r.get_len()?;
        let arity = schema.arity();
        let mut builders: Vec<ColumnBuilder> = (0..arity).map(|_| ColumnBuilder::new()).collect();
        for _ in 0..n {
            let row_arity = r.get_len()?;
            if row_arity != arity {
                return Err(DiscoError::Parse(format!(
                    "wire: subanswer row of arity {row_arity} under schema of arity {arity}"
                )));
            }
            for b in builders.iter_mut() {
                match r.get_u8()? {
                    0 => b.push_null(),
                    1 => b.push_bool(r.get_bool()?),
                    2 => b.push_long(r.get_i64()?),
                    3 => b.push_double(r.get_f64()?),
                    4 => b.push_str(r.get_str_ref()?),
                    t => return Err(DiscoError::Parse(format!("wire: unknown Value tag {t}"))),
                }
            }
        }
        let batch = if arity == 0 {
            // Zero-column answers still carry a row count.
            Batch::from_tuples(0, &vec![Tuple::default(); n])
        } else {
            Batch::from_columns(
                builders
                    .into_iter()
                    .map(|b| std::sync::Arc::new(b.finish()))
                    .collect(),
            )?
        };
        Ok(BatchAnswer {
            schema,
            batch,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_common::{AttributeDef, DataType, Value};

    fn answer() -> SubAnswer {
        SubAnswer {
            schema: Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("name", DataType::Str),
            ]),
            tuples: (0..50)
                .map(|i| Tuple::new(vec![Value::Long(i), Value::Str(format!("row{i}"))]))
                .collect(),
            stats: ExecStats {
                elapsed_ms: 123.5,
                time_first_ms: 25.0,
                pages_read: 7,
                buffer_hits: 3,
                objects_scanned: 50,
            },
        }
    }

    #[test]
    fn subanswer_round_trips() {
        let a = answer();
        let bytes = a.to_wire_bytes();
        let back = SubAnswer::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn empty_subanswer_round_trips() {
        let a = SubAnswer {
            schema: Schema::default(),
            tuples: vec![],
            stats: ExecStats::default(),
        };
        let back = SubAnswer::from_wire_bytes(&a.to_wire_bytes()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = answer().to_wire_bytes();
        for cut in (0..bytes.len()).step_by(13) {
            assert!(SubAnswer::from_wire_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn batch_answer_decodes_row_bytes() {
        // The columnar decoder accepts row-encoded bytes and yields the
        // same rows once materialized.
        let a = answer();
        let b = BatchAnswer::from_wire_bytes(&a.to_wire_bytes()).unwrap();
        assert_eq!(b.schema, a.schema);
        assert_eq!(b.stats, a.stats);
        assert_eq!(b.batch.to_tuples(), a.tuples);
    }

    #[test]
    fn batch_answer_encodes_identical_bytes() {
        let a = answer();
        let bytes = a.to_wire_bytes();
        let b = BatchAnswer::from_wire_bytes(&bytes).unwrap();
        assert_eq!(b.to_wire_bytes(), bytes);
        // And the row decoder accepts the columnar encoder's bytes.
        let back = SubAnswer::from_wire_bytes(&b.to_wire_bytes()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn batch_answer_round_trips_nulls_and_mixed_columns() {
        let a = SubAnswer {
            schema: Schema::new(vec![
                AttributeDef::new("k", DataType::Long),
                AttributeDef::new("v", DataType::Str),
            ]),
            tuples: vec![
                Tuple::new(vec![Value::Long(1), Value::Str("x".into())]),
                Tuple::new(vec![Value::Null, Value::Null]),
                Tuple::new(vec![Value::Double(2.5), Value::Bool(true)]),
            ],
            stats: ExecStats::default(),
        };
        let b = BatchAnswer::from_wire_bytes(&a.to_wire_bytes()).unwrap();
        assert_eq!(b.batch.to_tuples(), a.tuples);
        assert_eq!(b.to_wire_bytes(), a.to_wire_bytes());
    }

    #[test]
    fn batch_answer_rejects_ragged_rows() {
        // Schema says arity 2 but a row carries 1 cell: the row decoder
        // tolerates it, the columnar decoder treats it as malformed.
        let a = SubAnswer {
            schema: Schema::new(vec![
                AttributeDef::new("a", DataType::Long),
                AttributeDef::new("b", DataType::Long),
            ]),
            tuples: vec![Tuple::new(vec![Value::Long(1)])],
            stats: ExecStats::default(),
        };
        let bytes = a.to_wire_bytes();
        assert!(SubAnswer::from_wire_bytes(&bytes).is_ok());
        assert!(BatchAnswer::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn batch_answer_truncation_never_panics() {
        let bytes = answer().to_wire_bytes();
        for cut in (0..bytes.len()).step_by(13) {
            assert!(BatchAnswer::from_wire_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn empty_batch_answer_round_trips() {
        let a = BatchAnswer {
            schema: Schema::default(),
            batch: disco_common::Batch::empty(0),
            stats: ExecStats::default(),
        };
        let back = BatchAnswer::from_wire_bytes(&a.to_wire_bytes()).unwrap();
        assert_eq!(back.batch.len(), 0);
        assert_eq!(back.schema, a.schema);
    }
}

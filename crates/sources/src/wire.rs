//! Wire codecs for subanswers.
//!
//! A wrapper ships its subanswer back to the mediator as bytes: the
//! schema, every tuple, and the measured execution statistics the
//! historical-cost mechanism records. Built on the substrate codecs of
//! [`disco_common::wire`].

use disco_common::wire::{WireDecode, WireEncode, WireReader, WireWriter};
use disco_common::{Result, Schema, Tuple};

use crate::source::{ExecStats, SubAnswer};

impl WireEncode for ExecStats {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(self.elapsed_ms);
        w.put_f64(self.time_first_ms);
        w.put_u64(self.pages_read);
        w.put_u64(self.buffer_hits);
        w.put_u64(self.objects_scanned);
    }
}

impl WireDecode for ExecStats {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(ExecStats {
            elapsed_ms: r.get_f64()?,
            time_first_ms: r.get_f64()?,
            pages_read: r.get_u64()?,
            buffer_hits: r.get_u64()?,
            objects_scanned: r.get_u64()?,
        })
    }
}

impl WireEncode for SubAnswer {
    fn encode(&self, w: &mut WireWriter) {
        self.schema.encode(w);
        self.stats.encode(w);
        w.put_len(self.tuples.len());
        for t in &self.tuples {
            t.encode(w);
        }
    }
}

impl WireDecode for SubAnswer {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let schema = Schema::decode(r)?;
        let stats = ExecStats::decode(r)?;
        let n = r.get_len()?;
        let mut tuples = Vec::with_capacity(n);
        for _ in 0..n {
            tuples.push(Tuple::decode(r)?);
        }
        Ok(SubAnswer {
            schema,
            tuples,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_common::{AttributeDef, DataType, Value};

    fn answer() -> SubAnswer {
        SubAnswer {
            schema: Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("name", DataType::Str),
            ]),
            tuples: (0..50)
                .map(|i| Tuple::new(vec![Value::Long(i), Value::Str(format!("row{i}"))]))
                .collect(),
            stats: ExecStats {
                elapsed_ms: 123.5,
                time_first_ms: 25.0,
                pages_read: 7,
                buffer_hits: 3,
                objects_scanned: 50,
            },
        }
    }

    #[test]
    fn subanswer_round_trips() {
        let a = answer();
        let bytes = a.to_wire_bytes();
        let back = SubAnswer::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn empty_subanswer_round_trips() {
        let a = SubAnswer {
            schema: Schema::default(),
            tuples: vec![],
            stats: ExecStats::default(),
        };
        let back = SubAnswer::from_wire_bytes(&a.to_wire_bytes()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = answer().to_wire_bytes();
        for cut in (0..bytes.len()).step_by(13) {
            assert!(SubAnswer::from_wire_bytes(&bytes[..cut]).is_err());
        }
    }
}

//! A from-scratch B+-tree index.
//!
//! Keys are [`Value`]s under the total order of
//! [`Value::total_cmp_value`]; each key maps to the row ids holding it.
//! Leaves are chained for range scans. The tree supports insertion and
//! lookup — the simulated stores build indexes at load time and the
//! workloads are read-only, so deletion is intentionally out of scope.

use std::cmp::Ordering;

use disco_algebra::CompareOp;
use disco_common::Value;

/// Maximum keys per node before splitting.
const ORDER: usize = 64;

/// Key newtype giving [`Value`] a total order.
#[derive(Debug, Clone, PartialEq)]
pub struct Key(pub Value);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp_value(&other.0)
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<Key>,
        /// Row ids per key, parallel to `keys`.
        rids: Vec<Vec<u32>>,
        next: Option<usize>,
    },
    Inner {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]`.
        keys: Vec<Key>,
        children: Vec<usize>,
    },
}

/// The B+-tree.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    height: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// Empty tree.
    pub fn new() -> Self {
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                rids: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
            height: 1,
        }
    }

    /// Build from `(value, rid)` pairs.
    pub fn build(entries: impl IntoIterator<Item = (Value, u32)>) -> Self {
        let mut t = BPlusTree::new();
        for (v, r) in entries {
            t.insert(v, r);
        }
        t
    }

    /// Number of (key, rid) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Insert one entry.
    pub fn insert(&mut self, value: Value, rid: u32) {
        let key = Key(value);
        if let Some((mid_key, right)) = self.insert_at(self.root, key, rid) {
            // Root split: grow a level.
            let new_root = Node::Inner {
                keys: vec![mid_key],
                children: vec![self.root, right],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
            self.height += 1;
        }
        self.len += 1;
    }

    /// Insert below node `idx`; returns `(separator, new right node)` if
    /// the node split.
    fn insert_at(&mut self, idx: usize, key: Key, rid: u32) -> Option<(Key, usize)> {
        // Route first with a short-lived borrow; recurse outside it.
        let child = match &self.nodes[idx] {
            Node::Inner { keys, children } => {
                let pos = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                Some(children[pos])
            }
            Node::Leaf { .. } => None,
        };
        if let Some(child) = child {
            let (mid, right) = self.insert_at(child, key, rid)?;
            let needs_split = {
                let Node::Inner { keys, children } = &mut self.nodes[idx] else {
                    unreachable!("node kind is stable");
                };
                let i = match keys.binary_search(&mid) {
                    Ok(i) => i,
                    Err(i) => i,
                };
                keys.insert(i, mid);
                children.insert(i + 1, right);
                keys.len() > ORDER
            };
            return needs_split.then(|| self.split_inner(idx));
        }
        let needs_split = {
            let Node::Leaf { keys, rids, .. } = &mut self.nodes[idx] else {
                unreachable!("routed to a leaf");
            };
            match keys.binary_search(&key) {
                Ok(i) => {
                    rids[i].push(rid);
                    false
                }
                Err(i) => {
                    keys.insert(i, key);
                    rids.insert(i, vec![rid]);
                    keys.len() > ORDER
                }
            }
        };
        needs_split.then(|| self.split_leaf(idx))
    }

    fn split_leaf(&mut self, idx: usize) -> (Key, usize) {
        let new_idx = self.nodes.len();
        let Node::Leaf { keys, rids, next } = &mut self.nodes[idx] else {
            unreachable!("split_leaf on leaf");
        };
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let right_rids = rids.split_off(mid);
        let sep = right_keys[0].clone();
        let right = Node::Leaf {
            keys: right_keys,
            rids: right_rids,
            next: *next,
        };
        *next = Some(new_idx);
        self.nodes.push(right);
        (sep, new_idx)
    }

    fn split_inner(&mut self, idx: usize) -> (Key, usize) {
        let new_idx = self.nodes.len();
        let Node::Inner { keys, children } = &mut self.nodes[idx] else {
            unreachable!("split_inner on inner");
        };
        let mid = keys.len() / 2;
        let sep = keys[mid].clone();
        let right_keys = keys.split_off(mid + 1);
        keys.pop(); // the separator moves up
        let right_children = children.split_off(mid + 1);
        self.nodes.push(Node::Inner {
            keys: right_keys,
            children: right_children,
        });
        (sep, new_idx)
    }

    /// Row ids with exactly `value`.
    pub fn lookup(&self, value: &Value) -> &[u32] {
        let key = Key(value.clone());
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Inner { keys, children } => {
                    let pos = match keys.binary_search(&key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    idx = children[pos];
                }
                Node::Leaf { keys, rids, .. } => {
                    return match keys.binary_search(&key) {
                        Ok(i) => &rids[i],
                        Err(_) => &[],
                    };
                }
            }
        }
    }

    /// Row ids matching `op value`, in key order. `Ne` is unsupported
    /// (an index gives no benefit) and returns `None`, as does any
    /// comparison a B+-tree cannot serve.
    pub fn scan(&self, op: CompareOp, value: &Value) -> Option<Vec<u32>> {
        let key = Key(value.clone());
        let mut out = Vec::new();
        match op {
            CompareOp::Eq => {
                out.extend_from_slice(self.lookup(value));
            }
            CompareOp::Ne => return None,
            CompareOp::Lt | CompareOp::Le => {
                let mut leaf = self.first_leaf();
                'walk: while let Some(idx) = leaf {
                    let Node::Leaf { keys, rids, next } = &self.nodes[idx] else {
                        unreachable!("leaf chain holds leaves");
                    };
                    for (k, r) in keys.iter().zip(rids) {
                        let ord = k.cmp(&key);
                        let keep = match op {
                            CompareOp::Lt => ord == Ordering::Less,
                            _ => ord != Ordering::Greater,
                        };
                        if keep {
                            out.extend_from_slice(r);
                        } else {
                            break 'walk;
                        }
                    }
                    leaf = *next;
                }
            }
            CompareOp::Gt | CompareOp::Ge => {
                let mut idx = self.leaf_for(&key);
                loop {
                    let Node::Leaf { keys, rids, next } = &self.nodes[idx] else {
                        unreachable!("leaf chain holds leaves");
                    };
                    for (k, r) in keys.iter().zip(rids) {
                        let ord = k.cmp(&key);
                        let keep = match op {
                            CompareOp::Gt => ord == Ordering::Greater,
                            _ => ord != Ordering::Less,
                        };
                        if keep {
                            out.extend_from_slice(r);
                        }
                    }
                    match next {
                        Some(n) => idx = *n,
                        None => break,
                    }
                }
            }
        }
        Some(out)
    }

    fn first_leaf(&self) -> Option<usize> {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Inner { children, .. } => idx = children[0],
                Node::Leaf { .. } => return Some(idx),
            }
        }
    }

    fn leaf_for(&self, key: &Key) -> usize {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Inner { keys, children } => {
                    let pos = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    idx = children[pos];
                }
                Node::Leaf { .. } => return idx,
            }
        }
    }

    /// All distinct keys, in order (diagnostics and statistics export).
    pub fn distinct_keys(&self) -> usize {
        let mut count = 0;
        let mut leaf = self.first_leaf();
        while let Some(idx) = leaf {
            let Node::Leaf { keys, next, .. } = &self.nodes[idx] else {
                unreachable!("leaf chain holds leaves");
            };
            count += keys.len();
            leaf = *next;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn long_tree(n: i64) -> BPlusTree {
        BPlusTree::build((0..n).map(|i| (Value::Long(i), i as u32)))
    }

    #[test]
    fn lookup_finds_inserted() {
        let t = long_tree(10_000);
        assert_eq!(t.len(), 10_000);
        assert!(t.height() > 1);
        assert_eq!(t.lookup(&Value::Long(1234)), &[1234]);
        assert_eq!(t.lookup(&Value::Long(-5)), &[] as &[u32]);
        assert_eq!(t.lookup(&Value::Long(10_000)), &[] as &[u32]);
    }

    #[test]
    fn duplicate_keys_accumulate_rids() {
        let t = BPlusTree::build((0..100u32).map(|i| (Value::Long((i % 10) as i64), i)));
        let rids = t.lookup(&Value::Long(3));
        assert_eq!(rids.len(), 10);
        assert!(rids.iter().all(|r| r % 10 == 3));
    }

    #[test]
    fn range_scans() {
        let t = long_tree(1_000);
        let le = t.scan(CompareOp::Le, &Value::Long(99)).unwrap();
        assert_eq!(le.len(), 100);
        let lt = t.scan(CompareOp::Lt, &Value::Long(99)).unwrap();
        assert_eq!(lt.len(), 99);
        let ge = t.scan(CompareOp::Ge, &Value::Long(990)).unwrap();
        assert_eq!(ge.len(), 10);
        let gt = t.scan(CompareOp::Gt, &Value::Long(990)).unwrap();
        assert_eq!(gt.len(), 9);
        let eq = t.scan(CompareOp::Eq, &Value::Long(5)).unwrap();
        assert_eq!(eq, vec![5]);
        assert!(t.scan(CompareOp::Ne, &Value::Long(5)).is_none());
    }

    #[test]
    fn range_scan_returns_key_order() {
        let t = BPlusTree::build((0..1000u32).rev().map(|i| (Value::Long(i as i64), i)));
        let all = t.scan(CompareOp::Ge, &Value::Long(0)).unwrap();
        assert_eq!(all.len(), 1000);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn string_keys() {
        let t = BPlusTree::build(
            ["delta", "alpha", "charlie", "bravo"]
                .iter()
                .enumerate()
                .map(|(i, s)| (Value::Str((*s).into()), i as u32)),
        );
        assert_eq!(t.lookup(&Value::Str("charlie".into())), &[2]);
        let le = t.scan(CompareOp::Le, &Value::Str("bravo".into())).unwrap();
        assert_eq!(le.len(), 2);
    }

    #[test]
    fn distinct_key_count() {
        let t = BPlusTree::build((0..500u32).map(|i| (Value::Long((i % 50) as i64), i)));
        assert_eq!(t.distinct_keys(), 50);
    }

    // Gated: requires the `proptest` cargo feature (and the proptest
    // dev-dependency, removed so offline builds succeed — see Cargo.toml).
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn matches_btreemap_model(ops in prop::collection::vec((0i64..200, 0u32..10_000), 0..600)) {
                use std::collections::BTreeMap;
                let mut model: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
                let mut tree = BPlusTree::new();
                for (k, r) in &ops {
                    model.entry(*k).or_default().push(*r);
                    tree.insert(Value::Long(*k), *r);
                }
                prop_assert_eq!(tree.len(), ops.len());
                for k in 0i64..200 {
                    let expect = model.get(&k).cloned().unwrap_or_default();
                    prop_assert_eq!(tree.lookup(&Value::Long(k)), &expect[..]);
                }
                // Range agreement at a few pivots.
                for pivot in [0i64, 50, 137, 199] {
                    let mut expect: Vec<u32> = model
                        .range(..=pivot)
                        .flat_map(|(_, v)| v.iter().copied())
                        .collect();
                    let got = tree.scan(CompareOp::Le, &Value::Long(pivot)).unwrap();
                    // Both are key-ordered; rid order within a key is insertion order.
                    prop_assert_eq!(&got, &expect);
                    expect.clear();
                }
            }
        }
    }
}

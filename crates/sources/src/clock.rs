//! Virtual time and per-source cost profiles.
//!
//! Every simulated source charges work to a [`VirtualClock`]; "measured"
//! response times are therefore exact, deterministic functions of the
//! physical events (page faults, objects processed) rather than of wall
//! time, which makes experiment output reproducible and assertable.

/// Deterministic elapsed-time accumulator (milliseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    now_ms: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Charge `ms` milliseconds of work.
    pub fn charge(&mut self, ms: f64) {
        debug_assert!(ms >= 0.0, "negative charge {ms}");
        self.now_ms += ms;
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> f64 {
        self.now_ms
    }
}

/// The cost constants of one simulated source — what a calibration
/// procedure would estimate for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Reading one page from disk (ms).
    pub io_ms: f64,
    /// Processing and delivering one result object (ms) — the paper's
    /// `Output`.
    pub output_ms: f64,
    /// Evaluating a predicate on one object (ms).
    pub cpu_pred_ms: f64,
    /// Examining one object during a sequential scan (ms).
    pub cpu_scan_ms: f64,
    /// One hash-table operation (ms).
    pub cpu_hash_ms: f64,
    /// One index descent (ms).
    pub probe_ms: f64,
    /// Sort coefficient: `sort_factor_ms * n * log2 n`.
    pub sort_factor_ms: f64,
    /// Query start-up overhead (ms).
    pub overhead_ms: f64,
}

impl CostProfile {
    /// The paper's measured ObjectStore constants (§5).
    pub fn object_store() -> Self {
        CostProfile {
            io_ms: 25.0,
            output_ms: 9.0,
            cpu_pred_ms: 0.05,
            cpu_scan_ms: 0.01,
            cpu_hash_ms: 0.02,
            probe_ms: 2.0,
            sort_factor_ms: 0.02,
            overhead_ms: 120.0,
        }
    }

    /// A leaner disk-based relational system: faster I/O path and a much
    /// cheaper tuple-delivery pipeline.
    pub fn relational() -> Self {
        CostProfile {
            io_ms: 10.0,
            output_ms: 0.5,
            cpu_pred_ms: 0.02,
            cpu_scan_ms: 0.005,
            cpu_hash_ms: 0.01,
            probe_ms: 1.0,
            sort_factor_ms: 0.01,
            overhead_ms: 40.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut c = VirtualClock::new();
        c.charge(25.0);
        c.charge(9.0);
        assert_eq!(c.now(), 34.0);
    }

    #[test]
    fn profiles_differ() {
        let o = CostProfile::object_store();
        let r = CostProfile::relational();
        assert_eq!(o.io_ms, 25.0);
        assert_eq!(o.output_ms, 9.0);
        assert!(r.output_ms < o.output_ms);
    }
}

//! A semi-structured document source (Tout-XML lineage).
//!
//! Collections hold nested documents — objects, arrays, scalars — and
//! the wrapper exposes them to the mediator through a *flattening
//! boundary*: each collection declares a set of path expressions
//! ([`DocField`]) that project the documents onto a flat relational
//! schema at the `Scan` boundary, after which the ordinary row
//! operators (and hence the columnar combine engine upstream) apply
//! unchanged. Three path semantics cover the paper-adjacent predicate
//! classes:
//!
//! * `Scalar` — `a.b.c = k`: the value at the path, `Null` when any
//!   step is missing;
//! * `Exists` — existence tests: a `Bool` column, `true` iff the path
//!   resolves to a non-null value;
//! * `Unnest` — array containment: one output row per element of the
//!   array at the path (no rows for an empty or missing array), so
//!   `array contains k` becomes an ordinary equality selection on the
//!   unnested column.
//!
//! Costs are navigation-dominated: every document pays one pointer
//! chase per path step, which is what [`DocSource::path_cost_rules`]
//! exports to the mediator as wrapper cost rules — a cost shape the
//! generic page-I/O model cannot express.

use disco_algebra::{CompareOp, LogicalPlan};
use disco_catalog::{AttributeStats, CollectionStats, ExtentStats};
use disco_common::{AttributeDef, DataType, DiscoError, Result, Schema, Tuple, Value};

use crate::clock::VirtualClock;
use crate::exec;
use crate::source::{DataSource, ExecStats, SubAnswer};

/// A nested document value. Objects keep declaration order, which makes
/// flattening (and therefore every downstream answer) deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum DocValue {
    Null,
    Bool(bool),
    Long(i64),
    Double(f64),
    Str(String),
    Array(Vec<DocValue>),
    Object(Vec<(String, DocValue)>),
}

impl DocValue {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, DocValue)>) -> DocValue {
        DocValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array constructor.
    pub fn arr(items: impl IntoIterator<Item = DocValue>) -> DocValue {
        DocValue::Array(items.into_iter().collect())
    }

    /// Scalar conversion for the flat boundary; composites and `Null`
    /// flatten to [`Value::Null`].
    fn to_scalar(&self) -> Value {
        match self {
            DocValue::Bool(b) => Value::Bool(*b),
            DocValue::Long(n) => Value::Long(*n),
            DocValue::Double(d) => Value::Double(*d),
            DocValue::Str(s) => Value::Str(s.clone()),
            DocValue::Null | DocValue::Array(_) | DocValue::Object(_) => Value::Null,
        }
    }
}

impl From<i64> for DocValue {
    fn from(v: i64) -> Self {
        DocValue::Long(v)
    }
}
impl From<f64> for DocValue {
    fn from(v: f64) -> Self {
        DocValue::Double(v)
    }
}
impl From<&str> for DocValue {
    fn from(v: &str) -> Self {
        DocValue::Str(v.into())
    }
}
impl From<bool> for DocValue {
    fn from(v: bool) -> Self {
        DocValue::Bool(v)
    }
}

/// How a declared path flattens into a column.
#[derive(Debug, Clone, PartialEq)]
pub enum PathKind {
    /// The scalar at the path; `Null` when missing.
    Scalar(DataType),
    /// `true` iff the path resolves to a non-null value.
    Exists,
    /// One row per element of the array at the path.
    Unnest(DataType),
}

/// One declared path expression: exported column `name`, navigated
/// dotted `path`, flattening semantics `kind`.
#[derive(Debug, Clone, PartialEq)]
pub struct DocField {
    pub name: String,
    pub path: String,
    pub kind: PathKind,
}

impl DocField {
    pub fn scalar(name: impl Into<String>, path: impl Into<String>, ty: DataType) -> Self {
        DocField {
            name: name.into(),
            path: path.into(),
            kind: PathKind::Scalar(ty),
        }
    }

    pub fn exists(name: impl Into<String>, path: impl Into<String>) -> Self {
        DocField {
            name: name.into(),
            path: path.into(),
            kind: PathKind::Exists,
        }
    }

    pub fn unnest(name: impl Into<String>, path: impl Into<String>, ty: DataType) -> Self {
        DocField {
            name: name.into(),
            path: path.into(),
            kind: PathKind::Unnest(ty),
        }
    }

    fn ty(&self) -> DataType {
        match &self.kind {
            PathKind::Scalar(ty) | PathKind::Unnest(ty) => *ty,
            PathKind::Exists => DataType::Bool,
        }
    }

    fn depth(&self) -> usize {
        self.path.split('.').count()
    }
}

/// One document collection with its flattening declaration.
#[derive(Debug, Clone)]
struct DocCollection {
    name: String,
    fields: Vec<DocField>,
    docs: Vec<DocValue>,
}

impl DocCollection {
    fn schema(&self) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| AttributeDef::new(f.name.clone(), f.ty()))
                .collect::<Vec<_>>(),
        )
    }

    /// Navigated path steps per document (what navigation cost scales
    /// with).
    fn nav_depth(&self) -> usize {
        self.fields.iter().map(DocField::depth).sum()
    }

    /// Flatten every document through the declared paths.
    fn flatten(&self) -> Vec<Tuple> {
        let mut out = Vec::new();
        let unnest = self
            .fields
            .iter()
            .position(|f| matches!(f.kind, PathKind::Unnest(_)));
        for doc in &self.docs {
            let base: Vec<Value> = self
                .fields
                .iter()
                .map(|f| match &f.kind {
                    PathKind::Scalar(_) => {
                        navigate(doc, &f.path).map_or(Value::Null, DocValue::to_scalar)
                    }
                    PathKind::Exists => Value::Bool(!matches!(
                        navigate(doc, &f.path),
                        None | Some(DocValue::Null)
                    )),
                    // Placeholder; replaced per element below.
                    PathKind::Unnest(_) => Value::Null,
                })
                .collect();
            match unnest {
                None => out.push(Tuple::new(base)),
                Some(u) => {
                    // One row per array element; no array (or an empty
                    // one) contributes no rows.
                    let Some(DocValue::Array(items)) = navigate(doc, &self.fields[u].path) else {
                        continue;
                    };
                    for item in items {
                        let mut row = base.clone();
                        row[u] = item.to_scalar();
                        out.push(Tuple::new(row));
                    }
                }
            }
        }
        out
    }
}

/// Descend a dotted path through object fields. Arrays and scalars met
/// before the final step end the navigation (the path is missing).
fn navigate<'a>(doc: &'a DocValue, path: &str) -> Option<&'a DocValue> {
    let mut cur = doc;
    for step in path.split('.') {
        let DocValue::Object(pairs) = cur else {
            return None;
        };
        cur = pairs.iter().find(|(k, _)| k == step).map(|(_, v)| v)?;
    }
    Some(cur)
}

/// The document source: nested collections behind a flattening
/// relational boundary.
#[derive(Debug, Clone)]
pub struct DocSource {
    name: String,
    collections: Vec<DocCollection>,
    /// Cost to open a collection (ms).
    pub open_ms: f64,
    /// Cost of one path-navigation step on one document (ms).
    pub nav_ms: f64,
    /// Cost to deliver one flattened row (ms).
    pub output_ms: f64,
    /// Per-tuple predicate evaluation (ms).
    pub cpu_pred_ms: f64,
    /// Per-tuple hashing (join/dedup/aggregate) (ms).
    pub cpu_hash_ms: f64,
    /// Sort coefficient: `sort_factor_ms * n * log2 n`.
    pub sort_factor_ms: f64,
}

impl DocSource {
    pub fn new(name: impl Into<String>) -> Self {
        DocSource {
            name: name.into(),
            collections: Vec::new(),
            open_ms: 80.0,
            nav_ms: 0.02,
            output_ms: 9.0,
            cpu_pred_ms: 0.05,
            cpu_hash_ms: 0.02,
            sort_factor_ms: 0.02,
        }
    }

    /// Add a collection of documents with its flattening declaration.
    pub fn add_collection(
        &mut self,
        name: impl Into<String>,
        fields: Vec<DocField>,
        docs: Vec<DocValue>,
    ) -> Result<()> {
        let name = name.into();
        if fields.is_empty() {
            return Err(DiscoError::Source(format!(
                "document collection `{name}` declares no paths"
            )));
        }
        for f in &fields {
            if f.name.contains('.') {
                return Err(DiscoError::Source(format!(
                    "exported column `{}` must not contain dots",
                    f.name
                )));
            }
        }
        let unnests = fields
            .iter()
            .filter(|f| matches!(f.kind, PathKind::Unnest(_)))
            .count();
        if unnests > 1 {
            return Err(DiscoError::Source(format!(
                "document collection `{name}` declares {unnests} unnest paths; at most one \
                 is supported"
            )));
        }
        if self.collections.iter().any(|c| c.name == name) {
            return Err(DiscoError::Source(format!(
                "duplicate document collection `{name}`"
            )));
        }
        self.collections.push(DocCollection { name, fields, docs });
        Ok(())
    }

    fn collection(&self, name: &str) -> Result<&DocCollection> {
        self.collections
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| DiscoError::Source(format!("unknown document collection `{name}`")))
    }

    /// Wrapper cost rules describing path navigation: scans pay one
    /// pointer chase per document per path step instead of page I/O.
    /// The exported `DocDepth` is the worst declared depth, keeping the
    /// rule a single wrapper-scope formula (§3's interface documents
    /// could refine this per collection).
    pub fn path_cost_rules(&self) -> String {
        let depth = self
            .collections
            .iter()
            .map(DocCollection::nav_depth)
            .max()
            .unwrap_or(1);
        format!(
            "let DocOpen = {open};\n\
             let NavMs = {nav};\n\
             let DocDepth = {depth};\n\
             let DocOutput = {output};\n\
             rule scan($C) {{\n\
                 TimeFirst = DocOpen + NavMs * DocDepth + DocOutput;\n\
                 TotalTime = DocOpen + $C.CountObject * (NavMs * DocDepth + DocOutput);\n\
             }}\n",
            open = self.open_ms,
            nav = self.nav_ms,
            output = self.output_ms,
        )
    }

    fn exec(
        &self,
        plan: &LogicalPlan,
        clock: &mut VirtualClock,
        scanned: &mut u64,
    ) -> Result<(Schema, Vec<Tuple>)> {
        match plan {
            LogicalPlan::Scan { collection, .. } => {
                let c = self.collection(&collection.collection)?;
                clock.charge(self.open_ms);
                clock.charge(c.docs.len() as f64 * c.nav_depth() as f64 * self.nav_ms);
                *scanned += c.docs.len() as u64;
                Ok((c.schema(), c.flatten()))
            }
            LogicalPlan::Select { input, predicate } => {
                let (schema, tuples) = self.exec(input, clock, scanned)?;
                clock.charge(
                    tuples.len() as f64 * predicate.conjuncts.len() as f64 * self.cpu_pred_ms,
                );
                let out = exec::filter(&schema, &tuples, predicate)?;
                Ok((schema, out))
            }
            LogicalPlan::Project { input, columns } => {
                let (schema, tuples) = self.exec(input, clock, scanned)?;
                clock.charge(tuples.len() as f64 * self.cpu_hash_ms);
                exec::project(&schema, &tuples, columns)
            }
            LogicalPlan::Sort { input, keys } => {
                let (schema, mut tuples) = self.exec(input, clock, scanned)?;
                let n = tuples.len() as f64;
                clock.charge(self.sort_factor_ms * n * n.max(2.0).log2());
                exec::sort(&schema, &mut tuples, keys)?;
                Ok((schema, tuples))
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                ..
            } => {
                let (ls, lt) = self.exec(left, clock, scanned)?;
                let (rs, rt) = self.exec(right, clock, scanned)?;
                let out_schema = ls.join(&rs);
                let out = if predicate.op == CompareOp::Eq {
                    clock.charge((lt.len() + rt.len()) as f64 * self.cpu_hash_ms);
                    exec::hash_join(&ls, &lt, &rs, &rt, predicate)?
                } else {
                    clock.charge((lt.len() * rt.len()) as f64 * self.cpu_pred_ms);
                    exec::nested_loop_join(&ls, &lt, &rs, &rt, predicate)?
                };
                Ok((out_schema, out))
            }
            LogicalPlan::Union { left, right } => {
                let (ls, mut lt) = self.exec(left, clock, scanned)?;
                let (rs, rt) = self.exec(right, clock, scanned)?;
                if ls.arity() != rs.arity() {
                    return Err(DiscoError::Exec("union arity mismatch".into()));
                }
                lt.extend(rt);
                Ok((ls, lt))
            }
            LogicalPlan::Dedup { input } => {
                let (schema, tuples) = self.exec(input, clock, scanned)?;
                clock.charge(tuples.len() as f64 * self.cpu_hash_ms);
                Ok((schema, exec::dedup(&tuples)))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (schema, tuples) = self.exec(input, clock, scanned)?;
                clock.charge(tuples.len() as f64 * self.cpu_hash_ms);
                let out = exec::aggregate(&schema, &tuples, group_by, aggs)?;
                Ok((plan.output_schema()?, out))
            }
            LogicalPlan::Submit { .. } => Err(DiscoError::Source(
                "data sources do not execute `submit` operators".into(),
            )),
        }
    }
}

impl DataSource for DocSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn collections(&self) -> Vec<(String, Schema)> {
        self.collections
            .iter()
            .map(|c| (c.name.clone(), c.schema()))
            .collect()
    }

    fn statistics(&self, collection: &str) -> Option<CollectionStats> {
        let c = self.collection(collection).ok()?;
        let schema = c.schema();
        let tuples = c.flatten();
        let n = tuples.len() as u64;
        let total: u64 = tuples.iter().map(Tuple::width).sum();
        let mut stats = CollectionStats::new(ExtentStats {
            count_object: n,
            total_size: total,
            object_size: (total / n.max(1)).max(1),
            count_page: None,
        });
        for (i, attr) in schema.attributes().iter().enumerate() {
            let mut distinct = std::collections::BTreeSet::new();
            let (mut min, mut max): (Option<Value>, Option<Value>) = (None, None);
            for t in &tuples {
                let Some(v) = t.get(i) else { continue };
                if *v == Value::Null {
                    continue;
                }
                distinct.insert(format!("{v}"));
                if min
                    .as_ref()
                    .map(|m| v.total_cmp_value(m).is_lt())
                    .unwrap_or(true)
                {
                    min = Some(v.clone());
                }
                if max
                    .as_ref()
                    .map(|m| v.total_cmp_value(m).is_gt())
                    .unwrap_or(true)
                {
                    max = Some(v.clone());
                }
            }
            stats = stats.with_attribute(
                attr.name.clone(),
                AttributeStats::new(
                    distinct.len().max(1) as u64,
                    min.unwrap_or(Value::Null),
                    max.unwrap_or(Value::Null),
                ),
            );
        }
        Some(stats)
    }

    fn execute(&self, plan: &LogicalPlan) -> Result<SubAnswer> {
        let mut clock = VirtualClock::new();
        let mut scanned = 0u64;
        let (schema, tuples) = self.exec(plan, &mut clock, &mut scanned)?;
        let produced = clock.now();
        clock.charge(tuples.len() as f64 * self.output_ms);
        let elapsed = clock.now();
        let one = (!tuples.is_empty()) as u64 as f64;
        let time_first = if crate::store::blocking_root(plan) {
            produced + one * self.output_ms
        } else {
            self.open_ms + one * self.output_ms
        };
        Ok(SubAnswer {
            schema,
            tuples,
            stats: ExecStats {
                elapsed_ms: elapsed,
                time_first_ms: time_first.min(elapsed),
                pages_read: 0,
                buffer_hits: 0,
                objects_scanned: scanned,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::PlanBuilder;
    use disco_common::QualifiedName;

    fn orders() -> DocSource {
        let mut s = DocSource::new("docs");
        let docs: Vec<DocValue> = (0..20i64)
            .map(|i| {
                DocValue::obj([
                    ("id", DocValue::Long(i)),
                    (
                        "customer",
                        DocValue::obj([
                            ("name", DocValue::Str(format!("c{}", i % 5))),
                            (
                                "address",
                                DocValue::obj([("zip", DocValue::Long(10_000 + i % 3))]),
                            ),
                        ]),
                    ),
                    (
                        "tags",
                        DocValue::arr((0..(i % 4)).map(|t| DocValue::Str(format!("t{t}")))),
                    ),
                    (
                        "discount",
                        if i % 2 == 0 {
                            DocValue::Double(0.1)
                        } else {
                            DocValue::Null
                        },
                    ),
                ])
            })
            .collect();
        s.add_collection(
            "Orders",
            vec![
                DocField::scalar("id", "id", DataType::Long),
                DocField::scalar("zip", "customer.address.zip", DataType::Long),
                DocField::exists("has_discount", "discount"),
            ],
            docs.clone(),
        )
        .unwrap();
        s.add_collection(
            "OrderTags",
            vec![
                DocField::scalar("id", "id", DataType::Long),
                DocField::unnest("tag", "tags", DataType::Str),
            ],
            docs,
        )
        .unwrap();
        s
    }

    fn scan(s: &DocSource, coll: &str) -> PlanBuilder {
        let schema = s
            .collections()
            .into_iter()
            .find(|(n, _)| n == coll)
            .unwrap()
            .1;
        PlanBuilder::scan(QualifiedName::new("docs", coll), schema)
    }

    #[test]
    fn scalar_paths_flatten_with_nulls_for_missing() {
        let s = orders();
        let a = s.execute(&scan(&s, "Orders").build()).unwrap();
        assert_eq!(a.tuples.len(), 20);
        // Deep path resolved.
        assert_eq!(a.tuples[0].get(1), Some(&Value::Long(10_000)));
        // Existence column reflects the null discount on odd ids.
        assert_eq!(a.tuples[0].get(2), Some(&Value::Bool(true)));
        assert_eq!(a.tuples[1].get(2), Some(&Value::Bool(false)));
        assert_eq!(a.stats.objects_scanned, 20);
        assert!(a.stats.elapsed_ms > 0.0);
    }

    #[test]
    fn unnest_emits_one_row_per_element_and_none_for_empty() {
        let s = orders();
        let a = s.execute(&scan(&s, "OrderTags").build()).unwrap();
        // i % 4 tags per doc: 20/4 * (0+1+2+3) = 30 rows.
        assert_eq!(a.tuples.len(), 30);
        // Array containment as equality on the unnested column.
        let contains = s
            .execute(
                &scan(&s, "OrderTags")
                    .select("tag", CompareOp::Eq, Value::Str("t2".into()))
                    .build(),
            )
            .unwrap();
        assert_eq!(contains.tuples.len(), 5);
        for t in &contains.tuples {
            assert_eq!(t.get(1), Some(&Value::Str("t2".into())));
        }
    }

    #[test]
    fn path_predicates_and_aggregates_run_source_side() {
        let s = orders();
        let a = s
            .execute(
                &scan(&s, "Orders")
                    .select("zip", CompareOp::Eq, 10_001i64)
                    .build(),
            )
            .unwrap();
        assert!(!a.tuples.is_empty());
        for t in &a.tuples {
            assert_eq!(t.get(1), Some(&Value::Long(10_001)));
        }
        let g = s
            .execute(
                &scan(&s, "Orders")
                    .aggregate(&["zip"], vec![("n", disco_algebra::AggFunc::Count, None)])
                    .build(),
            )
            .unwrap();
        assert_eq!(g.tuples.len(), 3);
    }

    #[test]
    fn statistics_derive_from_flattened_rows() {
        let s = orders();
        let st = s.statistics("OrderTags").unwrap();
        assert_eq!(st.extent.count_object, 30);
        assert_eq!(st.attribute("tag").count_distinct, 3);
        let st = s.statistics("Orders").unwrap();
        assert_eq!(st.attribute("zip").min, Value::Long(10_000));
        assert_eq!(st.attribute("zip").max, Value::Long(10_002));
    }

    #[test]
    fn cost_rules_parse_and_reflect_navigation() {
        let s = orders();
        let text = s.path_cost_rules();
        let doc = disco_costlang::parse_document(&text).unwrap();
        let compiled = disco_costlang::compile_document(&doc).unwrap();
        assert_eq!(compiled.rules.len(), 1);
        // Depth: Orders navigates 1 + 3 + 1 = 5 steps/doc, OrderTags 2.
        assert!(text.contains("let DocDepth = 5"));
    }

    #[test]
    fn declaration_is_validated() {
        let mut s = DocSource::new("docs");
        assert!(s.add_collection("Empty", vec![], vec![]).is_err());
        assert!(s
            .add_collection(
                "Dotted",
                vec![DocField::scalar("a.b", "a.b", DataType::Long)],
                vec![],
            )
            .is_err());
        assert!(s
            .add_collection(
                "TwoUnnests",
                vec![
                    DocField::unnest("x", "xs", DataType::Long),
                    DocField::unnest("y", "ys", DataType::Long),
                ],
                vec![],
            )
            .is_err());
    }
}

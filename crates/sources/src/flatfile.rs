//! A scan-only flat-file source.
//!
//! Models the paper's "bibliographic and multimedia files" class of
//! sources: no indexes, no predicate evaluation — the wrapper can only
//! scan and parse, and the mediator must compensate for everything else.
//! Cost: a fixed open overhead plus a per-line parse cost.

use disco_algebra::LogicalPlan;
use disco_catalog::{CollectionStats, ExtentStats};
use disco_common::{DiscoError, Result, Schema, Tuple, Value};

use crate::source::{DataSource, ExecStats, SubAnswer};

/// One delimited text file exposed as a single collection.
#[derive(Debug, Clone)]
pub struct FlatFile {
    name: String,
    collection: String,
    schema: Schema,
    lines: Vec<Tuple>,
    /// Average encoded line width in bytes.
    line_width: u64,
    /// Cost to open the file (ms).
    pub open_ms: f64,
    /// Cost to read and parse one line (ms).
    pub parse_ms: f64,
}

impl FlatFile {
    /// Build a flat file from rows.
    pub fn new(
        name: impl Into<String>,
        collection: impl Into<String>,
        schema: Schema,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Self {
        let lines: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
        let total: u64 = lines.iter().map(Tuple::width).sum();
        let line_width = (total / lines.len().max(1) as u64).max(1);
        FlatFile {
            name: name.into(),
            collection: collection.into(),
            schema,
            lines,
            line_width,
            open_ms: 50.0,
            parse_ms: 0.8,
        }
    }

    /// Override per-line parse cost.
    pub fn with_parse_ms(mut self, ms: f64) -> Self {
        self.parse_ms = ms;
        self
    }
}

impl DataSource for FlatFile {
    fn name(&self) -> &str {
        &self.name
    }

    fn collections(&self) -> Vec<(String, Schema)> {
        vec![(self.collection.clone(), self.schema.clone())]
    }

    fn statistics(&self, collection: &str) -> Option<CollectionStats> {
        if collection != self.collection {
            return None;
        }
        let n = self.lines.len() as u64;
        // Files export extent statistics only; attribute statistics fall
        // back to the mediator defaults (no index, guessed distincts) —
        // the "partial information" case of §1.
        Some(CollectionStats::new(ExtentStats {
            count_object: n,
            total_size: n * self.line_width,
            object_size: self.line_width,
            count_page: None,
        }))
    }

    fn execute(&self, plan: &LogicalPlan) -> Result<SubAnswer> {
        // Scan-only: anything else must be compensated by the mediator.
        let LogicalPlan::Scan { collection, .. } = plan else {
            return Err(DiscoError::Unsupported(format!(
                "flat file `{}` can only scan (got `{}`)",
                self.name,
                plan.kind()
            )));
        };
        if collection.collection != self.collection {
            return Err(DiscoError::Source(format!(
                "unknown collection `{}`",
                collection.collection
            )));
        }
        let elapsed = self.open_ms + self.lines.len() as f64 * self.parse_ms;
        Ok(SubAnswer {
            schema: self.schema.clone(),
            tuples: self.lines.clone(),
            stats: ExecStats {
                elapsed_ms: elapsed,
                time_first_ms: self.open_ms + self.parse_ms.min(elapsed),
                pages_read: 0,
                buffer_hits: 0,
                objects_scanned: self.lines.len() as u64,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{CompareOp, PlanBuilder};
    use disco_common::{AttributeDef, DataType, QualifiedName};

    fn file() -> FlatFile {
        FlatFile::new(
            "docs",
            "Log",
            Schema::new(vec![
                AttributeDef::new("ts", DataType::Long),
                AttributeDef::new("msg", DataType::Str),
            ]),
            (0..100i64).map(|i| vec![Value::Long(i), Value::Str(format!("m{i}"))]),
        )
    }

    fn scan() -> PlanBuilder {
        PlanBuilder::scan(
            QualifiedName::new("docs", "Log"),
            Schema::new(vec![
                AttributeDef::new("ts", DataType::Long),
                AttributeDef::new("msg", DataType::Str),
            ]),
        )
    }

    #[test]
    fn scan_parses_every_line() {
        let f = file();
        let ans = f.execute(&scan().build()).unwrap();
        assert_eq!(ans.tuples.len(), 100);
        assert!((ans.stats.elapsed_ms - (50.0 + 100.0 * 0.8)).abs() < 1e-9);
        assert_eq!(ans.stats.pages_read, 0);
    }

    #[test]
    fn non_scan_rejected() {
        let f = file();
        let plan = scan().select("ts", CompareOp::Gt, 5i64).build();
        assert_eq!(f.execute(&plan).unwrap_err().kind(), "unsupported");
    }

    #[test]
    fn statistics_extent_only() {
        let f = file();
        let st = f.statistics("Log").unwrap();
        assert_eq!(st.extent.count_object, 100);
        assert!(st.attributes.is_empty());
        assert!(f.statistics("Other").is_none());
    }

    #[test]
    fn wrong_collection_rejected() {
        let f = file();
        let plan = PlanBuilder::scan(
            QualifiedName::new("docs", "Other"),
            Schema::new(vec![AttributeDef::new("x", DataType::Long)]),
        )
        .build();
        assert_eq!(f.execute(&plan).unwrap_err().kind(), "source");
    }
}

//! In-memory operator implementations.
//!
//! Shared by the simulated sources (executing pushed-down subplans) and
//! the mediator's local executor (combining subanswers). These are plain
//! batch operators over materialized tuple vectors; cost accounting is the
//! caller's business.

use std::collections::HashMap;

use disco_algebra::logical::AggExpr;
use disco_algebra::{AggFunc, CompareOp, JoinPredicate, Predicate, ScalarExpr};
use disco_common::{DiscoError, Result, Schema, Tuple, Value};

/// Filter tuples by a conjunctive predicate.
pub fn filter(schema: &Schema, tuples: &[Tuple], pred: &Predicate) -> Result<Vec<Tuple>> {
    // Resolve attribute positions once.
    let resolved: Vec<(usize, &disco_algebra::SelectPredicate)> = pred
        .conjuncts
        .iter()
        .map(|c| {
            schema
                .index_of(&c.attribute)
                .map(|i| (i, c))
                .ok_or_else(|| DiscoError::Exec(format!("unknown attribute `{}`", c.attribute)))
        })
        .collect::<Result<_>>()?;
    Ok(tuples
        .iter()
        .filter(|t| resolved.iter().all(|(i, c)| c.eval_at(t, *i)))
        .cloned()
        .collect())
}

/// Project tuples to named expressions, returning the output schema too.
pub fn project(
    schema: &Schema,
    tuples: &[Tuple],
    columns: &[(String, ScalarExpr)],
) -> Result<(Schema, Vec<Tuple>)> {
    let mut out = Vec::with_capacity(tuples.len());
    for t in tuples {
        let values: Vec<Value> = columns
            .iter()
            .map(|(_, e)| e.eval(schema, t))
            .collect::<Result<_>>()?;
        out.push(Tuple::new(values));
    }
    Ok((project_schema(schema, columns), out))
}

/// Output schema of a projection: type inference on a representative
/// plan node. Shared by the row ([`project`]) and columnar
/// ([`crate::vexec::project`]) implementations.
pub fn project_schema(schema: &Schema, columns: &[(String, ScalarExpr)]) -> Schema {
    use disco_common::{AttributeDef, DataType};
    let attrs = columns
        .iter()
        .map(|(name, e)| {
            let ty = match e {
                ScalarExpr::Attr(a) => schema.attribute(a).map(|d| d.ty).unwrap_or(DataType::Str),
                ScalarExpr::Const(v) => v.data_type().unwrap_or(DataType::Str),
                ScalarExpr::Binary { .. } => DataType::Double,
            };
            AttributeDef::new(name.clone(), ty)
        })
        .collect();
    Schema::new(attrs)
}

/// Sort tuples in place by `(attribute, ascending)` keys.
pub fn sort(schema: &Schema, tuples: &mut [Tuple], keys: &[(String, bool)]) -> Result<()> {
    let resolved: Vec<(usize, bool)> = keys
        .iter()
        .map(|(k, asc)| {
            schema
                .index_of(k)
                .map(|i| (i, *asc))
                .ok_or_else(|| DiscoError::Exec(format!("unknown sort key `{k}`")))
        })
        .collect::<Result<_>>()?;
    tuples.sort_by(|a, b| {
        for (i, asc) in &resolved {
            let (x, y) = (a.get(*i), b.get(*i));
            let ord = match (x, y) {
                (Some(x), Some(y)) => x.total_cmp_value(y),
                _ => std::cmp::Ordering::Equal,
            };
            let ord = if *asc { ord } else { ord.reverse() };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

/// Normalized join/grouping key for a value: numeric values collapse
/// across `Long`/`Double`; `Null` never matches anything.
fn value_key(v: &Value) -> Option<String> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(format!("b:{b}")),
        Value::Long(_) | Value::Double(_) => {
            // Normalize -0.0 to 0.0 so hashing agrees with `CompareOp::Eq`
            // (which compares numerically).
            let f = v.as_f64().expect("numeric");
            let f = if f == 0.0 { 0.0 } else { f };
            Some(format!("n:{}", f.to_bits()))
        }
        Value::Str(s) => Some(format!("s:{s}")),
    }
}

/// Hash equi-join (only `=` predicates).
pub fn hash_join(
    left_schema: &Schema,
    left: &[Tuple],
    right_schema: &Schema,
    right: &[Tuple],
    pred: &JoinPredicate,
) -> Result<Vec<Tuple>> {
    if pred.op != CompareOp::Eq {
        return Err(DiscoError::Exec(format!(
            "hash join requires an equality predicate, got `{}`",
            pred.op
        )));
    }
    let li = left_schema
        .index_of(&pred.left_attr)
        .ok_or_else(|| DiscoError::Exec(format!("unknown join attribute `{}`", pred.left_attr)))?;
    let ri = right_schema
        .index_of(&pred.right_attr)
        .ok_or_else(|| DiscoError::Exec(format!("unknown join attribute `{}`", pred.right_attr)))?;
    let mut table: HashMap<String, Vec<&Tuple>> = HashMap::new();
    for r in right {
        if let Some(k) = r.get(ri).and_then(value_key) {
            table.entry(k).or_default().push(r);
        }
    }
    let mut out = Vec::new();
    for l in left {
        let Some(k) = l.get(li).and_then(value_key) else {
            continue;
        };
        if let Some(matches) = table.get(&k) {
            for r in matches {
                out.push(l.join(r));
            }
        }
    }
    Ok(out)
}

/// Nested-loop join supporting any comparison predicate.
pub fn nested_loop_join(
    left_schema: &Schema,
    left: &[Tuple],
    right_schema: &Schema,
    right: &[Tuple],
    pred: &JoinPredicate,
) -> Result<Vec<Tuple>> {
    let li = left_schema
        .index_of(&pred.left_attr)
        .ok_or_else(|| DiscoError::Exec(format!("unknown join attribute `{}`", pred.left_attr)))?;
    let ri = right_schema
        .index_of(&pred.right_attr)
        .ok_or_else(|| DiscoError::Exec(format!("unknown join attribute `{}`", pred.right_attr)))?;
    let mut out = Vec::new();
    for l in left {
        for r in right {
            if let (Some(x), Some(y)) = (l.get(li), r.get(ri)) {
                if pred.op.eval(x, y) {
                    out.push(l.join(r));
                }
            }
        }
    }
    Ok(out)
}

/// Duplicate elimination (first occurrence wins).
pub fn dedup(tuples: &[Tuple]) -> Vec<Tuple> {
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut out = Vec::new();
    for t in tuples {
        let key: String = t
            .values()
            .iter()
            .map(|v| value_key(v).unwrap_or_else(|| "∅".into()))
            .collect::<Vec<_>>()
            .join("|");
        if seen.insert(key, ()).is_none() {
            out.push(t.clone());
        }
    }
    out
}

/// Group and aggregate, returning the output tuples (group keys first,
/// then aggregates, matching `LogicalPlan::Aggregate`'s schema).
pub fn aggregate(
    schema: &Schema,
    tuples: &[Tuple],
    group_by: &[String],
    aggs: &[AggExpr],
) -> Result<Vec<Tuple>> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| {
            schema
                .index_of(g)
                .ok_or_else(|| DiscoError::Exec(format!("unknown group-by attribute `{g}`")))
        })
        .collect::<Result<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.arg {
            Some(arg) => schema
                .index_of(arg)
                .map(Some)
                .ok_or_else(|| DiscoError::Exec(format!("unknown aggregate argument `{arg}`"))),
            None => Ok(None),
        })
        .collect::<Result<_>>()?;

    #[derive(Clone)]
    struct Acc {
        count: u64,
        sum: f64,
        min: Option<Value>,
        max: Option<Value>,
        non_null: u64,
    }
    impl Acc {
        fn new() -> Self {
            Acc {
                count: 0,
                sum: 0.0,
                min: None,
                max: None,
                non_null: 0,
            }
        }
        fn feed(&mut self, v: Option<&Value>) {
            self.count += 1;
            let Some(v) = v else { return };
            if v.is_null() {
                return;
            }
            self.non_null += 1;
            if let Some(f) = v.as_f64() {
                self.sum += f;
            }
            let better_min = self
                .min
                .as_ref()
                .map(|m| v.total_cmp_value(m).is_lt())
                .unwrap_or(true);
            if better_min {
                self.min = Some(v.clone());
            }
            let better_max = self
                .max
                .as_ref()
                .map(|m| v.total_cmp_value(m).is_gt())
                .unwrap_or(true);
            if better_max {
                self.max = Some(v.clone());
            }
        }
    }

    // Group id -> (representative key tuple, accumulators).
    let mut groups: HashMap<String, (Vec<Value>, Vec<Acc>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for t in tuples {
        let key_vals: Vec<Value> = group_idx
            .iter()
            .map(|&i| t.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        let key: String = key_vals
            .iter()
            .map(|v| value_key(v).unwrap_or_else(|| "∅".into()))
            .collect::<Vec<_>>()
            .join("|");
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (key_vals, vec![Acc::new(); aggs.len()])
        });
        for (acc, idx) in entry.1.iter_mut().zip(&agg_idx) {
            acc.feed(idx.and_then(|i| t.get(i)));
        }
    }
    // A global aggregate over an empty input still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        let values: Vec<Value> = aggs
            .iter()
            .map(|a| match a.func {
                AggFunc::Count => Value::Long(0),
                _ => Value::Null,
            })
            .collect();
        return Ok(vec![Tuple::new(values)]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let (key_vals, accs) = groups.remove(&key).expect("group recorded");
        let mut values = key_vals;
        for (acc, a) in accs.iter().zip(aggs) {
            let v = match a.func {
                AggFunc::Count => Value::Long(match a.arg {
                    Some(_) => acc.non_null as i64,
                    None => acc.count as i64,
                }),
                AggFunc::Sum => {
                    if acc.non_null == 0 {
                        Value::Null
                    } else {
                        Value::Double(acc.sum)
                    }
                }
                AggFunc::Avg => {
                    if acc.non_null == 0 {
                        Value::Null
                    } else {
                        Value::Double(acc.sum / acc.non_null as f64)
                    }
                }
                AggFunc::Min => acc.min.clone().unwrap_or(Value::Null),
                AggFunc::Max => acc.max.clone().unwrap_or(Value::Null),
            };
            values.push(v);
        }
        out.push(Tuple::new(values));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::SelectPredicate;
    use disco_common::{AttributeDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("grp", DataType::Long),
            AttributeDef::new("name", DataType::Str),
        ])
    }

    fn rows() -> Vec<Tuple> {
        (0..10)
            .map(|i| {
                Tuple::new(vec![
                    Value::Long(i),
                    Value::Long(i % 3),
                    Value::Str(format!("n{}", i % 2)),
                ])
            })
            .collect()
    }

    #[test]
    fn filter_conjunction() {
        let p = Predicate::all(vec![
            SelectPredicate::new("grp", CompareOp::Eq, Value::Long(1)),
            SelectPredicate::new("id", CompareOp::Ge, Value::Long(4)),
        ]);
        let out = filter(&schema(), &rows(), &p).unwrap();
        let ids: Vec<i64> = out
            .iter()
            .map(|t| t.get(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(ids, vec![4, 7]);
    }

    #[test]
    fn filter_unknown_attr_errors() {
        let p = Predicate::single(SelectPredicate::new("zzz", CompareOp::Eq, Value::Long(1)));
        assert!(filter(&schema(), &rows(), &p).is_err());
    }

    #[test]
    fn project_expressions() {
        let cols = vec![
            (
                "id2".to_string(),
                ScalarExpr::Binary {
                    op: disco_algebra::expr::ArithOp::Mul,
                    left: Box::new(ScalarExpr::attr("id")),
                    right: Box::new(ScalarExpr::constant(2i64)),
                },
            ),
            ("name".to_string(), ScalarExpr::attr("name")),
        ];
        let (s, out) = project(&schema(), &rows(), &cols).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(out[3].get(0).unwrap().as_i64(), Some(6));
    }

    #[test]
    fn sort_multi_key() {
        let mut rs = rows();
        sort(
            &schema(),
            &mut rs,
            &[("grp".into(), true), ("id".into(), false)],
        )
        .unwrap();
        // grp ascending, id descending within group.
        assert_eq!(rs[0].get(1).unwrap().as_i64(), Some(0));
        assert_eq!(rs[0].get(0).unwrap().as_i64(), Some(9));
        assert_eq!(rs[9].get(1).unwrap().as_i64(), Some(2));
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let s = schema();
        let l = rows();
        let r = rows();
        let pred = JoinPredicate::equi("grp", "grp");
        let mut h = hash_join(&s, &l, &s, &r, &pred).unwrap();
        let mut n = nested_loop_join(&s, &l, &s, &r, &pred).unwrap();
        let key = |t: &Tuple| format!("{t}");
        h.sort_by_key(key);
        n.sort_by_key(key);
        assert_eq!(h, n);
        // 10 rows in 3 groups of sizes 4,3,3 -> 16+9+9 = 34 pairs.
        assert_eq!(h.len(), 34);
    }

    #[test]
    fn hash_join_rejects_non_equi() {
        let s = schema();
        let pred = JoinPredicate {
            left_attr: "id".into(),
            op: CompareOp::Lt,
            right_attr: "id".into(),
        };
        assert!(hash_join(&s, &rows(), &s, &rows(), &pred).is_err());
        // Nested loop handles it.
        let out = nested_loop_join(&s, &rows(), &s, &rows(), &pred).unwrap();
        assert_eq!(out.len(), 45);
    }

    #[test]
    fn nulls_never_join() {
        let s = Schema::new(vec![AttributeDef::new("k", DataType::Long)]);
        let l = vec![
            Tuple::new(vec![Value::Null]),
            Tuple::new(vec![Value::Long(1)]),
        ];
        let r = l.clone();
        let out = hash_join(&s, &l, &s, &r, &JoinPredicate::equi("k", "k")).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn numeric_keys_join_across_types() {
        let s = Schema::new(vec![AttributeDef::new("k", DataType::Long)]);
        let l = vec![Tuple::new(vec![Value::Long(2)])];
        let r = vec![Tuple::new(vec![Value::Double(2.0)])];
        let out = hash_join(&s, &l, &s, &r, &JoinPredicate::equi("k", "k")).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn dedup_keeps_first() {
        let s = Schema::new(vec![AttributeDef::new("k", DataType::Long)]);
        let _ = s;
        let tuples = vec![
            Tuple::new(vec![Value::Long(1)]),
            Tuple::new(vec![Value::Long(2)]),
            Tuple::new(vec![Value::Long(1)]),
            Tuple::new(vec![Value::Double(1.0)]), // equal to Long(1)
        ];
        let out = dedup(&tuples);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn aggregate_grouped() {
        let aggs = vec![
            AggExpr {
                name: "n".into(),
                func: AggFunc::Count,
                arg: None,
            },
            AggExpr {
                name: "total".into(),
                func: AggFunc::Sum,
                arg: Some("id".into()),
            },
            AggExpr {
                name: "lo".into(),
                func: AggFunc::Min,
                arg: Some("id".into()),
            },
            AggExpr {
                name: "hi".into(),
                func: AggFunc::Max,
                arg: Some("id".into()),
            },
        ];
        let out = aggregate(&schema(), &rows(), &["grp".to_string()], &aggs).unwrap();
        assert_eq!(out.len(), 3);
        // Group 0: ids 0,3,6,9.
        let g0 = out
            .iter()
            .find(|t| t.get(0).unwrap().as_i64() == Some(0))
            .unwrap();
        assert_eq!(g0.get(1).unwrap().as_i64(), Some(4));
        assert_eq!(g0.get(2).unwrap().as_f64(), Some(18.0));
        assert_eq!(g0.get(3).unwrap().as_i64(), Some(0));
        assert_eq!(g0.get(4).unwrap().as_i64(), Some(9));
    }

    #[test]
    fn aggregate_global_and_empty() {
        let aggs = vec![
            AggExpr {
                name: "n".into(),
                func: AggFunc::Count,
                arg: None,
            },
            AggExpr {
                name: "avg".into(),
                func: AggFunc::Avg,
                arg: Some("id".into()),
            },
        ];
        let out = aggregate(&schema(), &rows(), &[], &aggs).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).unwrap().as_i64(), Some(10));
        assert_eq!(out[0].get(1).unwrap().as_f64(), Some(4.5));
        // Empty input, global: one row, count 0, null avg.
        let out = aggregate(&schema(), &[], &[], &aggs).unwrap();
        assert_eq!(out[0].get(0).unwrap().as_i64(), Some(0));
        assert!(out[0].get(1).unwrap().is_null());
        // Empty input, grouped: no rows.
        let out = aggregate(&schema(), &[], &["grp".to_string()], &aggs).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn count_attr_skips_nulls() {
        let s = Schema::new(vec![AttributeDef::new("x", DataType::Long)]);
        let tuples = vec![
            Tuple::new(vec![Value::Long(1)]),
            Tuple::new(vec![Value::Null]),
        ];
        let aggs = vec![
            AggExpr {
                name: "ns".into(),
                func: AggFunc::Count,
                arg: Some("x".into()),
            },
            AggExpr {
                name: "all".into(),
                func: AggFunc::Count,
                arg: None,
            },
        ];
        let out = aggregate(&s, &tuples, &[], &aggs).unwrap();
        assert_eq!(out[0].get(0).unwrap().as_i64(), Some(1));
        assert_eq!(out[0].get(1).unwrap().as_i64(), Some(2));
    }
}

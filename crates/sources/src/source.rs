//! The interface between wrappers and their underlying data sources.

use disco_algebra::LogicalPlan;
use disco_catalog::CollectionStats;
use disco_common::{Batch, Result, Schema, Tuple};

/// Execution accounting for one subquery (the "real costs" the historical
//  mechanism records).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecStats {
    /// Total simulated response time (ms).
    pub elapsed_ms: f64,
    /// Simulated time to the first result tuple (ms).
    pub time_first_ms: f64,
    /// Pages faulted in from disk.
    pub pages_read: u64,
    /// Buffer pool hits.
    pub buffer_hits: u64,
    /// Objects examined.
    pub objects_scanned: u64,
}

/// A subanswer returned by a source: tuples plus the measured execution
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SubAnswer {
    pub schema: Schema,
    pub tuples: Vec<Tuple>,
    pub stats: ExecStats,
}

/// A subanswer in columnar form: what the mediator's vectorized combine
/// phase consumes. Produced either by columnarizing a [`SubAnswer`] or
/// by decoding wire bytes straight into columns (see
/// [`crate::wire`]), so fetched rows are never built as [`Tuple`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchAnswer {
    pub schema: Schema,
    pub batch: Batch,
    pub stats: ExecStats,
}

impl BatchAnswer {
    /// Materialize back into a row-at-a-time [`SubAnswer`].
    pub fn into_sub_answer(self) -> SubAnswer {
        SubAnswer {
            tuples: self.batch.to_tuples(),
            schema: self.schema,
            stats: self.stats,
        }
    }
}

impl From<SubAnswer> for BatchAnswer {
    fn from(a: SubAnswer) -> Self {
        BatchAnswer {
            batch: Batch::from_tuples(a.schema.arity(), &a.tuples),
            schema: a.schema,
            stats: a.stats,
        }
    }
}

/// A data source a wrapper can be built over.
pub trait DataSource {
    /// Source name (diagnostics).
    fn name(&self) -> &str;

    /// Collections the source holds, with their schemas.
    fn collections(&self) -> Vec<(String, Schema)>;

    /// Statistics of a collection, computed from the actual data (what
    /// the paper's `cardinality` methods return).
    fn statistics(&self, collection: &str) -> Option<CollectionStats>;

    /// Execute an algebra subplan against this source, returning the
    /// subanswer and measured (virtual-clock) costs. The plan's scans
    /// refer to this source's collections by unqualified name matching
    /// the `QualifiedName::collection` field.
    fn execute(&self, plan: &LogicalPlan) -> Result<SubAnswer>;
}

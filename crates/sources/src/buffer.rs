//! LRU buffer pool.
//!
//! Page accesses go through the pool; a miss charges one `io_ms` to the
//! clock and may evict the least recently used resident page. Running a
//! query against a cold pool of sufficient capacity makes the fault count
//! equal to the number of *distinct* pages touched — the quantity Yao's
//! formula estimates.

use std::collections::HashMap;

use crate::clock::{CostProfile, VirtualClock};

/// A fixed-capacity LRU page cache with fault accounting.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    /// page id -> tick of last use.
    resident: HashMap<u64, u64>,
    tick: u64,
    faults: u64,
    hits: u64,
    evictions: u64,
}

impl BufferPool {
    /// Pool holding up to `capacity` pages (at least 1).
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity: capacity.max(1),
            resident: HashMap::new(),
            tick: 0,
            faults: 0,
            hits: 0,
            evictions: 0,
        }
    }

    /// Touch a page: on a miss, charge one I/O and make it resident,
    /// evicting the LRU page if the pool is full.
    pub fn access(&mut self, page: u64, profile: &CostProfile, clock: &mut VirtualClock) {
        self.tick += 1;
        if let Some(t) = self.resident.get_mut(&page) {
            *t = self.tick;
            self.hits += 1;
            return;
        }
        self.faults += 1;
        clock.charge(profile.io_ms);
        if self.resident.len() >= self.capacity {
            if let Some((&lru, _)) = self.resident.iter().min_by_key(|(_, &t)| t) {
                self.resident.remove(&lru);
                self.evictions += 1;
            }
        }
        self.resident.insert(page, self.tick);
    }

    /// Page faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Buffer hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Pages evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Currently resident page count.
    pub fn resident(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CostProfile, VirtualClock) {
        (CostProfile::object_store(), VirtualClock::new())
    }

    #[test]
    fn first_access_faults_then_hits() {
        let (p, mut clock) = setup();
        let mut b = BufferPool::new(4);
        b.access(1, &p, &mut clock);
        b.access(1, &p, &mut clock);
        assert_eq!(b.faults(), 1);
        assert_eq!(b.hits(), 1);
        assert_eq!(clock.now(), 25.0);
    }

    #[test]
    fn distinct_pages_fault_once_with_capacity() {
        let (p, mut clock) = setup();
        let mut b = BufferPool::new(100);
        for round in 0..3 {
            for page in 0..50u64 {
                b.access(page, &p, &mut clock);
            }
            let _ = round;
        }
        assert_eq!(b.faults(), 50);
        assert_eq!(clock.now(), 50.0 * 25.0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let (p, mut clock) = setup();
        let mut b = BufferPool::new(2);
        b.access(1, &p, &mut clock);
        b.access(2, &p, &mut clock);
        b.access(1, &p, &mut clock); // 1 now more recent than 2
        b.access(3, &p, &mut clock); // evicts 2
        b.access(1, &p, &mut clock); // hit
        b.access(2, &p, &mut clock); // fault again
        assert_eq!(b.faults(), 4);
        assert_eq!(b.resident(), 2);
        assert_eq!(b.evictions(), 2);
    }

    #[test]
    fn zero_capacity_clamped() {
        let (p, mut clock) = setup();
        let mut b = BufferPool::new(0);
        b.access(1, &p, &mut clock);
        b.access(1, &p, &mut clock);
        assert_eq!(b.faults(), 1);
    }
}

//! Paged heap files.
//!
//! A heap file maps object ids to pages. Placement is either **uniform
//! random** — the independence assumption behind Yao's formula, and how a
//! long-lived object store ends up after churn — or **clustered** on an
//! attribute's order, which the paper singles out as the behaviour "which
//! can not be easily captured by a calibrating model" (§7).

use disco_common::rng;
use disco_common::rng::StdRng;

/// How objects are assigned to pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Objects land on pages uniformly at random.
    Random,
    /// Objects are stored in the order of the given column's values, so
    /// consecutive key ranges share pages.
    Clustered,
}

/// The page layout of one stored collection.
#[derive(Debug, Clone)]
pub struct HeapFile {
    /// `page_of[i]` = page holding object `i` (in storage-rank order).
    page_of: Vec<u64>,
    pages: u64,
    objects_per_page: usize,
    page_size: u64,
    fill_factor: f64,
}

impl HeapFile {
    /// Lay out `n` objects of `object_size` bytes on pages of `page_size`
    /// bytes filled to `fill_factor`.
    ///
    /// `rank` gives the storage order: for clustered placement pass the
    /// rank of each object in the clustering order; for random placement
    /// a permutation is drawn from `rng`.
    pub fn layout(
        n: usize,
        object_size: u64,
        page_size: u64,
        fill_factor: f64,
        placement: Placement,
        rank: Option<Vec<usize>>,
        rng_source: &mut StdRng,
    ) -> HeapFile {
        let usable = (page_size as f64 * fill_factor.clamp(0.01, 1.0)) as u64;
        let per_page = (usable / object_size.max(1)).max(1) as usize;
        let order: Vec<usize> = match placement {
            Placement::Random => rng::permutation(rng_source, n),
            Placement::Clustered => match rank {
                Some(r) => r,
                None => (0..n).collect(),
            },
        };
        let mut page_of = vec![0u64; n];
        for (obj, &pos) in order.iter().enumerate() {
            // `order` maps object -> storage position for clustered rank;
            // for random it is a permutation either way.
            page_of[obj] = (pos / per_page) as u64;
        }
        let pages = n.div_ceil(per_page) as u64;
        HeapFile {
            page_of,
            pages,
            objects_per_page: per_page,
            page_size,
            fill_factor,
        }
    }

    /// Page of object `i`.
    pub fn page_of(&self, obj: usize) -> u64 {
        self.page_of[obj]
    }

    /// Total number of pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Objects stored per page.
    pub fn objects_per_page(&self) -> usize {
        self.objects_per_page
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Fill factor.
    pub fn fill_factor(&self) -> f64 {
        self.fill_factor
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.page_of.len()
    }

    /// `true` when the file holds no objects.
    pub fn is_empty(&self) -> bool {
        self.page_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_common::rng::seeded;

    #[test]
    fn oo7_layout_dimensions() {
        // 70 000 × 56 B, 4096-byte pages at 96% fill → 70/page, 1000 pages.
        let mut r = seeded(1, "heap");
        let h = HeapFile::layout(70_000, 56, 4_096, 0.96, Placement::Random, None, &mut r);
        assert_eq!(h.objects_per_page(), 70);
        assert_eq!(h.pages(), 1_000);
        assert_eq!(h.len(), 70_000);
        assert!(h.page_of.iter().all(|&p| p < 1_000));
    }

    #[test]
    fn every_page_gets_at_most_per_page_objects() {
        let mut r = seeded(2, "heap");
        let h = HeapFile::layout(1_000, 100, 1_000, 1.0, Placement::Random, None, &mut r);
        assert_eq!(h.objects_per_page(), 10);
        let mut counts = vec![0usize; h.pages() as usize];
        for i in 0..1_000 {
            counts[h.page_of(i) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 10));
        assert_eq!(counts.iter().sum::<usize>(), 1_000);
    }

    #[test]
    fn clustered_layout_is_contiguous() {
        let mut r = seeded(3, "heap");
        let h = HeapFile::layout(100, 100, 1_000, 1.0, Placement::Clustered, None, &mut r);
        // Identity rank: objects 0..9 on page 0, 10..19 on page 1, …
        for i in 0..100 {
            assert_eq!(h.page_of(i), (i / 10) as u64);
        }
    }

    #[test]
    fn clustered_with_explicit_rank() {
        let mut r = seeded(4, "heap");
        // Reverse order: object 0 has the highest rank.
        let rank: Vec<usize> = (0..20).rev().collect();
        let h = HeapFile::layout(
            20,
            100,
            1_000,
            1.0,
            Placement::Clustered,
            Some(rank),
            &mut r,
        );
        assert_eq!(h.page_of(19), 0);
        assert_eq!(h.page_of(0), 1);
    }

    #[test]
    fn random_layout_spreads_consecutive_objects() {
        let mut r = seeded(5, "heap");
        let h = HeapFile::layout(7_000, 56, 4_096, 0.96, Placement::Random, None, &mut r);
        // Consecutive ids should mostly land on different pages.
        let same = (1..7_000)
            .filter(|&i| h.page_of(i) == h.page_of(i - 1))
            .count();
        assert!(same < 700, "too much accidental clustering: {same}");
    }

    #[test]
    fn degenerate_sizes() {
        let mut r = seeded(6, "heap");
        let h = HeapFile::layout(0, 56, 4_096, 0.96, Placement::Random, None, &mut r);
        assert!(h.is_empty());
        assert_eq!(h.pages(), 0);
        // Oversized objects still get one slot per page.
        let h = HeapFile::layout(3, 10_000, 4_096, 0.96, Placement::Random, None, &mut r);
        assert_eq!(h.objects_per_page(), 1);
        assert_eq!(h.pages(), 3);
    }
}

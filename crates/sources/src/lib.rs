//! Simulated heterogeneous data sources.
//!
//! The paper's experiment measures a real ObjectStore installation; this
//! crate is the substitute substrate (see DESIGN.md §4): storage engines
//! that *physically execute* algebra subplans against paged storage and
//! account elapsed time on a virtual clock using the paper's measured
//! constants (25 ms per page fault, 9 ms per delivered object). Because
//! qualifying objects are placed on pages by a real random process, the
//! measured page-fault counts follow the distribution Yao's formula
//! models — the "experiment" curve of Figure 12 is reproduced by
//! execution, not by evaluating a formula.
//!
//! Modules:
//!
//! * [`clock`] — virtual time and per-source cost profiles;
//! * [`buffer`] — an LRU buffer pool charging I/O on faults;
//! * [`heap`] — paged heap files with uniform or clustered placement;
//! * [`btree`] — a from-scratch B+-tree used for index scans;
//! * [`exec`] — in-memory row-at-a-time operator implementations shared
//!   by the sources and kept as the reference semantics;
//! * [`vexec`] — vectorized counterparts over columnar batches, used by
//!   the mediator's combine phase;
//! * [`vstream`] — pull-based streaming versions of the vectorized
//!   operators, used by the mediator's pipelined execution path;
//! * [`store`] — the paged store engine ([`PagedStore`]) with
//!   object-database and relational cost profiles;
//! * [`disk`] — [`StoreSource`], the same execution paths over the real
//!   disk-backed engine in `disco-store` (measured page faults);
//! * [`flatfile`] — a scan-only flat-file source;
//! * [`source`] — the [`DataSource`] trait wrappers build on;
//! * [`wire`] — byte codecs shipping subanswers across the transport
//!   boundary.

pub mod btree;
pub mod buffer;
pub mod clock;
pub mod disk;
pub mod doc;
pub mod exec;
pub mod flatfile;
pub mod heap;
pub mod source;
pub mod store;
pub mod vexec;
pub mod vstream;
pub mod wire;

pub use btree::BPlusTree;
pub use buffer::BufferPool;
pub use clock::{CostProfile, VirtualClock};
pub use disk::StoreSource;
pub use doc::{DocField, DocSource, DocValue, PathKind};
pub use flatfile::FlatFile;
pub use heap::{HeapFile, Placement};
pub use source::{BatchAnswer, DataSource, ExecStats, SubAnswer};
pub use store::{CollectionBuilder, PagedStore};

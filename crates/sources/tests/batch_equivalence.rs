//! Randomized row/batch equivalence: every vectorized operator in
//! [`disco_sources::vexec`] must produce exactly the tuples — same
//! values, same order — as its row-at-a-time reference in
//! [`disco_sources::exec`], across random schemas, random data with
//! nulls and mixed types, and random operator parameters.
//!
//! Generated strings draw from a plain alphanumeric alphabet: the row
//! path's composite grouping keys join per-column strings with `|` and
//! encode nulls as `∅`, so strings containing those exact sequences can
//! collide there (a documented divergence — the columnar path uses
//! structured keys and is immune). The equivalence contract covers all
//! other inputs.

use disco_algebra::logical::AggExpr;
use disco_algebra::{AggFunc, CompareOp, JoinPredicate, Predicate, ScalarExpr, SelectPredicate};
use disco_common::rng::{seeded, StdRng};
use disco_common::wire::{WireDecode, WireEncode};
use disco_common::{AttributeDef, Batch, DataType, Schema, Tuple, Value};
use disco_sources::{exec, vexec, BatchAnswer, ExecStats, SubAnswer};

const SEEDS: u64 = 25;

/// Column shapes: homogeneous columns exercise the typed fast paths,
/// `Mixed` forces the `Any` fallback.
#[derive(Clone, Copy)]
enum ColKind {
    Long,
    Double,
    Bool,
    Str,
    Mixed,
}

const KINDS: [ColKind; 5] = [
    ColKind::Long,
    ColKind::Double,
    ColKind::Bool,
    ColKind::Str,
    ColKind::Mixed,
];

fn random_value(rng: &mut StdRng, kind: ColKind) -> Value {
    if rng.gen_range(0..8i64) == 0 {
        return Value::Null;
    }
    match kind {
        ColKind::Long => Value::Long(rng.gen_range(-20..20i64)),
        ColKind::Double => {
            // Small integral range so cross-typed equality joins hit.
            Value::Double(rng.gen_range(-20..20i64) as f64 / 2.0)
        }
        ColKind::Bool => Value::Bool(rng.gen_range(0..2i64) == 1),
        ColKind::Str => Value::Str(format!("s{}", rng.gen_range(0..12i64))),
        ColKind::Mixed => {
            let k = KINDS[rng.gen_range(0..4usize)];
            random_value(rng, k)
        }
    }
}

struct Case {
    schema: Schema,
    kinds: Vec<ColKind>,
    tuples: Vec<Tuple>,
    batch: Batch,
}

fn random_case(rng: &mut StdRng, prefix: &str) -> Case {
    let cols = rng.gen_range(1..5usize);
    let rows = rng.gen_range(0..60usize);
    let kinds: Vec<ColKind> = (0..cols).map(|_| KINDS[rng.gen_range(0..5usize)]).collect();
    let schema = Schema::new(
        (0..cols)
            .map(|c| AttributeDef::new(format!("{prefix}{c}"), DataType::Str))
            .collect(),
    );
    let tuples: Vec<Tuple> = (0..rows)
        .map(|_| Tuple::new(kinds.iter().map(|&k| random_value(rng, k)).collect()))
        .collect();
    let batch = Batch::from_tuples(cols, &tuples);
    Case {
        schema,
        kinds,
        tuples,
        batch,
    }
}

fn attr(case: &Case, rng: &mut StdRng) -> (String, usize) {
    let i = rng.gen_range(0..case.schema.arity());
    (case.schema.attributes()[i].name.clone(), i)
}

fn random_op(rng: &mut StdRng) -> CompareOp {
    [
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ][rng.gen_range(0..6usize)]
}

#[test]
fn tuple_batch_round_trip() {
    for seed in 0..SEEDS {
        let mut rng = seeded(seed, "batch-roundtrip");
        let case = random_case(&mut rng, "a");
        assert_eq!(case.batch.to_tuples(), case.tuples, "seed {seed}");
        assert_eq!(case.batch.len(), case.tuples.len());
    }
}

#[test]
fn wire_round_trip_matches_row_decode() {
    for seed in 0..SEEDS {
        let mut rng = seeded(seed, "batch-wire");
        let case = random_case(&mut rng, "a");
        let bytes = SubAnswer {
            schema: case.schema.clone(),
            tuples: case.tuples.clone(),
            stats: ExecStats::default(),
        }
        .to_wire_bytes();
        let rows = SubAnswer::from_wire_bytes(&bytes).unwrap();
        let batch = BatchAnswer::from_wire_bytes(&bytes).unwrap();
        assert_eq!(batch.batch.to_tuples(), rows.tuples, "seed {seed}");
        assert_eq!(batch.to_wire_bytes(), bytes, "seed {seed}");
    }
}

#[test]
fn filter_equivalence() {
    for seed in 0..SEEDS {
        let mut rng = seeded(seed, "batch-filter");
        let case = random_case(&mut rng, "a");
        let conjuncts = (0..rng.gen_range(1..3usize))
            .map(|_| {
                let (name, i) = attr(&case, &mut rng);
                SelectPredicate::new(
                    name,
                    random_op(&mut rng),
                    random_value(&mut rng, case.kinds[i]),
                )
            })
            .collect();
        let pred = Predicate::all(conjuncts);
        let rows = exec::filter(&case.schema, &case.tuples, &pred).unwrap();
        let batch = vexec::filter(&case.schema, &case.batch, &pred).unwrap();
        assert_eq!(batch.to_tuples(), rows, "seed {seed} pred {pred}");
    }
}

#[test]
fn project_equivalence() {
    for seed in 0..SEEDS {
        let mut rng = seeded(seed, "batch-project");
        let case = random_case(&mut rng, "a");
        let columns: Vec<(String, ScalarExpr)> = (0..rng.gen_range(1..4usize))
            .map(|o| {
                if rng.gen_range(0..4i64) == 0 {
                    (
                        format!("c{o}"),
                        ScalarExpr::Const(random_value(&mut rng, ColKind::Mixed)),
                    )
                } else {
                    let (name, _) = attr(&case, &mut rng);
                    (format!("c{o}"), ScalarExpr::attr(name))
                }
            })
            .collect();
        let (rs, rows) = exec::project(&case.schema, &case.tuples, &columns).unwrap();
        let (bs, batch) = vexec::project(&case.schema, &case.batch, &columns).unwrap();
        assert_eq!(bs, rs, "seed {seed}");
        assert_eq!(batch.to_tuples(), rows, "seed {seed}");
    }
}

#[test]
fn join_equivalence() {
    for seed in 0..SEEDS {
        let mut rng = seeded(seed, "batch-join");
        let left = random_case(&mut rng, "l");
        let right = random_case(&mut rng, "r");
        let (ln, _) = attr(&left, &mut rng);
        let (rn, _) = attr(&right, &mut rng);
        let pred = JoinPredicate::equi(ln.clone(), rn.clone());
        let rows = exec::hash_join(
            &left.schema,
            &left.tuples,
            &right.schema,
            &right.tuples,
            &pred,
        )
        .unwrap();
        let batch = vexec::hash_join(
            &left.schema,
            &left.batch,
            &right.schema,
            &right.batch,
            &pred,
        )
        .unwrap();
        assert_eq!(batch.to_tuples(), rows, "seed {seed} hash {pred}");

        // Nested loop with a random (possibly non-equality) operator.
        let pred = JoinPredicate {
            left_attr: ln,
            op: random_op(&mut rng),
            right_attr: rn,
        };
        let rows = exec::nested_loop_join(
            &left.schema,
            &left.tuples,
            &right.schema,
            &right.tuples,
            &pred,
        )
        .unwrap();
        let batch = vexec::nested_loop_join(
            &left.schema,
            &left.batch,
            &right.schema,
            &right.batch,
            &pred,
        )
        .unwrap();
        assert_eq!(batch.to_tuples(), rows, "seed {seed} nl {pred}");
    }
}

#[test]
fn dedup_sort_union_equivalence() {
    for seed in 0..SEEDS {
        let mut rng = seeded(seed, "batch-misc");
        let case = random_case(&mut rng, "a");

        let rows = exec::dedup(&case.tuples);
        assert_eq!(vexec::dedup(&case.batch).to_tuples(), rows, "seed {seed}");

        let keys: Vec<(String, bool)> = (0..rng.gen_range(1..3usize))
            .map(|_| {
                let (name, _) = attr(&case, &mut rng);
                (name, rng.gen_range(0..2i64) == 0)
            })
            .collect();
        let mut rows = case.tuples.clone();
        exec::sort(&case.schema, &mut rows, &keys).unwrap();
        let batch = vexec::sort(&case.schema, &case.batch, &keys).unwrap();
        assert_eq!(batch.to_tuples(), rows, "seed {seed} keys {keys:?}");

        // Union with a second batch of the same arity.
        let mut other_rng = seeded(seed, "batch-misc-other");
        let mut other = random_case(&mut other_rng, "a");
        while other.schema.arity() != case.schema.arity() {
            other = random_case(&mut other_rng, "a");
        }
        let mut rows = case.tuples.clone();
        rows.extend(other.tuples.clone());
        let batch = vexec::union(&case.batch, &other.batch).unwrap();
        assert_eq!(batch.to_tuples(), rows, "seed {seed}");
    }
}

#[test]
fn aggregate_equivalence() {
    for seed in 0..SEEDS {
        let mut rng = seeded(seed, "batch-agg");
        let case = random_case(&mut rng, "a");
        let group_by: Vec<String> = if rng.gen_range(0..4i64) == 0 {
            Vec::new() // global aggregate, including the empty-input row
        } else {
            (0..rng.gen_range(1..3usize))
                .map(|_| attr(&case, &mut rng).0)
                .collect()
        };
        let funcs = [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ];
        let aggs: Vec<AggExpr> = (0..rng.gen_range(1..4usize))
            .map(|o| {
                let func = funcs[rng.gen_range(0..5usize)];
                let arg = (func != AggFunc::Count || rng.gen_range(0..2i64) == 0)
                    .then(|| attr(&case, &mut rng).0);
                AggExpr {
                    name: format!("g{o}"),
                    func,
                    arg,
                }
            })
            .collect();
        let rows = exec::aggregate(&case.schema, &case.tuples, &group_by, &aggs).unwrap();
        let batch = vexec::aggregate(&case.schema, &case.batch, &group_by, &aggs).unwrap();
        assert_eq!(
            batch.to_tuples(),
            rows,
            "seed {seed} group_by {group_by:?} aggs {aggs:?}"
        );
    }
}

// Gated: requires the `proptest` cargo feature (and the proptest
// dev-dependency, removed so offline builds succeed — see Cargo.toml).
#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            (-50i64..50).prop_map(Value::Long),
            (-50i64..50).prop_map(|n| Value::Double(n as f64 / 2.0)),
            (0u8..20).prop_map(|n| Value::Str(format!("s{n}"))),
        ]
    }

    proptest! {
        #[test]
        fn round_trip_and_filter(
            rows in prop::collection::vec(prop::collection::vec(arb_value(), 3), 0..80),
            op_i in 0usize..6,
            rhs in arb_value(),
        ) {
            let schema = Schema::new(
                (0..3).map(|c| AttributeDef::new(format!("a{c}"), DataType::Str)).collect(),
            );
            let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
            let batch = Batch::from_tuples(3, &tuples);
            prop_assert_eq!(batch.to_tuples(), tuples.clone());

            let op = [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt,
                      CompareOp::Le, CompareOp::Gt, CompareOp::Ge][op_i];
            let pred = Predicate::all(vec![SelectPredicate::new("a1", op, rhs)]);
            let expect = exec::filter(&schema, &tuples, &pred).unwrap();
            let got = vexec::filter(&schema, &batch, &pred).unwrap();
            prop_assert_eq!(got.to_tuples(), expect);
        }
    }
}

//! OO7 database generation.

use disco_common::{rng, AttributeDef, DataType, Result, Schema, Value};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};

use crate::params::Oo7Config;

/// Schema of `AtomicParts`.
pub fn atomic_parts_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("Id", DataType::Long),
        AttributeDef::new("BuildDate", DataType::Long),
        AttributeDef::new("X", DataType::Long),
        AttributeDef::new("Y", DataType::Long),
        AttributeDef::new("PartOf", DataType::Long),
        AttributeDef::new("DocId", DataType::Long),
    ])
}

/// Schema of `Connections`.
pub fn connections_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("FromId", DataType::Long),
        AttributeDef::new("ToId", DataType::Long),
        AttributeDef::new("Kind", DataType::Str),
        AttributeDef::new("Length", DataType::Long),
    ])
}

/// Schema of `CompositeParts`.
pub fn composite_parts_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("Id", DataType::Long),
        AttributeDef::new("BuildDate", DataType::Long),
        AttributeDef::new("DocId", DataType::Long),
    ])
}

/// Schema of `Documents`.
pub fn documents_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("DocId", DataType::Long),
        AttributeDef::new("Title", DataType::Str),
        AttributeDef::new("CompId", DataType::Long),
    ])
}

/// Schema of `BaseAssemblies`.
pub fn base_assemblies_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("Id", DataType::Long),
        AttributeDef::new("ModuleId", DataType::Long),
    ])
}

/// Schema of the assembly→composite junction `AssemblyUses`.
pub fn assembly_uses_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("AssemblyId", DataType::Long),
        AttributeDef::new("CompId", DataType::Long),
    ])
}

/// Build the full OO7 database in a simulated object store.
///
/// `AtomicParts.Id` is indexed (the §5 access path); `CompositeParts.Id`
/// and `Documents.DocId` are indexed as the OO7 lookup paths.
pub fn build_store(config: &Oo7Config) -> Result<PagedStore> {
    let mut r = rng::seeded(config.seed, "oo7-gen");
    let composites = config.composite_parts();
    let kinds = ["copper", "fiber", "coax"];

    let mut store = PagedStore::new("oo7", CostProfile::object_store()).with_seed(config.seed);

    // AtomicParts: uniform Id 0..n, random BuildDate over the configured
    // distinct values, membership in composite parts round-robin.
    let atomic_rows = (0..config.atomic_parts).map(|i| {
        let build_date = r.gen_range(0..config.build_dates as i64);
        vec![
            Value::Long(i as i64),
            Value::Long(build_date),
            Value::Long(r.gen_range(0..100_000i64)),
            Value::Long(r.gen_range(0..100_000i64)),
            Value::Long((i / config.atomic_per_composite) as i64),
            Value::Long((i / config.atomic_per_composite) as i64),
        ]
    });
    let mut atomic = CollectionBuilder::new(atomic_parts_schema())
        .rows(atomic_rows)
        .object_size(config.atomic_object_size)
        .page_size(config.page_size)
        .fill_factor(config.fill_factor)
        .index("Id");
    if config.clustered {
        atomic = atomic.cluster_on("Id");
    }
    store.add_collection("AtomicParts", atomic)?;

    // Connections: fan-out per atomic part to random targets.
    let mut conn_rows = Vec::with_capacity(config.atomic_parts * config.connections_per_atomic);
    for i in 0..config.atomic_parts {
        for _ in 0..config.connections_per_atomic {
            let to = r.gen_range(0..config.atomic_parts) as i64;
            conn_rows.push(vec![
                Value::Long(i as i64),
                Value::Long(to),
                Value::Str(kinds[r.gen_range(0..kinds.len())].to_owned()),
                Value::Long(r.gen_range(1..100i64)),
            ]);
        }
    }
    store.add_collection(
        "Connections",
        CollectionBuilder::new(connections_schema())
            .rows(conn_rows)
            .object_size(32)
            .page_size(config.page_size)
            .fill_factor(config.fill_factor)
            .index("FromId"),
    )?;

    // CompositeParts + Documents (one document per composite).
    let comp_rows = (0..composites).map(|i| {
        vec![
            Value::Long(i as i64),
            Value::Long(r.gen_range(0..config.build_dates as i64)),
            Value::Long(i as i64),
        ]
    });
    store.add_collection(
        "CompositeParts",
        CollectionBuilder::new(composite_parts_schema())
            .rows(comp_rows)
            .object_size(config.composite_object_size)
            .page_size(config.page_size)
            .fill_factor(config.fill_factor)
            .index("Id"),
    )?;
    let doc_rows = (0..composites).map(|i| {
        vec![
            Value::Long(i as i64),
            Value::Str(format!("Composite part {i} design notes")),
            Value::Long(i as i64),
        ]
    });
    store.add_collection(
        "Documents",
        CollectionBuilder::new(documents_schema())
            .rows(doc_rows)
            .object_size(config.document_object_size)
            .page_size(config.page_size)
            .fill_factor(config.fill_factor)
            .index("DocId"),
    )?;

    // BaseAssemblies + junction to composites.
    let base_rows =
        (0..config.base_assemblies).map(|i| vec![Value::Long(i as i64), Value::Long(0)]);
    store.add_collection(
        "BaseAssemblies",
        CollectionBuilder::new(base_assemblies_schema())
            .rows(base_rows)
            .object_size(40)
            .page_size(config.page_size)
            .fill_factor(config.fill_factor)
            .index("Id"),
    )?;
    let mut uses_rows = Vec::with_capacity(config.base_assemblies * config.composites_per_assembly);
    for a in 0..config.base_assemblies {
        for _ in 0..config.composites_per_assembly {
            uses_rows.push(vec![
                Value::Long(a as i64),
                Value::Long(r.gen_range(0..composites) as i64),
            ]);
        }
    }
    store.add_collection(
        "AssemblyUses",
        CollectionBuilder::new(assembly_uses_schema())
            .rows(uses_rows)
            .object_size(16)
            .page_size(config.page_size)
            .fill_factor(config.fill_factor),
    )?;

    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_sources::DataSource;

    #[test]
    fn small_store_has_all_collections() {
        let s = build_store(&Oo7Config::small()).unwrap();
        let names: Vec<String> = s.collections().into_iter().map(|(n, _)| n).collect();
        for want in [
            "AssemblyUses",
            "AtomicParts",
            "BaseAssemblies",
            "CompositeParts",
            "Connections",
            "Documents",
        ] {
            assert!(names.contains(&want.to_string()), "missing {want}");
        }
    }

    #[test]
    fn atomic_parts_layout_matches_paper_scaling() {
        let s = build_store(&Oo7Config::small()).unwrap();
        assert_eq!(s.pages_of("AtomicParts").unwrap(), 100);
        let stats = s.statistics("AtomicParts").unwrap();
        assert_eq!(stats.extent.count_object, 7_000);
        assert_eq!(stats.extent.object_size, 56);
        let id = stats.attribute("Id");
        assert!(id.indexed);
        assert_eq!(id.count_distinct, 7_000);
        assert_eq!(id.min, Value::Long(0));
        assert_eq!(id.max, Value::Long(6_999));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_store(&Oo7Config::small()).unwrap();
        let b = build_store(&Oo7Config::small()).unwrap();
        let sa = a.statistics("Connections").unwrap();
        let sb = b.statistics("Connections").unwrap();
        assert_eq!(sa, sb);
    }

    #[test]
    fn documents_reference_composites() {
        let s = build_store(&Oo7Config::small()).unwrap();
        let d = s.statistics("Documents").unwrap();
        assert_eq!(d.extent.count_object, 350);
        let c = s.statistics("CompositeParts").unwrap();
        assert_eq!(c.extent.count_object, 350);
    }
}

//! The OO7 benchmark substrate (\[CDN93\]).
//!
//! The paper's validation (§5) runs OO7 queries against ObjectStore; this
//! crate generates the OO7 design database at the paper's parameters —
//! `AtomicParts`: 70 000 objects of 56 bytes, uniformly distributed `Id`,
//! 4 096-byte pages at 96 % fill (≈70 objects/page, 1 000 pages) — and
//! loads it into a simulated [`PagedStore`](disco_sources::PagedStore).
//!
//! Modules:
//!
//! * [`params`] — configuration, with [`params::Oo7Config::paper`]
//!   matching §5 exactly;
//! * [`gen`] — the data generator (atomic parts, connections, composite
//!   parts, documents, base assemblies);
//! * [`queries`] — plan builders for the §5 index-scan experiment and the
//!   classical OO7 query set (exact match, 1 % / 10 % ranges, joins);
//! * [`rules`] — the wrapper cost documents: the empty (pure calibration)
//!   document, the Figure 13 Yao rule, and the clustered-layout rule used
//!   by the clustering ablation.

pub mod gen;
pub mod params;
pub mod queries;
pub mod rules;

pub use gen::build_store;
pub use params::Oo7Config;
pub use queries::{atomic_scan, index_scan_selectivity, Oo7Query};

//! Wrapper cost documents for the OO7 object store.
//!
//! Three levels of wrapper-implementor effort, matching the experiments:
//!
//! * [`calibrated`] — export nothing: the mediator's generic (calibrated)
//!   model prices everything;
//! * [`yao_rules`] — the Figure 13 improvement: predicate-scope rules for
//!   selections on the indexed `Id` using Yao's formula for the page
//!   count;
//! * [`clustered_rules`] — the §7 case the calibration model cannot see:
//!   `AtomicParts` clustered on `Id`, where a range of `k` objects
//!   touches only `k / objects-per-page` contiguous pages.

use disco_algebra::CompareOp;

/// The empty cost document: pure generic-model (calibration) regime.
pub fn calibrated() -> String {
    String::new()
}

const OPS: [CompareOp; 5] = [
    CompareOp::Eq,
    CompareOp::Lt,
    CompareOp::Le,
    CompareOp::Gt,
    CompareOp::Ge,
];

/// The Figure 13 rule set: for each comparison the index serves, a
/// predicate-scope rule on `AtomicParts.Id` whose response time is
/// `IO * Yao(k, pages) + k * Output`.
///
/// `selectivity("Id", $V)` resolves through the mediator's statistics
/// with the *matched* operator, so one body works for every comparison.
pub fn yao_rules() -> String {
    let mut doc =
        String::from("let PageSize = 4096;\nlet IO = 25.0;\nlet Output = 9.0;\nlet Fill = 0.96;\n");
    for op in OPS {
        doc.push_str(&format!(
            "rule select(AtomicParts, Id {op} $V) {{\n\
             \tlet PerPage = floor(PageSize * Fill / AtomicParts.ObjectSize);\n\
             \tlet CountPage = ceil(AtomicParts.CountObject / PerPage);\n\
             \tCountObject = AtomicParts.CountObject * selectivity(\"Id\", $V);\n\
             \tTotalSize = CountObject * AtomicParts.ObjectSize;\n\
             \tTimeFirst = Overhead + IO;\n\
             \tTimeNext = Output;\n\
             \tTotalTime = Overhead + IO * yao(CountObject, CountPage) + CountObject * Output;\n\
             }}\n",
            op = op.symbol()
        ));
    }
    doc
}

/// The Figure 13 rule set recalibrated for a warm buffer pool: a cache
/// expected to absorb `hit_rate` of page requests only pays the miss
/// fraction of the fault cost, so the exported `IO` constant scales by
/// `1 − hit_rate` (the same miss factor the catalog's `CacheRegime::Warm`
/// applies on the mediator side).
pub fn warm_yao_rules(hit_rate: f64) -> String {
    let io = 25.0 * (1.0 - hit_rate.clamp(0.0, 1.0));
    let mut doc =
        format!("let PageSize = 4096;\nlet IO = {io};\nlet Output = 9.0;\nlet Fill = 0.96;\n");
    for op in OPS {
        doc.push_str(&format!(
            "rule select(AtomicParts, Id {op} $V) {{\n\
             \tlet PerPage = floor(PageSize * Fill / AtomicParts.ObjectSize);\n\
             \tlet CountPage = ceil(AtomicParts.CountObject / PerPage);\n\
             \tCountObject = AtomicParts.CountObject * selectivity(\"Id\", $V);\n\
             \tTotalSize = CountObject * AtomicParts.ObjectSize;\n\
             \tTimeFirst = Overhead + IO;\n\
             \tTimeNext = Output;\n\
             \tTotalTime = Overhead + IO * yao(CountObject, CountPage) + CountObject * Output;\n\
             }}\n",
            op = op.symbol()
        ));
    }
    doc
}

/// Rules for the clustered layout: qualifying `Id` ranges are contiguous
/// on disk, so the scan touches `ceil(k / objects-per-page)` pages.
pub fn clustered_rules() -> String {
    let mut doc =
        String::from("let PageSize = 4096;\nlet IO = 25.0;\nlet Output = 9.0;\nlet Fill = 0.96;\n");
    for op in OPS {
        doc.push_str(&format!(
            "rule select(AtomicParts, Id {op} $V) {{\n\
             \tlet PerPage = floor(PageSize * Fill / AtomicParts.ObjectSize);\n\
             \tCountObject = AtomicParts.CountObject * selectivity(\"Id\", $V);\n\
             \tTotalSize = CountObject * AtomicParts.ObjectSize;\n\
             \tTimeFirst = Overhead + IO;\n\
             \tTimeNext = Output;\n\
             \tTotalTime = Overhead + IO * ceil(CountObject / PerPage)\n\
             \t          + CountObject * Output;\n\
             }}\n",
            op = op.symbol()
        ));
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_costlang::{compile_document, parse_document};

    #[test]
    fn documents_parse_and_compile() {
        for (name, doc) in [
            ("calibrated", calibrated()),
            ("yao", yao_rules()),
            ("warm", warm_yao_rules(0.8)),
            ("clustered", clustered_rules()),
        ] {
            let parsed =
                parse_document(&doc).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            let compiled = compile_document(&parsed)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            if name == "calibrated" {
                assert!(compiled.rules.is_empty());
            } else {
                assert_eq!(compiled.rules.len(), 5);
            }
        }
    }

    #[test]
    fn warm_rules_scale_io_by_the_miss_fraction() {
        let cold = compile_document(&parse_document(&warm_yao_rules(0.0)).unwrap()).unwrap();
        let warm = compile_document(&parse_document(&warm_yao_rules(0.8)).unwrap()).unwrap();
        let io_of = |doc: &disco_costlang::CompiledDocument| {
            doc.params
                .iter()
                .find(|(n, _)| n == "IO")
                .and_then(|(_, v)| v.as_f64())
                .unwrap()
        };
        assert_eq!(io_of(&cold), 25.0);
        assert!((io_of(&warm) - 5.0).abs() < 1e-12);
        // Fully warm: faults are free; clamped outside [0, 1].
        let hot = compile_document(&parse_document(&warm_yao_rules(1.5)).unwrap()).unwrap();
        assert_eq!(io_of(&hot), 0.0);
    }

    #[test]
    fn yao_rules_are_predicate_scope() {
        let doc = compile_document(&parse_document(&yao_rules()).unwrap()).unwrap();
        for rule in &doc.rules {
            let scope = disco_core::derive_scope(&rule.head, None);
            assert_eq!(scope, disco_core::Scope::Predicate);
        }
    }
}

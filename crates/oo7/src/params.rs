//! OO7 configuration.

/// Scale and layout parameters for one OO7 database.
#[derive(Debug, Clone, PartialEq)]
pub struct Oo7Config {
    /// Number of atomic parts (the paper's experiment: 70 000).
    pub atomic_parts: usize,
    /// Atomic parts per composite part (OO7 small: 20).
    pub atomic_per_composite: usize,
    /// Outgoing connections per atomic part (OO7 fan-out 3).
    pub connections_per_atomic: usize,
    /// Number of base assemblies (OO7: 3^6 = 729 for a 7-level ternary
    /// assembly hierarchy).
    pub base_assemblies: usize,
    /// Composite parts referenced by each base assembly.
    pub composites_per_assembly: usize,
    /// Logical size of one atomic part in bytes (paper: 56).
    pub atomic_object_size: u64,
    /// Logical size of one composite part in bytes.
    pub composite_object_size: u64,
    /// Logical size of one document in bytes.
    pub document_object_size: u64,
    /// Page size in bytes (paper: 4 096).
    pub page_size: u64,
    /// Page fill factor (paper: 0.96).
    pub fill_factor: f64,
    /// Distinct `BuildDate` values for atomic parts.
    pub build_dates: usize,
    /// Cluster `AtomicParts` on `Id` instead of uniform random placement.
    pub clustered: bool,
    /// Placement/data seed.
    pub seed: u64,
}

impl Oo7Config {
    /// The §5 experimental setup: 70 000 atomic parts of 56 bytes on
    /// 4 096-byte pages at 96 % fill — 70 objects per page, 1 000 pages —
    /// with a uniform, indexed `Id` and unclustered placement.
    pub fn paper() -> Self {
        Oo7Config {
            atomic_parts: 70_000,
            atomic_per_composite: 20,
            connections_per_atomic: 3,
            base_assemblies: 729,
            composites_per_assembly: 3,
            atomic_object_size: 56,
            composite_object_size: 200,
            document_object_size: 2_000,
            page_size: 4_096,
            fill_factor: 0.96,
            build_dates: 1_000,
            clustered: false,
            seed: disco_common::rng::DEFAULT_SEED,
        }
    }

    /// A ten-times smaller database for fast tests (7 000 atomic parts,
    /// 100 pages).
    pub fn small() -> Self {
        Oo7Config {
            atomic_parts: 7_000,
            base_assemblies: 81,
            ..Oo7Config::paper()
        }
    }

    /// Clustered variant of this configuration.
    pub fn clustered(mut self) -> Self {
        self.clustered = true;
        self
    }

    /// Number of composite parts implied by the scale.
    pub fn composite_parts(&self) -> usize {
        (self.atomic_parts / self.atomic_per_composite).max(1)
    }

    /// Expected data pages for `AtomicParts` under this layout.
    pub fn atomic_pages(&self) -> u64 {
        let per_page =
            ((self.page_size as f64 * self.fill_factor) as u64 / self.atomic_object_size).max(1);
        (self.atomic_parts as u64).div_ceil(per_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_matches_section_5() {
        let c = Oo7Config::paper();
        assert_eq!(c.atomic_parts, 70_000);
        assert_eq!(c.atomic_object_size, 56);
        assert_eq!(c.atomic_pages(), 1_000);
        assert_eq!(c.composite_parts(), 3_500);
    }

    #[test]
    fn small_is_proportional() {
        let c = Oo7Config::small();
        assert_eq!(c.atomic_pages(), 100);
        assert_eq!(c.composite_parts(), 350);
    }
}

//! OO7 query workloads as plan builders.
//!
//! The §5 experiment is [`index_scan_selectivity`]: an index scan over
//! `AtomicParts.Id` at a chosen selectivity. The classical OO7 queries
//! relevant to a cost-model study are provided as [`Oo7Query`] variants.

use disco_algebra::{AggFunc, CompareOp, LogicalPlan, PlanBuilder};
use disco_common::QualifiedName;

use crate::gen::{
    atomic_parts_schema, composite_parts_schema, connections_schema, documents_schema,
};
use crate::params::Oo7Config;

/// Scan of `AtomicParts` under the given wrapper name.
pub fn atomic_scan(wrapper: &str) -> PlanBuilder {
    PlanBuilder::scan(
        QualifiedName::new(wrapper, "AtomicParts"),
        atomic_parts_schema(),
    )
}

/// The §5 experiment: `select(scan(AtomicParts), Id <= v)` where `v` is
/// chosen so the fraction of qualifying objects is `selectivity`.
///
/// `Id` is uniform on `0..atomic_parts`, so `Id <= sel*n - 1` qualifies
/// `sel*n` objects exactly.
pub fn index_scan_selectivity(wrapper: &str, config: &Oo7Config, selectivity: f64) -> LogicalPlan {
    let k = (selectivity.clamp(0.0, 1.0) * config.atomic_parts as f64).round() as i64;
    atomic_scan(wrapper).select("Id", CompareOp::Lt, k).build()
}

/// The classical OO7 query set (subset relevant to cost estimation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oo7Query {
    /// Q1: exact-match lookup of one atomic part by `Id`.
    ExactMatch { id: i64 },
    /// Q2/Q3/Q7-style range on `BuildDate` covering the given fraction of
    /// the date domain (1 %, 10 %, 100 % in the benchmark).
    BuildDateRange { fraction_percent: u32 },
    /// Q4-style: documents joined to their composite parts.
    DocumentsOfComposites,
    /// Q8-ish: atomic parts joined to the documents of their composite.
    AtomicWithDocuments,
    /// Connection traversal: connections of low-id atomic parts.
    ConnectionsOfParts { max_from_id: i64 },
    /// Aggregate: parts per build date.
    PartsPerBuildDate,
}

impl Oo7Query {
    /// Build the logical plan for this query.
    pub fn plan(&self, wrapper: &str, config: &Oo7Config) -> LogicalPlan {
        let atomic = || atomic_scan(wrapper);
        let documents =
            || PlanBuilder::scan(QualifiedName::new(wrapper, "Documents"), documents_schema());
        let composites = || {
            PlanBuilder::scan(
                QualifiedName::new(wrapper, "CompositeParts"),
                composite_parts_schema(),
            )
        };
        let connections = || {
            PlanBuilder::scan(
                QualifiedName::new(wrapper, "Connections"),
                connections_schema(),
            )
        };
        match self {
            Oo7Query::ExactMatch { id } => atomic().select("Id", CompareOp::Eq, *id).build(),
            Oo7Query::BuildDateRange { fraction_percent } => {
                let hi = (config.build_dates as i64 * *fraction_percent as i64) / 100;
                atomic().select("BuildDate", CompareOp::Lt, hi).build()
            }
            Oo7Query::DocumentsOfComposites => composites()
                .join(documents(), "DocId", "DocId")
                .project_attrs(&["Id", "Title"])
                .build(),
            Oo7Query::AtomicWithDocuments => atomic()
                .select("Id", CompareOp::Lt, 100i64)
                .join(documents(), "DocId", "DocId")
                .project_attrs(&["Id", "Title"])
                .build(),
            Oo7Query::ConnectionsOfParts { max_from_id } => connections()
                .select("FromId", CompareOp::Lt, *max_from_id)
                .build(),
            Oo7Query::PartsPerBuildDate => atomic()
                .aggregate(&["BuildDate"], vec![("n", AggFunc::Count, None)])
                .build(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::build_store;
    use disco_sources::DataSource;

    #[test]
    fn index_scan_selectivity_counts() {
        let config = Oo7Config::small();
        let store = build_store(&config).unwrap();
        for sel in [0.0, 0.1, 0.5] {
            let plan = index_scan_selectivity("oo7", &config, sel);
            let ans = store.execute(&plan).unwrap();
            assert_eq!(
                ans.tuples.len(),
                (sel * 7_000.0).round() as usize,
                "sel={sel}"
            );
        }
    }

    #[test]
    fn exact_match_returns_one() {
        let config = Oo7Config::small();
        let store = build_store(&config).unwrap();
        let ans = store
            .execute(&Oo7Query::ExactMatch { id: 42 }.plan("oo7", &config))
            .unwrap();
        assert_eq!(ans.tuples.len(), 1);
    }

    #[test]
    fn joins_produce_matches() {
        let config = Oo7Config::small();
        let store = build_store(&config).unwrap();
        let docs = store
            .execute(&Oo7Query::DocumentsOfComposites.plan("oo7", &config))
            .unwrap();
        assert_eq!(docs.tuples.len(), 350);
        let awd = store
            .execute(&Oo7Query::AtomicWithDocuments.plan("oo7", &config))
            .unwrap();
        assert_eq!(awd.tuples.len(), 100);
    }

    #[test]
    fn aggregate_counts_build_dates() {
        let config = Oo7Config::small();
        let store = build_store(&config).unwrap();
        let ans = store
            .execute(&Oo7Query::PartsPerBuildDate.plan("oo7", &config))
            .unwrap();
        assert!(ans.tuples.len() <= 1_000);
        let total: i64 = ans
            .tuples
            .iter()
            .map(|t| t.get(1).unwrap().as_i64().unwrap())
            .sum();
        assert_eq!(total, 7_000);
    }
}

//! Seeded randomized round-trip tests for the metrics/trace JSON
//! encodings, always on (the shrinking proptest variants live in
//! `prop_roundtrip.rs` behind the `proptest` feature).

use disco_common::rng::{seeded, StdRng};
use disco_obs::metrics::{MetricsRegistry, MetricsSnapshot};
use disco_obs::trace::TraceReport;
use disco_obs::{Json, Span};

/// Strings exercising escaping: quotes, backslashes, control chars,
/// non-ASCII, astral plane (surrogate pairs in \u encoding).
fn gen_string(rng: &mut StdRng) -> String {
    const POOL: &[&str] = &[
        "plain",
        "with space",
        "q\"uote",
        "back\\slash",
        "new\nline",
        "tab\there",
        "nul\u{0}byte",
        "läbel",
        "度量",
        "emoji \u{1F600}",
        "",
        "le",
        "{}",
        "a=\"b\"",
    ];
    let mut s = String::new();
    for _ in 0..rng.gen_range(1..4usize) {
        s.push_str(POOL[rng.gen_range(0..POOL.len())]);
    }
    s
}

fn gen_labels<'a>(
    rng: &mut StdRng,
    storage: &'a mut Vec<(String, String)>,
) -> Vec<(&'a str, &'a str)> {
    storage.clear();
    let n = rng.gen_range(0..3usize);
    for i in 0..n {
        // Distinct keys: duplicate label keys would collapse in the map.
        storage.push((format!("k{i}_{}", gen_string(rng)), gen_string(rng)));
    }
    storage
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

#[test]
fn metrics_snapshot_round_trips_randomized() {
    let mut rng = seeded(0xD15C0, "obs-metrics-roundtrip");
    for _ in 0..200 {
        let reg = MetricsRegistry::new();
        let mut storage = Vec::new();
        for _ in 0..rng.gen_range(0..4usize) {
            let name = gen_string(&mut rng);
            let labels = gen_labels(&mut rng, &mut storage);
            reg.counter(&name, &labels)
                .add(rng.gen_range(0..1_000_000u64));
        }
        for _ in 0..rng.gen_range(0..4usize) {
            let name = gen_string(&mut rng);
            let labels = gen_labels(&mut rng, &mut storage);
            reg.gauge(&name, &labels).set(rng.gen_f64() * 1e6 - 5e5);
        }
        for _ in 0..rng.gen_range(0..3usize) {
            let name = gen_string(&mut rng);
            let labels = gen_labels(&mut rng, &mut storage);
            let h = reg.histogram(&name, &labels);
            for _ in 0..rng.gen_range(0..20usize) {
                h.observe(rng.gen_f64() * 1e5);
            }
        }
        let snap = reg.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text)
            .unwrap_or_else(|e| panic!("decode failed: {e}\n{text}"));
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), text, "encode → decode → encode identity");
        // Exposition never panics, whatever the names/labels contain.
        let _ = snap.to_prometheus();
    }
}

fn gen_span(rng: &mut StdRng, depth: usize) -> Span {
    let events = (0..rng.gen_range(0..3usize))
        .map(|_| (gen_string(rng), gen_string(rng)))
        .collect();
    let children = if depth < 3 {
        (0..rng.gen_range(0..3usize))
            .map(|_| gen_span(rng, depth + 1))
            .collect()
    } else {
        Vec::new()
    };
    Span {
        name: gen_string(rng),
        start_us: rng.gen_range(0..10_000_000u64),
        dur_us: rng.gen_range(0..10_000_000u64),
        events,
        children,
    }
}

#[test]
fn trace_report_round_trips_randomized() {
    let mut rng = seeded(0xD15C0, "obs-trace-roundtrip");
    for _ in 0..200 {
        let report = TraceReport {
            spans: (0..rng.gen_range(0..4usize))
                .map(|_| gen_span(&mut rng, 0))
                .collect(),
        };
        let text = report.to_json();
        let back =
            TraceReport::from_json(&text).unwrap_or_else(|e| panic!("decode failed: {e}\n{text}"));
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text, "encode → decode → encode identity");
        let _ = report.render();
    }
}

#[test]
fn json_parser_rejects_garbage_without_panicking() {
    let mut rng = seeded(0xD15C0, "obs-json-garbage");
    for _ in 0..500 {
        let len = rng.gen_range(0..64usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        // Must never panic; errors are fine.
        let _ = Json::parse(&text);
    }
}

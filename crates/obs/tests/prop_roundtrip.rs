// Gated: requires the `proptest` cargo feature (and the proptest
// dev-dependency, removed so offline builds succeed — see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property tests for the metrics/trace JSON encodings: encode → decode
//! → encode is the identity, and the Prometheus exposition never panics
//! on adversarial metric names or label strings. The always-on seeded
//! variants live in `roundtrip.rs`; these add proptest's shrinking.

use proptest::prelude::*;

use disco_obs::metrics::{HistogramSample, MetricsSnapshot, Sample};
use disco_obs::trace::{Span, TraceReport};
use disco_obs::Json;

fn label_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((".{0,16}", ".{0,16}"), 0..4).prop_map(|mut ls| {
        // The registry stores labels sorted and keyed uniquely.
        ls.sort();
        ls.dedup_by(|a, b| a.0 == b.0);
        ls
    })
}

fn sample_strategy() -> impl Strategy<Value = Sample> {
    (".{0,24}", label_strategy(), prop::num::f64::NORMAL).prop_map(|(name, labels, value)| Sample {
        name,
        labels,
        value,
    })
}

fn histogram_strategy() -> impl Strategy<Value = HistogramSample> {
    (
        ".{0,24}",
        label_strategy(),
        prop::collection::vec((1.0f64..1e9, 0u64..1000), 0..8),
        prop::num::f64::NORMAL,
        0u64..100_000,
    )
        .prop_map(|(name, labels, buckets, sum, count)| {
            let (bounds, counts) = buckets.into_iter().unzip();
            HistogramSample {
                name,
                labels,
                bounds,
                counts,
                sum,
                count,
            }
        })
}

fn snapshot_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    (
        prop::collection::vec(sample_strategy(), 0..5),
        prop::collection::vec(sample_strategy(), 0..5),
        prop::collection::vec(histogram_strategy(), 0..3),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
}

fn span_strategy() -> impl Strategy<Value = Span> {
    let leaf = (
        ".{0,24}",
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec((".{0,12}", ".{0,12}"), 0..3),
    )
        .prop_map(|(name, start, dur, events)| Span {
            name,
            start_us: start as u64,
            dur_us: dur as u64,
            events,
            children: Vec::new(),
        });
    leaf.prop_recursive(3, 16, 3, |inner| {
        (
            ".{0,24}",
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec((".{0,12}", ".{0,12}"), 0..3),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(name, start, dur, events, children)| Span {
                name,
                start_us: start as u64,
                dur_us: dur as u64,
                events,
                children,
            })
    })
}

proptest! {
    #[test]
    fn metrics_snapshot_roundtrip(snap in snapshot_strategy()) {
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("decode");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.to_json(), text);
    }

    #[test]
    fn exposition_never_panics(snap in snapshot_strategy()) {
        let _ = snap.to_prometheus();
    }

    #[test]
    fn trace_report_roundtrip(spans in prop::collection::vec(span_strategy(), 0..4)) {
        let report = TraceReport { spans };
        let text = report.to_json();
        let back = TraceReport::from_json(&text).expect("decode");
        prop_assert_eq!(&back, &report);
        prop_assert_eq!(back.to_json(), text);
        let _ = report.render();
    }

    #[test]
    fn json_parse_never_panics(src in ".{0,256}") {
        let _ = Json::parse(&src);
    }
}

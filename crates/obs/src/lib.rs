//! disco-obs: the observability layer.
//!
//! Zero-dependency (per the vendored-deps convention) tracing and
//! metrics, sitting below every other crate in the workspace so that
//! core, transport, sources, and mediator can all emit telemetry
//! without dependency cycles:
//!
//! * [`trace`] — nested span tracing with a tree/JSON report
//!   ([`Tracer`], [`TraceReport`]).
//! * [`metrics`] — process-wide registry of counters, gauges and
//!   histograms with Prometheus text exposition and a JSON snapshot
//!   ([`metrics::global`], [`MetricsSnapshot`]).
//! * [`json`] — the minimal JSON value/parser/writer backing both
//!   reports (round-trip exact for everything the registry emits).
//!
//! Metric names used across the workspace are centralized in [`names`]
//! so call sites and dashboards cannot drift apart.

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::Json;
pub use metrics::{
    enabled, set_enabled, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{Span, SpanGuard, TraceReport, Tracer};

/// Well-known metric names (see DESIGN.md §Observability).
pub mod names {
    /// Counter, labels `{cache="cost"|"rules"}`: lookups against an
    /// estimator cache.
    pub const CACHE_LOOKUPS: &str = "cache_lookups_total";
    /// Counter, labels `{cache="cost"|"rules"}`: lookups that hit.
    pub const CACHE_HITS: &str = "cache_hits_total";
    /// Gauge, labels `{cache="cost"|"rules"}`: hits / lookups.
    pub const CACHE_HIT_RATIO: &str = "cache_hit_ratio";
    /// Counter, labels `{wrapper}`: transport retry attempts beyond the
    /// first try.
    pub const TRANSPORT_RETRIES: &str = "transport_retries_total";
    /// Counter, labels `{wrapper}`: submissions that exhausted retries
    /// or were rejected by an open breaker.
    pub const WRAPPER_UNAVAILABLE: &str = "wrapper_unavailable_total";
    /// Counter, labels `{wrapper, to="open"|"half_open"|"closed"}`:
    /// circuit-breaker state transitions.
    pub const BREAKER_TRANSITIONS: &str = "breaker_transitions_total";
    /// Counter, labels `{wrapper}`: hedge submits launched at a replica
    /// because the primary exceeded its straggler threshold.
    pub const TRANSPORT_HEDGES: &str = "transport_hedges_total";
    /// Counter, labels `{wrapper}`: hedge submits that won the race
    /// (answered before the primary).
    pub const TRANSPORT_HEDGE_WINS: &str = "transport_hedge_wins_total";
    /// Counter, labels `{wrapper, outcome="met"|"missed"}`: per-submit
    /// deadline outcomes (missed = a wall or simulated deadline expiry).
    pub const SUBMIT_DEADLINES: &str = "submit_deadline_outcomes_total";
    /// Gauge, labels `{wrapper}`: current multiplicative health penalty
    /// the estimator applies at wrapper scope (1 = healthy).
    pub const WRAPPER_PENALTY: &str = "wrapper_health_penalty";
    /// Counter, no labels: queries whose time budget ran out before all
    /// submits were fetched (degraded to a partial answer).
    pub const BUDGET_EXHAUSTED: &str = "query_budget_exhausted_total";
    /// Counter, labels `{op}`: rows flowing out of a vectorized
    /// combine operator.
    pub const VEXEC_ROWS: &str = "vexec_rows_total";
    /// Counter, labels `{op}`: batches flowing out of a vectorized
    /// combine operator.
    pub const VEXEC_BATCHES: &str = "vexec_batches_total";
    /// Counter, no labels: queries executed by the mediator.
    pub const QUERIES: &str = "queries_total";
    /// Counter, labels `{wrapper}`: query-scope cost rules recorded
    /// from measured submissions.
    pub const HISTORY_RECORDED: &str = "history_recorded_total";
    /// Histogram, no labels: end-to-end measured query latency (ms).
    pub const QUERY_MS: &str = "query_ms";
    /// Counter, no labels: plan-cache lookups that replayed a cached
    /// decision instead of re-optimizing.
    pub const PLAN_CACHE_HITS: &str = "plan_cache_hits_total";
    /// Counter, no labels: plan-cache lookups that fell through to the
    /// full optimizer (shape never seen, or uncacheable statement).
    pub const PLAN_CACHE_MISSES: &str = "plan_cache_misses_total";
    /// Counter, labels `{reason="history"|"health"|"catalog"}`: cached
    /// plans discarded because shared state they were derived from
    /// changed (§4.3 historical-rule updates, health-penalty shifts,
    /// catalog mutations).
    pub const PLAN_CACHE_INVALIDATIONS: &str = "plan_cache_invalidations_total";
    /// Counter, labels `{class="interactive"|"analytical"}`: queries
    /// admitted by the serving-layer scheduler.
    pub const ADMISSION_ADMITTED: &str = "admission_admitted_total";
    /// Counter, no labels: predicted-cheap queries that bypassed a
    /// non-empty analytical queue.
    pub const ADMISSION_BYPASS: &str = "admission_bypass_total";
    /// Histogram, labels `{class}`: milliseconds a query waited for an
    /// admission slot before running.
    pub const ADMISSION_WAIT_MS: &str = "admission_wait_ms";
    /// Counter, labels `{engine="disk"|"simulated", source}`: buffer-pool
    /// page faults (pages read from storage). One schema for both the
    /// real pager in `disco-store` and the simulated one in
    /// `disco-sources`, so dashboards compare them directly.
    pub const STORE_PAGE_FAULTS: &str = "store_page_faults_total";
    /// Counter, labels `{engine, source}`: buffer-pool hits (page
    /// requests served from a resident frame).
    pub const STORE_BUFFER_HITS: &str = "store_buffer_hits_total";
    /// Counter, labels `{engine, source}`: frames evicted to make room.
    pub const STORE_EVICTIONS: &str = "store_evictions_total";
    /// Counter, labels `{engine="two_phase"|"streaming"}`: queries whose
    /// measured subanswer cardinalities crossed the adaptive error
    /// threshold, triggering a mid-query re-enumeration of the combine
    /// plan.
    pub const REPLAN_CONSIDERED: &str = "replan_considered_total";
    /// Counter, labels `{engine="two_phase"|"streaming"}`: re-enumerations
    /// that found a cheaper combine order (beyond the switch margin) and
    /// actually abandoned the running plan.
    pub const REPLAN_EXECUTED: &str = "replan_executed_total";
    /// Histogram, labels `{engine}`: predicted win (old minus new combine
    /// cost, ms) of each executed mid-query re-plan.
    pub const REPLAN_WIN_MS: &str = "replan_win_ms";
    /// Counter, no labels: plan-cache entries evicted because the query
    /// re-planned mid-execution — the cached decision was derived from
    /// misestimated cardinalities and must not be replayed for other
    /// constants.
    pub const PLAN_CACHE_REPLAN_BYPASS: &str = "plan_cache_replan_bypass_total";
}

/// Shorthand for `metrics::global().counter(...)`.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Counter {
    metrics::global().counter(name, labels)
}

/// Shorthand for `metrics::global().gauge(...)`.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Gauge {
    metrics::global().gauge(name, labels)
}

/// Shorthand for `metrics::global().histogram(...)`.
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> std::sync::Arc<Histogram> {
    metrics::global().histogram(name, labels)
}

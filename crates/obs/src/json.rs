//! A minimal JSON value, writer and parser.
//!
//! Vendored for the same reason as the workspace's rng and micro-bench
//! harness: the build must succeed offline. Only what the metrics and
//! trace dumps need is implemented, but that subset is round-trip exact:
//! `parse(render(v)) == v` and `render(parse(s)) == s` for any `s` the
//! writer produced. Numbers rely on Rust's shortest-round-trip `f64`
//! formatting; integral values render without a fractional part so
//! counters stay readable.

use std::fmt::Write as _;

/// A JSON document. Object member order is preserved (insertion order),
/// which is what makes encode → decode → encode the identity.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are `f64`; integral values in `±2^53` render exactly.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer (exact for counter-sized values).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a document. The whole input must be one value (trailing
    /// whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Non-finite values have no JSON literal; they render as `null` (and
/// therefore do not round-trip — snapshot producers sanitize first).
fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting deeper than this is rejected instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    members.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits after `\u`; leaves `pos` past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid utf-8 in \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())?;
        // `string` advances by one byte after the match arm for the
        // escapes it handles inline; \u handling advances fully here and
        // then `continue`s, so land exactly past the digits.
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-7", "123456", "1.5", "-0.25"] {
            let v = Json::parse(src).unwrap();
            assert_eq!(v.render(), src, "{src}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let src = r#"{"a":[1,2,{"b":"x"}],"c":null,"d":{"e":[]}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.render(), src);
    }

    #[test]
    fn strings_escape_and_parse_back() {
        let nasty = "a\"b\\c\nd\te\r\u{1}α💥";
        let v = Json::Str(nasty.to_owned());
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Idempotent: re-rendering the parse gives the same bytes.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for src in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\"}",
            "tru",
            "1e",
            "nul",
            "[}",
            "\\u12",
            "{\"a\":1,}",
            "\"\\ud800\"",
            "\"\\uZZZZ\"",
        ] {
            assert!(Json::parse(src).is_err(), "{src:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x","a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let src = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&src).is_err());
    }
}

//! Process-wide metrics registry: counters, gauges and histograms with
//! labels, exposed as Prometheus-style text and as a JSON snapshot that
//! round-trips (encode → decode → encode is the identity).
//!
//! Handles are cheap `Arc`s around atomics: registration takes a short
//! lock, increments are lock-free. Hot paths that cannot afford even the
//! registration lookup guard on [`enabled`] (one relaxed atomic load)
//! and skip the whole call — that switch is what the instrumentation
//! overhead bench flips.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

/// Global instrumentation switch. On by default: default-path increments
/// are per-batch / per-submit, not per-row.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is instrumentation globally enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flip the global instrumentation switch (overhead experiments).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Metric identity: name plus sorted label pairs.
type MetricId = (String, Vec<(String, String)>);

fn metric_id(name: &str, labels: &[(&str, &str)]) -> MetricId {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    ls.sort();
    (name.to_owned(), ls)
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default histogram bucket upper bounds (a 1–2–5 decade ladder wide
/// enough for both millisecond timings and row counts).
pub const DEFAULT_BUCKETS: [f64; 16] = [
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    5_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
];

#[derive(Debug, Default)]
struct HistState {
    /// Per-bucket observation counts (non-cumulative; exposition
    /// accumulates). One extra implicit `+Inf` bucket is `count - sum of
    /// these`.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

/// A histogram with fixed bucket bounds.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    state: Mutex<HistState>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            state: Mutex::new(HistState {
                counts: vec![0; bounds.len()],
                sum: 0.0,
                count: 0,
            }),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let mut s = self.state.lock().expect("histogram lock");
        if let Some(i) = self.bounds.iter().position(|b| v <= *b) {
            s.counts[i] += 1;
        }
        s.sum += v;
        s.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.state.lock().expect("histogram lock").count
    }
}

/// Counters, gauges and histograms under one roof.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricId, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricId, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<MetricId, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter with this name and label set, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut map = self.counters.lock().expect("metrics lock");
        Counter(Arc::clone(map.entry(metric_id(name, labels)).or_default()))
    }

    /// The gauge with this name and label set, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut map = self.gauges.lock().expect("metrics lock");
        Gauge(Arc::clone(map.entry(metric_id(name, labels)).or_default()))
    }

    /// The histogram with this name and label set (default buckets),
    /// created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with(name, labels, &DEFAULT_BUCKETS)
    }

    /// Like [`histogram`](Self::histogram) with explicit bucket bounds
    /// (ignored if the histogram already exists).
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics lock");
        Arc::clone(
            map.entry(metric_id(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A point-in-time copy of every metric, deterministically ordered.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|((name, labels), v)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: v.load(Ordering::Relaxed) as f64,
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|((name, labels), v)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: sanitize(f64::from_bits(v.load(Ordering::Relaxed))),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|((name, labels), h)| {
                let s = h.state.lock().expect("histogram lock");
                HistogramSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    bounds: h.bounds.clone(),
                    counts: s.counts.clone(),
                    sum: sanitize(s.sum),
                    count: s.count,
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zero every metric (test isolation; handles stay valid).
    pub fn reset(&self) {
        for v in self.counters.lock().expect("metrics lock").values() {
            v.store(0, Ordering::Relaxed);
        }
        for v in self.gauges.lock().expect("metrics lock").values() {
            v.store(0.0f64.to_bits(), Ordering::Relaxed);
        }
        for h in self.histograms.lock().expect("metrics lock").values() {
            let mut s = h.state.lock().expect("histogram lock");
            s.counts.iter_mut().for_each(|c| *c = 0);
            s.sum = 0.0;
            s.count = 0;
        }
    }
}

/// JSON has no literal for non-finite numbers.
fn sanitize(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// One counter or gauge sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// One histogram sample.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts, same length as `bounds`.
    pub counts: Vec<u64>,
    pub sum: f64,
    pub count: u64,
}

/// A deterministic, serializable copy of a registry's state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<Sample>,
    pub gauges: Vec<Sample>,
    pub histograms: Vec<HistogramSample>,
}

fn labels_json(labels: &[(String, String)]) -> Json {
    Json::Obj(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    )
}

fn labels_from_json(v: &Json) -> Result<Vec<(String, String)>, String> {
    match v {
        Json::Obj(members) => members
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_owned()))
                    .ok_or_else(|| "label value is not a string".to_owned())
            })
            .collect(),
        _ => Err("labels is not an object".into()),
    }
}

fn sample_json(s: &Sample) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(s.name.clone())),
        ("labels".into(), labels_json(&s.labels)),
        ("value".into(), Json::Num(s.value)),
    ])
}

fn sample_from_json(v: &Json) -> Result<Sample, String> {
    Ok(Sample {
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("sample missing name")?
            .to_owned(),
        labels: labels_from_json(v.get("labels").ok_or("sample missing labels")?)?,
        value: v
            .get("value")
            .and_then(Json::as_f64)
            .ok_or("sample missing value")?,
    })
}

impl MetricsSnapshot {
    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        let hists = self
            .histograms
            .iter()
            .map(|h| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(h.name.clone())),
                    ("labels".into(), labels_json(&h.labels)),
                    (
                        "bounds".into(),
                        Json::Arr(h.bounds.iter().map(|b| Json::Num(*b)).collect()),
                    ),
                    (
                        "counts".into(),
                        Json::Arr(h.counts.iter().map(|c| Json::Num(*c as f64)).collect()),
                    ),
                    ("sum".into(), Json::Num(h.sum)),
                    ("count".into(), Json::Num(h.count as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Arr(self.counters.iter().map(sample_json).collect()),
            ),
            (
                "gauges".into(),
                Json::Arr(self.gauges.iter().map(sample_json).collect()),
            ),
            ("histograms".into(), Json::Arr(hists)),
        ])
        .render()
    }

    /// Parse a [`to_json`](Self::to_json) dump back.
    pub fn from_json(src: &str) -> Result<MetricsSnapshot, String> {
        let v = Json::parse(src)?;
        let samples = |key: &str| -> Result<Vec<Sample>, String> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing `{key}` array"))?
                .iter()
                .map(sample_from_json)
                .collect()
        };
        let histograms = v
            .get("histograms")
            .and_then(Json::as_arr)
            .ok_or("missing `histograms` array")?
            .iter()
            .map(|h| {
                let nums = |key: &str| -> Result<Vec<f64>, String> {
                    h.get(key)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("histogram missing `{key}`"))?
                        .iter()
                        .map(|n| n.as_f64().ok_or_else(|| format!("bad number in `{key}`")))
                        .collect()
                };
                Ok(HistogramSample {
                    name: h
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("histogram missing name")?
                        .to_owned(),
                    labels: labels_from_json(h.get("labels").ok_or("histogram missing labels")?)?,
                    bounds: nums("bounds")?,
                    counts: nums("counts")?.iter().map(|c| *c as u64).collect(),
                    sum: h
                        .get("sum")
                        .and_then(Json::as_f64)
                        .ok_or("histogram missing sum")?,
                    count: h
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or("histogram missing count")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(MetricsSnapshot {
            counters: samples("counters")?,
            gauges: samples("gauges")?,
            histograms,
        })
    }

    /// Prometheus text exposition. Never panics, whatever the metric
    /// names or label values contain: names are sanitized to the legal
    /// character set, label values escaped.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_name = String::new();
        let mut typ = |out: &mut String, name: &str, kind: &str| {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_name = name.to_owned();
            }
        };
        for c in &self.counters {
            let name = prom_name(&c.name);
            typ(&mut out, &name, "counter");
            let _ = writeln!(out, "{name}{} {}", prom_labels(&c.labels, None), c.value);
        }
        for g in &self.gauges {
            let name = prom_name(&g.name);
            typ(&mut out, &name, "gauge");
            let _ = writeln!(out, "{name}{} {}", prom_labels(&g.labels, None), g.value);
        }
        for h in &self.histograms {
            let name = prom_name(&h.name);
            typ(&mut out, &name, "histogram");
            let mut cum = 0u64;
            for (b, c) in h.bounds.iter().zip(&h.counts) {
                cum += c;
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    prom_labels(&h.labels, Some(&format!("{b}")))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                prom_labels(&h.labels, Some("+Inf")),
                h.count
            );
            let _ = writeln!(out, "{name}_sum{} {}", prom_labels(&h.labels, None), h.sum);
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                prom_labels(&h.labels, None),
                h.count
            );
        }
        out
    }
}

/// Restrict a metric name to `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Render a label set, optionally with an `le` bucket label appended.
fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), prom_escape(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{}\"", prom_escape(le)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escape a label value per the exposition format.
fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let r = MetricsRegistry::new();
        let c = r.counter("requests_total", &[("wrapper", "hr")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same id → same handle.
        assert_eq!(r.counter("requests_total", &[("wrapper", "hr")]).get(), 5);
        // Label order is irrelevant to identity.
        let a = r.counter("x", &[("a", "1"), ("b", "2")]);
        r.counter("x", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(a.get(), 1);

        let g = r.gauge("hit_rate", &[]);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn histogram_buckets_accumulate() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with("ms", &[], &[10.0, 100.0]);
        for v in [1.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // ignored
        let snap = r.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.counts, vec![2, 1]);
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 556.0);
        let text = snap.to_prometheus();
        assert!(text.contains("ms_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("ms_bucket{le=\"100\"} 3"), "{text}");
        assert!(text.contains("ms_bucket{le=\"+Inf\"} 4"), "{text}");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let r = MetricsRegistry::new();
        r.counter("a_total", &[("k", "v\"\n\\")]).add(3);
        r.gauge("g", &[("x", "y")]).set(1.25);
        r.histogram_with("h_ms", &[], &[1.0, 10.0]).observe(4.0);
        let snap = r.snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn exposition_escapes_adversarial_labels() {
        let r = MetricsRegistry::new();
        r.counter("weird metric-name!", &[("läbel key", "a\"b\\c\nd")])
            .inc();
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("weird_metric_name_"), "{text}");
        assert!(text.contains("a\\\"b\\\\c\\nd"), "{text}");
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = MetricsRegistry::new();
        let c = r.counter("c", &[]);
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("c", &[]).get(), 1);
    }

    #[test]
    fn enabled_toggles() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
    }
}

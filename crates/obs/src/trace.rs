//! Lightweight span tracing: a [`Tracer`] records named, nested spans
//! with wall-clock timings and key/value events, producing a
//! [`TraceReport`] that renders as a tree or as JSON (round-trip exact).
//!
//! Spans are parented by a LIFO stack on the tracer: `start` pushes,
//! [`SpanGuard`] drop pops. Work measured elsewhere (e.g. parallel fetch
//! workers whose wall time is captured by the transport layer) is
//! attached post-hoc with [`Tracer::record`], which takes explicit
//! start/duration values instead of sampling the clock.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// One completed (or in-flight) span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub name: String,
    /// Microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Microseconds of wall-clock duration.
    pub dur_us: u64,
    /// Key/value annotations, in insertion order.
    pub events: Vec<(String, String)>,
    pub children: Vec<Span>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    /// Completed roots.
    roots: Vec<Span>,
    /// Open spans, outermost first.
    stack: Vec<Span>,
}

/// A cheaply clonable tracer; clones share state.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(Inner {
                epoch: Instant::now(),
                roots: Vec::new(),
                stack: Vec::new(),
            })),
        }
    }

    fn now_us(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_micros() as u64
    }

    /// Open a span; it closes (and is attached to its parent) when the
    /// returned guard drops.
    pub fn start(&self, name: &str) -> SpanGuard {
        let mut inner = self.inner.lock().expect("tracer lock");
        let start_us = Self::now_us(&inner);
        inner.stack.push(Span {
            name: name.to_owned(),
            start_us,
            dur_us: 0,
            events: Vec::new(),
            children: Vec::new(),
        });
        SpanGuard {
            tracer: self.clone(),
            done: false,
        }
    }

    /// Annotate the innermost open span (no-op if none is open).
    pub fn event(&self, key: &str, value: impl ToString) {
        let mut inner = self.inner.lock().expect("tracer lock");
        if let Some(span) = inner.stack.last_mut() {
            span.events.push((key.to_owned(), value.to_string()));
        }
    }

    /// Attach an already-measured span (child of the innermost open
    /// span, or a root). `start_us` is relative to this tracer's epoch.
    pub fn record(&self, name: &str, start_us: u64, dur_us: u64, events: Vec<(String, String)>) {
        let span = Span {
            name: name.to_owned(),
            start_us,
            dur_us,
            events,
            children: Vec::new(),
        };
        let mut inner = self.inner.lock().expect("tracer lock");
        match inner.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => inner.roots.push(span),
        }
    }

    /// Microseconds elapsed since the tracer was created (for computing
    /// `start_us` values to pass to [`record`](Self::record)).
    pub fn elapsed_us(&self) -> u64 {
        let inner = self.inner.lock().expect("tracer lock");
        Self::now_us(&inner)
    }

    fn finish_top(&self) {
        let mut inner = self.inner.lock().expect("tracer lock");
        let now = Self::now_us(&inner);
        if let Some(mut span) = inner.stack.pop() {
            span.dur_us = now.saturating_sub(span.start_us);
            match inner.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => inner.roots.push(span),
            }
        }
    }

    /// Snapshot completed roots (open spans are not included).
    pub fn report(&self) -> TraceReport {
        let inner = self.inner.lock().expect("tracer lock");
        TraceReport {
            spans: inner.roots.clone(),
        }
    }
}

/// Closes its span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    done: bool,
}

impl SpanGuard {
    /// Close the span now instead of at end of scope.
    pub fn finish(mut self) {
        self.done = true;
        self.tracer.finish_top();
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.done {
            self.tracer.finish_top();
        }
    }
}

/// A completed trace: a forest of spans.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceReport {
    pub spans: Vec<Span>,
}

fn span_json(s: &Span) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(s.name.clone())),
        ("start_us".into(), Json::Num(s.start_us as f64)),
        ("dur_us".into(), Json::Num(s.dur_us as f64)),
        (
            "events".into(),
            Json::Arr(
                s.events
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())]))
                    .collect(),
            ),
        ),
        (
            "children".into(),
            Json::Arr(s.children.iter().map(span_json).collect()),
        ),
    ])
}

fn span_from_json(v: &Json) -> Result<Span, String> {
    let events = v
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("span missing events")?
        .iter()
        .map(|e| {
            let pair = e
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or("bad event pair")?;
            match (pair[0].as_str(), pair[1].as_str()) {
                (Some(k), Some(val)) => Ok((k.to_owned(), val.to_owned())),
                _ => Err("event is not a string pair".to_owned()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let children = v
        .get("children")
        .and_then(Json::as_arr)
        .ok_or("span missing children")?
        .iter()
        .map(span_from_json)
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Span {
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("span missing name")?
            .to_owned(),
        start_us: v
            .get("start_us")
            .and_then(Json::as_u64)
            .ok_or("span missing start_us")?,
        dur_us: v
            .get("dur_us")
            .and_then(Json::as_u64)
            .ok_or("span missing dur_us")?,
        events,
        children,
    })
}

impl TraceReport {
    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![(
            "spans".into(),
            Json::Arr(self.spans.iter().map(span_json).collect()),
        )])
        .render()
    }

    /// Parse a [`to_json`](Self::to_json) dump back.
    pub fn from_json(src: &str) -> Result<TraceReport, String> {
        let v = Json::parse(src)?;
        let spans = v
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing `spans` array")?
            .iter()
            .map(span_from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(TraceReport { spans })
    }

    /// Indented tree rendering, one span per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        fn walk(out: &mut String, span: &Span, depth: usize) {
            let _ = write!(
                out,
                "{:indent$}{} {:.3}ms",
                "",
                span.name,
                span.dur_us as f64 / 1000.0,
                indent = depth * 2
            );
            for (k, v) in &span.events {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
            for child in &span.children {
                walk(out, child, depth + 1);
            }
        }
        let mut out = String::new();
        for span in &self.spans {
            walk(&mut out, span, 0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_follows_guard_scopes() {
        let t = Tracer::new();
        {
            let _outer = t.start("outer");
            t.event("phase", "warmup");
            {
                let _inner = t.start("inner");
                t.event("rows", 42);
            }
        }
        let report = t.report();
        assert_eq!(report.spans.len(), 1);
        let outer = &report.spans[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.events, vec![("phase".into(), "warmup".into())]);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].events, vec![("rows".into(), "42".into())]);
    }

    #[test]
    fn record_attaches_manual_spans() {
        let t = Tracer::new();
        {
            let _fetch = t.start("fetch");
            t.record("submit:hr", 10, 2500, vec![("tuples".into(), "7".into())]);
        }
        t.record("loose", 0, 5, vec![]);
        let report = t.report();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].children[0].name, "submit:hr");
        assert_eq!(report.spans[0].children[0].dur_us, 2500);
        assert_eq!(report.spans[1].name, "loose");
    }

    #[test]
    fn report_json_round_trips() {
        let t = Tracer::new();
        {
            let _a = t.start("a \"quoted\"\n");
            t.event("k", "v\\w");
            let _b = t.start("b");
        }
        let report = t.report();
        let text = report.to_json();
        let back = TraceReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn render_indents_children() {
        let t = Tracer::new();
        {
            let _a = t.start("optimize");
            let _b = t.start("dp");
        }
        let text = t.report().render();
        assert!(text.starts_with("optimize "), "{text}");
        assert!(text.contains("\n  dp "), "{text}");
    }

    #[test]
    fn explicit_finish_closes_early() {
        let t = Tracer::new();
        let g = t.start("early");
        g.finish();
        assert_eq!(t.report().spans.len(), 1);
    }
}

//! Registered rules: compiled wrapper formulas and native (Rust) formulas.
//!
//! The mediator's generic model and local-operator costs are *native*
//! rules — Rust implementations of the \[GST96\]-style calibration formulas,
//! which need conditionals (index present? cheapest join algorithm?) the
//! rule language deliberately omits. Wrapper-shipped rules are *compiled*
//! bodies evaluated by the `disco-costlang` VM. Both kinds live in the same
//! scope hierarchy and are selected by the same matching machinery, which
//! is exactly the blending the paper describes.

use std::fmt;
use std::sync::Arc;

use disco_costlang::ast::RuleHead;
use disco_costlang::{CompiledBody, CostVar};

use crate::estimator::NativeCtx;
use crate::registry::Provenance;
use crate::scope::Scope;

/// A Rust-implemented cost formula set.
pub trait NativeFormula: Send + Sync {
    /// The result variables this formula can compute.
    fn provides(&self) -> &[CostVar];

    /// Compute one variable; `None` means "not applicable here", causing
    /// the estimator to fall back exactly like a failed compiled formula.
    fn eval(&self, var: CostVar, ctx: &NativeCtx<'_>) -> Option<f64>;

    /// Diagnostic name.
    fn name(&self) -> &str;
}

/// The executable part of a registered rule.
#[derive(Clone)]
pub enum RuleBody {
    /// Wrapper-shipped bytecode.
    Compiled(CompiledBody),
    /// Built-in Rust formula (generic model, local operators, recorded
    /// history).
    Native(Arc<dyn NativeFormula>),
}

impl fmt::Debug for RuleBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleBody::Compiled(b) => write!(f, "Compiled({} instrs)", b.program.instrs.len()),
            RuleBody::Native(n) => write!(f, "Native({})", n.name()),
        }
    }
}

/// A rule installed in the registry.
#[derive(Debug, Clone)]
pub struct RegisteredRule {
    /// Registry-assigned identifier.
    pub id: usize,
    /// Who shipped the rule.
    pub provenance: Provenance,
    /// Scope in the specialization hierarchy.
    pub scope: Scope,
    /// Within-scope specificity (bound parameter count).
    pub specificity: u32,
    /// Declaration order — the §3.3.2 tie-breaker.
    pub seq: usize,
    /// Operator pattern.
    pub head: RuleHead,
    /// Collection of the enclosing interface, for interface-nested rules.
    pub declared_in: Option<String>,
    /// Executable body.
    pub body: RuleBody,
}

impl RegisteredRule {
    /// Variables this rule can provide.
    pub fn provides(&self) -> Vec<CostVar> {
        match &self.body {
            RuleBody::Compiled(b) => {
                let mut vars: Vec<CostVar> = b.output_vars().collect();
                vars.dedup();
                vars
            }
            RuleBody::Native(n) => n.provides().to_vec(),
        }
    }

    /// `true` if the rule can compute `var`.
    pub fn provides_var(&self, var: CostVar) -> bool {
        match &self.body {
            RuleBody::Compiled(b) => b.output_vars().any(|v| v == var),
            RuleBody::Native(n) => n.provides().contains(&var),
        }
    }

    /// Sort key: most specific first, then declaration order.
    pub fn rank(&self) -> (std::cmp::Reverse<(Scope, u32)>, usize) {
        (std::cmp::Reverse((self.scope, self.specificity)), self.seq)
    }
}

//! Unification of rule heads against plan nodes (paper §3.3.2, §4.1).
//!
//! "In the first step, each operator submitted to a remote data source is
//! matched against the rule head patterns. If the operator name match the
//! rule head, the binding mechanism unifies each variable in the pattern
//! with a corresponding value from the operator being estimated."
//!
//! A collection term that matches the node's *input* binds to both the
//! child node (for cost-variable paths like `$C.TotalTime`) and the input's
//! base collection (for statistic paths like `$C.salary.Min`) — the paper's
//! "`c` represents the result of the scan and matches `C`".

use disco_algebra::{LogicalPlan, SelectPredicate};
use disco_common::{QualifiedName, Value};
use disco_costlang::ast::{AttrTerm, CollTerm, HeadArg, PredRhs, RuleHead};
use disco_costlang::bytecode::ChildRef;

/// What a head variable was bound to.
#[derive(Debug, Clone, PartialEq)]
pub enum BindingValue {
    /// A collection term: the child slot it denotes (if any) and the base
    /// collection it derives from (if determinable).
    Coll {
        child: Option<ChildRef>,
        collection: Option<QualifiedName>,
    },
    /// An attribute name.
    Attr(String),
    /// A constant from the matched predicate.
    Value(Value),
    /// A whole predicate (display form), from an `AnyPred` argument.
    Pred(String),
}

/// The result of a successful head match.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bindings {
    entries: Vec<(String, BindingValue)>,
    /// The single select conjunct the head's predicate argument matched,
    /// kept for the `selectivity($A, $V)` builtin.
    pub matched_pred: Option<SelectPredicate>,
}

impl Bindings {
    /// Look up a binding by variable name.
    pub fn get(&self, name: &str) -> Option<&BindingValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The first collection binding (the rule's primary input), if any.
    pub fn primary_coll(&self) -> Option<&BindingValue> {
        self.entries
            .iter()
            .map(|(_, v)| v)
            .find(|v| matches!(v, BindingValue::Coll { .. }))
    }

    fn bind(&mut self, name: &str, value: BindingValue) -> bool {
        match self.get(name) {
            // Repeated variables must unify to equal values.
            Some(existing) => *existing == value,
            None => {
                self.entries.push((name.to_owned(), value));
                true
            }
        }
    }
}

/// Attempt to match `head` against `node`.
///
/// `declared_in` is the collection the rule was declared under (for rules
/// nested in an interface body); such rules only apply to nodes deriving
/// from that collection.
pub fn match_head(
    head: &RuleHead,
    node: &LogicalPlan,
    declared_in: Option<&str>,
) -> Option<Bindings> {
    if head.op != node.kind() {
        return None;
    }
    let mut b = Bindings::default();
    let matched = match node {
        LogicalPlan::Scan { collection, .. } => {
            match_coll(&head.args[0], None, Some(collection), &mut b)
        }
        LogicalPlan::Select { input, predicate } => {
            match_coll(
                &head.args[0],
                Some(ChildRef::Input),
                input.base_collection(),
                &mut b,
            ) && match_select_pred(&head.args[1], predicate, &mut b)
        }
        LogicalPlan::Project { input, columns } => {
            match_coll(
                &head.args[0],
                Some(ChildRef::Input),
                input.base_collection(),
                &mut b,
            ) && match_project(&head.args[1], columns, &mut b)
        }
        LogicalPlan::Sort { input, keys } => {
            match_coll(
                &head.args[0],
                Some(ChildRef::Input),
                input.base_collection(),
                &mut b,
            ) && match_sort(&head.args[1], keys, &mut b)
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
            ..
        } => {
            match_coll(
                &head.args[0],
                Some(ChildRef::Left),
                left.base_collection(),
                &mut b,
            ) && match_coll(
                &head.args[1],
                Some(ChildRef::Right),
                right.base_collection(),
                &mut b,
            ) && match_join_pred(&head.args[2], predicate, &mut b)
        }
        LogicalPlan::Union { left, right } => {
            match_coll(
                &head.args[0],
                Some(ChildRef::Left),
                left.base_collection(),
                &mut b,
            ) && match_coll(
                &head.args[1],
                Some(ChildRef::Right),
                right.base_collection(),
                &mut b,
            )
        }
        LogicalPlan::Dedup { input }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Submit { input, .. } => match_coll(
            &head.args[0],
            Some(ChildRef::Input),
            input.base_collection(),
            &mut b,
        ),
    };
    if !matched {
        return None;
    }
    // Interface-nested rules are implicitly restricted to their collection.
    if let Some(d) = declared_in {
        let derives = node.collections().iter().any(|c| c.collection == d);
        if !derives {
            return None;
        }
    }
    Some(b)
}

fn match_coll(
    arg: &HeadArg,
    child: Option<ChildRef>,
    collection: Option<&QualifiedName>,
    b: &mut Bindings,
) -> bool {
    let HeadArg::Coll(term) = arg else {
        return false;
    };
    match term {
        CollTerm::Named(n) => collection.is_some_and(|c| c.collection == *n),
        CollTerm::Var(v) => b.bind(
            v,
            BindingValue::Coll {
                child,
                collection: collection.cloned(),
            },
        ),
    }
}

fn match_select_pred(
    arg: &HeadArg,
    predicate: &disco_algebra::Predicate,
    b: &mut Bindings,
) -> bool {
    match arg {
        HeadArg::AnyPred(v) => {
            if predicate.conjuncts.len() == 1 {
                b.matched_pred = Some(predicate.conjuncts[0].clone());
            }
            b.bind(v, BindingValue::Pred(predicate.to_string()))
        }
        HeadArg::Pred { left, op, right } => {
            // A structured predicate pattern matches a single-conjunct
            // selection; conjunctions only match `AnyPred` rules.
            let [c] = predicate.conjuncts.as_slice() else {
                return false;
            };
            if c.op != *op {
                return false;
            }
            let left_ok = match left {
                AttrTerm::Named(a) => *a == c.attribute,
                AttrTerm::Var(v) => b.bind(v, BindingValue::Attr(c.attribute.clone())),
            };
            if !left_ok {
                return false;
            }
            let right_ok = match right {
                PredRhs::Const(v) => values_equal(v, &c.value),
                // An unquoted identifier in a select pattern is a string
                // constant (`select(Emp, name = Adiba)`).
                PredRhs::Ident(s) => c.value.as_str() == Some(s.as_str()),
                PredRhs::Var(v) => b.bind(v, BindingValue::Value(c.value.clone())),
            };
            if right_ok {
                b.matched_pred = Some(c.clone());
            }
            right_ok
        }
        _ => false,
    }
}

fn match_project(
    arg: &HeadArg,
    columns: &[(String, disco_algebra::ScalarExpr)],
    b: &mut Bindings,
) -> bool {
    match arg {
        HeadArg::AnyPred(v) => {
            let names: Vec<&str> = columns.iter().map(|(n, _)| n.as_str()).collect();
            b.bind(v, BindingValue::Pred(names.join(", ")))
        }
        HeadArg::AttrList(list) => {
            if list.len() != columns.len() {
                return false;
            }
            // Set equality on output names: projection lists are unordered
            // from a costing perspective.
            list.iter().all(|a| columns.iter().any(|(n, _)| n == a))
        }
        _ => false,
    }
}

fn match_sort(arg: &HeadArg, keys: &[(String, bool)], b: &mut Bindings) -> bool {
    let Some((first, _)) = keys.first() else {
        return false;
    };
    match arg {
        HeadArg::Attr(AttrTerm::Named(a)) => a == first,
        HeadArg::Attr(AttrTerm::Var(v)) => b.bind(v, BindingValue::Attr(first.clone())),
        _ => false,
    }
}

fn match_join_pred(
    arg: &HeadArg,
    predicate: &disco_algebra::JoinPredicate,
    b: &mut Bindings,
) -> bool {
    match arg {
        HeadArg::AnyPred(v) => b.bind(v, BindingValue::Pred(predicate.to_string())),
        HeadArg::Pred { left, op, right } => {
            if *op != predicate.op {
                return false;
            }
            let left_ok = match left {
                AttrTerm::Named(a) => *a == predicate.left_attr,
                AttrTerm::Var(v) => b.bind(v, BindingValue::Attr(predicate.left_attr.clone())),
            };
            if !left_ok {
                return false;
            }
            match right {
                // In a join pattern the right-hand side names an attribute.
                PredRhs::Ident(a) => *a == predicate.right_attr,
                PredRhs::Var(v) => b.bind(v, BindingValue::Attr(predicate.right_attr.clone())),
                PredRhs::Const(_) => false,
            }
        }
        _ => false,
    }
}

/// Constant equality for head matching: numeric values compare across
/// `Long`/`Double`.
fn values_equal(a: &Value, b: &Value) -> bool {
    matches!(a.partial_cmp_value(b), Some(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{CompareOp, PlanBuilder};
    use disco_common::{AttributeDef, DataType, Schema};
    use disco_costlang::parse_document;

    fn head(src: &str) -> RuleHead {
        parse_document(&format!("rule {src} {{ TotalTime = 1; }}"))
            .unwrap()
            .rules[0]
            .head
            .clone()
    }

    fn emp() -> PlanBuilder {
        PlanBuilder::scan(
            QualifiedName::new("hr", "Employee"),
            Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("salary", DataType::Long),
            ]),
        )
    }

    #[test]
    fn scan_matching() {
        let node = emp().build();
        assert!(match_head(&head("scan(Employee)"), &node, None).is_some());
        assert!(match_head(&head("scan(Book)"), &node, None).is_none());
        let b = match_head(&head("scan($C)"), &node, None).unwrap();
        match b.get("C").unwrap() {
            BindingValue::Coll {
                child: None,
                collection: Some(q),
            } => {
                assert_eq!(q.collection, "Employee");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_predicate_matching_levels() {
        let node = emp().select("salary", CompareOp::Eq, 77i64).build();
        // All four §4.1 levels match this node.
        assert!(match_head(&head("select($R, $P)"), &node, None).is_some());
        assert!(match_head(&head("select(Employee, $P)"), &node, None).is_some());
        let b = match_head(&head("select(Employee, salary = $V)"), &node, None).unwrap();
        assert_eq!(b.get("V"), Some(&BindingValue::Value(Value::Long(77))));
        assert!(match_head(&head("select(Employee, salary = 77)"), &node, None).is_some());
        // And mismatches don't.
        assert!(match_head(&head("select(Employee, salary = 78)"), &node, None).is_none());
        assert!(match_head(&head("select(Employee, name = $V)"), &node, None).is_none());
        assert!(match_head(&head("select(Employee, salary < $V)"), &node, None).is_none());
    }

    #[test]
    fn select_binds_child_and_collection() {
        let node = emp().select("salary", CompareOp::Gt, 10i64).build();
        let b = match_head(&head("select($C, $A = $V)"), &node, None);
        // Operator is Gt, pattern demands Eq.
        assert!(b.is_none());
        let b = match_head(&head("select($C, $A > $V)"), &node, None).unwrap();
        assert_eq!(b.get("A"), Some(&BindingValue::Attr("salary".into())));
        match b.get("C").unwrap() {
            BindingValue::Coll {
                child: Some(ChildRef::Input),
                collection: Some(q),
            } => {
                assert_eq!(q.collection, "Employee");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(b.matched_pred.as_ref().unwrap().attribute, "salary");
    }

    #[test]
    fn conjunctions_only_match_anypred() {
        let node = emp()
            .select_pred(disco_algebra::Predicate::all(vec![
                SelectPredicate::new("salary", CompareOp::Gt, Value::Long(10)),
                SelectPredicate::new("id", CompareOp::Lt, Value::Long(5)),
            ]))
            .build();
        assert!(match_head(&head("select($C, $A > $V)"), &node, None).is_none());
        let b = match_head(&head("select($C, $P)"), &node, None).unwrap();
        assert!(b.matched_pred.is_none());
        assert!(matches!(b.get("P"), Some(BindingValue::Pred(_))));
    }

    #[test]
    fn join_matching() {
        let node = emp().join(emp(), "id", "id").build();
        assert!(match_head(&head("join($R1, $R2, $P)"), &node, None).is_some());
        let b = match_head(&head("join($R1, $R2, $A1 = $A2)"), &node, None).unwrap();
        assert_eq!(b.get("A1"), Some(&BindingValue::Attr("id".into())));
        assert_eq!(b.get("A2"), Some(&BindingValue::Attr("id".into())));
        assert!(match_head(&head("join(Employee, Employee, id = id)"), &node, None).is_some());
        assert!(match_head(&head("join(Employee, Book, id = id)"), &node, None).is_none());
        assert!(match_head(&head("join(Employee, Employee, id = other)"), &node, None).is_none());
    }

    #[test]
    fn repeated_variables_must_unify() {
        let node = emp().join(emp(), "id", "id").build();
        // Same variable for both attributes: binds to "id" twice — fine.
        assert!(match_head(&head("join($R1, $R2, $A = $A)"), &node, None).is_some());
        let node2 = emp().join(emp(), "id", "salary").build();
        assert!(match_head(&head("join($R1, $R2, $A = $A)"), &node2, None).is_none());
    }

    #[test]
    fn project_matching() {
        let node = emp().project_attrs(&["salary", "id"]).build();
        assert!(match_head(&head("project($C, [id, salary])"), &node, None).is_some());
        assert!(match_head(&head("project($C, [id])"), &node, None).is_none());
        assert!(match_head(&head("project($C, $P)"), &node, None).is_some());
    }

    #[test]
    fn sort_matching() {
        let node = emp().sort_asc(&["salary", "id"]).build();
        assert!(match_head(&head("sort($C, salary)"), &node, None).is_some());
        assert!(match_head(&head("sort($C, id)"), &node, None).is_none());
        let b = match_head(&head("sort($C, $A)"), &node, None).unwrap();
        assert_eq!(b.get("A"), Some(&BindingValue::Attr("salary".into())));
    }

    #[test]
    fn declared_in_restricts_collection() {
        let node = emp().select("salary", CompareOp::Eq, 1i64).build();
        assert!(match_head(&head("select($C, $P)"), &node, Some("Employee")).is_some());
        assert!(match_head(&head("select($C, $P)"), &node, Some("Book")).is_none());
    }

    #[test]
    fn select_over_join_has_no_base_collection() {
        let join = emp().join(emp(), "id", "id");
        let node = join.select("salary", CompareOp::Eq, 1i64).build();
        // Named collection cannot match…
        assert!(match_head(&head("select(Employee, $P)"), &node, None).is_none());
        // …but a variable binds with no collection.
        let b = match_head(&head("select($C, $P)"), &node, None).unwrap();
        assert!(matches!(
            b.get("C"),
            Some(BindingValue::Coll {
                collection: None,
                ..
            })
        ));
    }

    #[test]
    fn numeric_constant_matching_crosses_types() {
        let node = emp().select("salary", CompareOp::Eq, 77i64).build();
        // Rule constant parses as Long(77); also check Double equivalence.
        let h = head("select(Employee, salary = 77.0)");
        assert!(match_head(&h, &node, None).is_some());
    }
}

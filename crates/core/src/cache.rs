//! Estimation caches shared across the candidate plans of one
//! optimization run.
//!
//! The paper stresses that "fast evaluation times are a requirement due
//! to the computational intensity of query optimization" (§2.4). During
//! join enumeration the optimizer prices hundreds of candidate plans that
//! share almost all of their structure: every candidate re-uses the same
//! per-table access subtrees, and a dynamic-programming frontier extends
//! one memoized prefix by one table at a time. Two caches exploit that:
//!
//! * a **subplan cost memo** — keyed by a canonical fingerprint of the
//!   logical subtree plus its wrapper execution context, it returns the
//!   previously computed [`NodeCost`] without re-walking the subtree.
//!   Estimates are deterministic and independent of the cost limit in
//!   effect, so memoized values are exact, not approximations;
//! * a **rule-resolution cache** — keyed by the *shallow* signature of a
//!   node (operator kind, per-child base collections, node payload,
//!   subtree collection set and context), it returns the matched rule
//!   list with bindings, skipping the repeated `match_head` unification
//!   that dominates per-node association cost. Two distinct subtrees with
//!   the same node signature (e.g. the same join predicate over different
//!   inputs) share one resolution.
//!
//! The cache is internally synchronized (`Mutex`-guarded maps, atomic
//! hit counters) so a read-only [`crate::Estimator`] can be shared by
//! value across scoped threads costing independent candidates in
//! parallel. Values are deterministic, so concurrent duplicate inserts
//! are benign.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cost::NodeCost;
use crate::pattern::Bindings;

/// Caches shared by every estimation of one optimization run.
#[derive(Debug, Default)]
pub struct EstimatorCache {
    cost: Mutex<HashMap<String, NodeCost>>,
    rules: Mutex<HashMap<String, Vec<(usize, Bindings)>>>,
    cost_hits: AtomicUsize,
    rule_hits: AtomicUsize,
    cost_lookups: AtomicUsize,
    rule_lookups: AtomicUsize,
}

impl EstimatorCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subplan cost memo hits so far.
    pub fn cost_hits(&self) -> usize {
        self.cost_hits.load(Ordering::Relaxed)
    }

    /// Rule-resolution cache hits so far.
    pub fn rule_hits(&self) -> usize {
        self.rule_hits.load(Ordering::Relaxed)
    }

    /// Subplan cost memo lookups so far (hits + misses).
    pub fn cost_lookups(&self) -> usize {
        self.cost_lookups.load(Ordering::Relaxed)
    }

    /// Rule-resolution cache lookups so far (hits + misses).
    pub fn rule_lookups(&self) -> usize {
        self.rule_lookups.load(Ordering::Relaxed)
    }

    /// Number of distinct subtrees memoized.
    pub fn cost_entries(&self) -> usize {
        self.cost.lock().expect("cache poisoned").len()
    }

    /// Fold this run's lookup/hit totals into the global metrics
    /// registry ([`disco_obs::names::CACHE_LOOKUPS`] / `CACHE_HITS`
    /// counters, `CACHE_HIT_RATIO` gauges, labelled `cache="cost"` and
    /// `cache="rules"`). Call once, when the optimization run owning the
    /// cache finishes — the counters are cumulative across runs, the
    /// gauges show the latest run.
    pub fn publish_metrics(&self) {
        if !disco_obs::enabled() {
            return;
        }
        use disco_obs::names;
        let publish = |kind: &str, lookups: usize, hits: usize| {
            let labels = [("cache", kind)];
            disco_obs::counter(names::CACHE_LOOKUPS, &labels).add(lookups as u64);
            disco_obs::counter(names::CACHE_HITS, &labels).add(hits as u64);
            if lookups > 0 {
                disco_obs::gauge(names::CACHE_HIT_RATIO, &labels).set(hits as f64 / lookups as f64);
            }
        };
        publish("cost", self.cost_lookups(), self.cost_hits());
        publish("rules", self.rule_lookups(), self.rule_hits());
    }

    pub(crate) fn cost_get(&self, key: &str) -> Option<NodeCost> {
        self.cost_lookups.fetch_add(1, Ordering::Relaxed);
        let got = self.cost.lock().expect("cache poisoned").get(key).copied();
        if got.is_some() {
            self.cost_hits.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    pub(crate) fn cost_put(&self, key: String, cost: NodeCost) {
        self.cost.lock().expect("cache poisoned").insert(key, cost);
    }

    pub(crate) fn rules_get(&self, key: &str) -> Option<Vec<(usize, Bindings)>> {
        self.rule_lookups.fetch_add(1, Ordering::Relaxed);
        let got = self.rules.lock().expect("cache poisoned").get(key).cloned();
        if got.is_some() {
            self.rule_hits.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    pub(crate) fn rules_put(&self, key: String, resolved: Vec<(usize, Bindings)>) {
        self.rules
            .lock()
            .expect("cache poisoned")
            .insert(key, resolved);
    }
}

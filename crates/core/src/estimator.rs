//! The cost evaluation algorithm (paper §4, Figure 11).
//!
//! Estimating a plan is a recursive traversal with two phases: formulas
//! are *associated* with nodes top-down (most specific matching rule per
//! result variable, falling back up the scope hierarchy per variable), and
//! *evaluated* bottom-up (children before parents, `CountObject`/`TotalSize`
//! before the time variables, minimum over equally specific rules).
//!
//! Two optimizations from the paper are implemented:
//!
//! * **required-variable cut-off** (§4.2): a child is only estimated when
//!   some selected formula actually reads one of its cost variables —
//!   children are forced lazily, so a constant-valued rule skips its whole
//!   subtree;
//! * **cost-limit abandonment** (§4.3.2): when a node's `TotalTime`
//!   already exceeds the best plan found so far, estimation stops and the
//!   plan is rejected.

use disco_algebra::{CompareOp, LogicalPlan, SelectPredicate};
use disco_catalog::{restriction_selectivity, Catalog, CollectionStats};
use disco_common::{DiscoError, HealthTracker, QualifiedName, Result, Value};
use disco_costlang::ast::PathLeaf;
use disco_costlang::bytecode::{AttrSpec, ChildRef, CollSpec, Instr};
use disco_costlang::{eval_program, CostVar, EvalEnv};

use crate::cache::EstimatorCache;
use crate::cost::{NodeCost, PartialCost};
use crate::explain::{Attribution, ExplainNode};
use crate::pattern::{match_head, BindingValue, Bindings};
use crate::registry::{Provenance, RuleRegistry};
use crate::rules::{RegisteredRule, RuleBody};
use crate::yao::yao_pages;

/// Evaluation order: size variables first (other formulas consume them),
/// then times.
const VAR_ORDER: [CostVar; 5] = [
    CostVar::CountObject,
    CostVar::TotalSize,
    CostVar::TimeFirst,
    CostVar::TimeNext,
    CostVar::TotalTime,
];

/// Observed subanswer cardinalities keyed by submit site, used for
/// mid-query re-optimization: once a wrapper's answer has materialized,
/// its *measured* row count and byte size replace the catalog-derived
/// estimate at the matching `submit` node, and every combine-plan
/// candidate is re-priced against reality.
///
/// Keys are [`CardinalityOverrides::submit_key`] of the submit's wrapper
/// and subplan, so the same subanswer is recognized no matter where a
/// candidate join order places it. An estimator carrying overrides must
/// use a **fresh** [`EstimatorCache`]: memoized costs bake the override
/// in, so a cache shared across different override sets would replay
/// stale cardinalities.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CardinalityOverrides {
    map: std::collections::BTreeMap<String, (f64, f64)>,
}

impl CardinalityOverrides {
    /// An empty override set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical key for a submit site: wrapper name plus the exact
    /// subplan shipped to it.
    pub fn submit_key(wrapper: &str, input: &LogicalPlan) -> String {
        format!("{wrapper}|{input:?}")
    }

    /// Record an observed `(rows, bytes)` for one submit site.
    pub fn insert(&mut self, wrapper: &str, input: &LogicalPlan, rows: f64, bytes: f64) {
        self.map
            .insert(Self::submit_key(wrapper, input), (rows, bytes));
    }

    /// Look up the observation for a submit site, if any.
    pub fn get(&self, wrapper: &str, input: &LogicalPlan) -> Option<(f64, f64)> {
        self.map.get(&Self::submit_key(wrapper, input)).copied()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

/// Options controlling one estimation run.
#[derive(Debug, Clone, Default)]
pub struct EstimateOptions {
    /// Abandon the plan as soon as any node's `TotalTime` exceeds this
    /// (the best-current-plan bound of §4.3.2).
    pub cost_limit: Option<f64>,
    /// Force the wrapper execution context instead of inferring it.
    pub wrapper: Option<String>,
}

/// Result of an estimation run, with work counters for the overhead
/// experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateReport {
    pub cost: NodeCost,
    /// Plan nodes actually visited (subtree cut-off reduces this).
    pub nodes_visited: usize,
    /// Rule bodies evaluated (compiled programs + native formulas).
    pub rules_evaluated: usize,
}

/// The estimator: a rule registry plus the catalog it resolves statistics
/// from, optionally consulting a health tracker for adaptive
/// wrapper-scope penalties.
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    registry: &'a RuleRegistry,
    catalog: &'a Catalog,
    health: Option<&'a HealthTracker>,
    overrides: Option<&'a CardinalityOverrides>,
}

impl<'a> Estimator<'a> {
    /// Build an estimator over a registry and catalog.
    pub fn new(registry: &'a RuleRegistry, catalog: &'a Catalog) -> Self {
        Estimator {
            registry,
            catalog,
            health: None,
            overrides: None,
        }
    }

    /// Consult `health` when pricing `submit` nodes (builder style): the
    /// node's time variables are multiplied by the target wrapper's
    /// current penalty, so observed timeouts and stragglers reshape the
    /// prediction at wrapper scope (§4.1) and plans shift to replicas.
    pub fn with_health(mut self, health: Option<&'a HealthTracker>) -> Self {
        self.health = health;
        self
    }

    /// Replace catalog cardinalities with measured ones at matching
    /// `submit` nodes (builder style). Used by mid-query re-optimization:
    /// candidates are re-priced with the rows that actually arrived.
    /// Callers must pair overrides with a fresh [`EstimatorCache`] — see
    /// [`CardinalityOverrides`].
    pub fn with_overrides(mut self, overrides: Option<&'a CardinalityOverrides>) -> Self {
        self.overrides = overrides;
        self
    }

    /// Estimate a plan's cost.
    pub fn estimate(&self, plan: &LogicalPlan) -> Result<NodeCost> {
        self.estimate_report(plan, &EstimateOptions::default())?
            .map(|r| r.cost)
            .ok_or_else(|| DiscoError::Cost("estimation pruned without a cost limit".into()))
    }

    /// Estimate a plan as if it executed entirely at `wrapper` (used for
    /// pricing wrapper subplans outside a full `submit` tree).
    pub fn estimate_in_wrapper(&self, plan: &LogicalPlan, wrapper: &str) -> Result<NodeCost> {
        let opts = EstimateOptions {
            wrapper: Some(wrapper.to_owned()),
            ..Default::default()
        };
        self.estimate_report(plan, &opts)?
            .map(|r| r.cost)
            .ok_or_else(|| DiscoError::Cost("estimation pruned without a cost limit".into()))
    }

    /// Full estimation entry point. `Ok(None)` means the plan was
    /// abandoned because it exceeded `opts.cost_limit`.
    pub fn estimate_report(
        &self,
        plan: &LogicalPlan,
        opts: &EstimateOptions,
    ) -> Result<Option<EstimateReport>> {
        self.run_report(plan, opts, None)
    }

    /// Like [`Estimator::estimate_report`], but memoizing subplan costs
    /// and rule resolutions in `cache`. One cache is meant to span all
    /// candidate estimations of one optimization run: candidates sharing
    /// subtrees (per-table access plans, memoized DP prefixes) are then
    /// walked once, and repeated `match_head` unification is skipped.
    /// Cached values are exact, so results are identical to the uncached
    /// path; only the work counters shrink.
    pub fn estimate_report_cached(
        &self,
        plan: &LogicalPlan,
        opts: &EstimateOptions,
        cache: &EstimatorCache,
    ) -> Result<Option<EstimateReport>> {
        self.run_report(plan, opts, Some(cache))
    }

    fn run_report(
        &self,
        plan: &LogicalPlan,
        opts: &EstimateOptions,
        cache: Option<&EstimatorCache>,
    ) -> Result<Option<EstimateReport>> {
        let ctx = match &opts.wrapper {
            Some(w) => Some(w.clone()),
            None => infer_wrapper_context(plan),
        };
        let mut run = Run {
            est: *self,
            limit: opts.cost_limit,
            nodes_visited: 0,
            rules_evaluated: 0,
            explain: false,
            cache,
        };
        match run.node(plan, ctx.as_deref(), true) {
            Ok((cost, _)) => Ok(Some(EstimateReport {
                cost,
                nodes_visited: run.nodes_visited,
                rules_evaluated: run.rules_evaluated,
            })),
            Err(EstErr::Pruned) => Ok(None),
            Err(EstErr::Fatal(e)) => Err(e),
        }
    }

    /// Estimate with a full per-node, per-variable rule attribution — the
    /// observable form of the scope-hierarchy blending.
    pub fn explain(
        &self,
        plan: &LogicalPlan,
        opts: &EstimateOptions,
    ) -> Result<Option<ExplainNode>> {
        let ctx = match &opts.wrapper {
            Some(w) => Some(w.clone()),
            None => infer_wrapper_context(plan),
        };
        let mut run = Run {
            est: *self,
            limit: opts.cost_limit,
            nodes_visited: 0,
            rules_evaluated: 0,
            explain: true,
            cache: None,
        };
        match run.node(plan, ctx.as_deref(), true) {
            Ok((_, node)) => Ok(Some(node.expect("explain mode builds a node"))),
            Err(EstErr::Pruned) => Ok(None),
            Err(EstErr::Fatal(e)) => Err(e),
        }
    }
}

/// Infer the wrapper context of a plan with no explicit `submit` nodes:
/// if every scanned collection belongs to one wrapper, the plan is a
/// subplan of that wrapper; otherwise it is mediator-level.
fn infer_wrapper_context(plan: &LogicalPlan) -> Option<String> {
    fn has_submit(p: &LogicalPlan) -> bool {
        matches!(p, LogicalPlan::Submit { .. }) || p.children().iter().any(|c| has_submit(c))
    }
    if has_submit(plan) {
        return None;
    }
    let collections = plan.collections();
    let first = collections.first()?;
    collections
        .iter()
        .all(|c| c.wrapper == first.wrapper)
        .then(|| first.wrapper.clone())
}

enum EstErr {
    Pruned,
    Fatal(DiscoError),
}

struct Run<'a> {
    est: Estimator<'a>,
    limit: Option<f64>,
    nodes_visited: usize,
    rules_evaluated: usize,
    explain: bool,
    /// Shared subplan-cost memo and rule-resolution cache, when the
    /// caller opted in (never in explain mode, which needs full nodes).
    cache: Option<&'a EstimatorCache>,
}

/// Canonical fingerprint of a whole logical subtree under a wrapper
/// execution context — the subplan cost memo key. The `Debug` rendering
/// of a plan covers every cost-relevant field (collections, schemas,
/// predicates, projections, keys), so equal keys imply equal estimates.
fn subtree_key(plan: &LogicalPlan, ctx: Option<&str>) -> String {
    format!("{ctx:?}|{plan:?}")
}

/// Shallow signature of one node — the rule-resolution cache key. Head
/// matching ([`match_head`]) inspects only the node's own payload, each
/// child's base collection, and (for interface-nested rules) the set of
/// collections the subtree derives from; candidate filtering additionally
/// depends on the execution context. All of those go into the key, so
/// different subtrees with equal signatures resolve to the same rules
/// with the same bindings.
fn rule_key(plan: &LogicalPlan, ctx: Option<&str>) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = write!(s, "{ctx:?}|{}|", plan.kind());
    for c in plan.children() {
        let _ = write!(s, "{:?};", c.base_collection());
    }
    let _ = match plan {
        LogicalPlan::Scan { collection, .. } => write!(s, "|{collection}"),
        LogicalPlan::Select { predicate, .. } => write!(s, "|{predicate:?}"),
        LogicalPlan::Project { columns, .. } => write!(s, "|{columns:?}"),
        LogicalPlan::Sort { keys, .. } => write!(s, "|{keys:?}"),
        LogicalPlan::Join {
            predicate, kind, ..
        } => write!(s, "|{kind:?}:{predicate:?}"),
        LogicalPlan::Union { .. } | LogicalPlan::Dedup { .. } => Ok(()),
        LogicalPlan::Aggregate { group_by, aggs, .. } => write!(s, "|{group_by:?}:{aggs:?}"),
        LogicalPlan::Submit { wrapper, .. } => write!(s, "|{wrapper}"),
    };
    let mut colls: Vec<String> = plan.collections().iter().map(|q| q.to_string()).collect();
    colls.sort();
    colls.dedup();
    let _ = write!(s, "|{colls:?}");
    s
}

struct Candidate<'a> {
    rule: &'a RegisteredRule,
    bindings: Bindings,
}

impl<'a> Run<'a> {
    fn node(
        &mut self,
        plan: &LogicalPlan,
        ctx: Option<&str>,
        is_root: bool,
    ) -> std::result::Result<(NodeCost, Option<ExplainNode>), EstErr> {
        self.nodes_visited += 1;

        // Subplan cost memo: an already-estimated subtree returns its
        // cost without re-walking (values are limit-independent; the
        // abandonment check below still applies at this node).
        let memo_key = self.cache.map(|_| subtree_key(plan, ctx));
        if let (Some(cache), Some(key)) = (self.cache, &memo_key) {
            if let Some(cost) = cache.cost_get(key) {
                if let Some(limit) = self.limit {
                    if (is_root || ctx.is_none()) && cost.total_time > limit {
                        return Err(EstErr::Pruned);
                    }
                }
                return Ok((cost, None));
            }
        }

        // Context under which children execute: submit switches into the
        // target wrapper.
        let child_ctx: Option<String> = match plan {
            LogicalPlan::Submit { wrapper, .. } => Some(wrapper.clone()),
            _ => ctx.map(str::to_owned),
        };

        // Phase 1 (association): gather matching rules, most specific
        // first (the registry keeps them sorted). The rule-resolution
        // cache skips the repeated `match_head` unification for nodes
        // sharing a shallow signature.
        let candidates: Vec<Candidate<'a>> = match self.cache {
            Some(cache) => {
                let key = rule_key(plan, ctx);
                match cache.rules_get(&key) {
                    Some(resolved) => resolved
                        .into_iter()
                        .filter_map(|(id, bindings)| {
                            self.est
                                .registry
                                .rule(id)
                                .map(|rule| Candidate { rule, bindings })
                        })
                        .collect(),
                    None => {
                        let fresh = self.resolve_candidates(plan, ctx);
                        cache.rules_put(
                            key,
                            fresh
                                .iter()
                                .map(|c| (c.rule.id, c.bindings.clone()))
                                .collect(),
                        );
                        fresh
                    }
                }
            }
            None => self.resolve_candidates(plan, ctx),
        };

        let child_plans = plan.children();
        let mut children: Vec<Option<NodeCost>> = vec![None; child_plans.len()];
        let mut children_explain: Vec<Option<ExplainNode>> = vec![None; child_plans.len()];
        let mut attributions: Vec<Attribution> = Vec::new();

        // Phase 2 (evaluation), per variable with per-variable fallback.
        let mut partial = PartialCost::default();
        for var in VAR_ORDER {
            let mut value: Option<f64> = None;
            let mut i = 0;
            while i < candidates.len() {
                // One specificity class: equal (scope, specificity).
                let key = (candidates[i].rule.scope, candidates[i].rule.specificity);
                let mut j = i;
                let mut class_values: Vec<f64> = Vec::new();
                let mut class_rules: Vec<String> = Vec::new();
                while j < candidates.len()
                    && (candidates[j].rule.scope, candidates[j].rule.specificity) == key
                {
                    let cand = &candidates[j];
                    if cand.rule.provides_var(var) {
                        if let Some(v) = self.eval_candidate(
                            cand,
                            var,
                            plan,
                            &child_plans,
                            &mut children,
                            &mut children_explain,
                            child_ctx.as_deref(),
                            ctx,
                            &partial,
                        )? {
                            class_values.push(v);
                            if self.explain {
                                class_rules.push(describe_rule(cand.rule));
                            }
                        }
                    }
                    j += 1;
                }
                if !class_values.is_empty() {
                    // "All formulas are invoked and the lowest value is
                    // assigned to the variable" (§4.2 step 3).
                    value = class_values.iter().copied().reduce(f64::min);
                    if self.explain {
                        attributions.push(Attribution {
                            var,
                            scope: key.0,
                            specificity: key.1,
                            rules: class_rules,
                            value: value.expect("non-empty class"),
                        });
                    }
                    break;
                }
                i = j;
            }
            let Some(v) = value else {
                return Err(EstErr::Fatal(DiscoError::Cost(format!(
                    "no applicable formula computes {var} for operator `{}`",
                    plan.kind()
                ))));
            };
            partial.set(var, v);
        }
        let mut cost = partial.finish().expect("all variables computed");

        // Adaptive wrapper-scope penalty: a submit to a wrapper with
        // observed timeouts or straggling replies gets its time
        // variables scaled up, so the optimizer routes around it. The
        // penalty is constant for the duration of one run, so memoized
        // values stay consistent.
        let mut health_penalty = 1.0;
        if let (Some(health), LogicalPlan::Submit { wrapper, .. }) = (self.est.health, plan) {
            health_penalty = health.penalty(wrapper);
            if health_penalty > 1.0 {
                cost.time_first *= health_penalty;
                cost.time_next *= health_penalty;
                cost.total_time *= health_penalty;
            }
        }

        // Mid-query cardinality correction: the subanswer for this submit
        // has already materialized, so its *measured* row count and size
        // replace the estimate — ancestor joins are then priced against
        // reality. Time variables are left alone: the fetch is sunk cost,
        // identical under every candidate combine order.
        let mut observed = None;
        if let (Some(ov), LogicalPlan::Submit { wrapper, input }) = (self.est.overrides, plan) {
            if let Some((rows, bytes)) = ov.get(wrapper, input) {
                cost.count_object = rows;
                cost.total_size = bytes;
                observed = Some(rows);
            }
        }

        // Explain mode reports the whole plan: visit the children the
        // §4.2 cut-off skipped. Their costs are not folded into this
        // node's (no winning rule reads them) — they are shown so the
        // tree is complete for EXPLAIN / EXPLAIN ANALYZE.
        if self.explain {
            for (i, cp) in child_plans.iter().enumerate() {
                if children_explain[i].is_none() {
                    let (c, e) = self.node(cp, child_ctx.as_deref(), false)?;
                    children[i] = Some(c);
                    children_explain[i] = e;
                }
            }
        }

        let explain_node = self.explain.then(|| ExplainNode {
            operator: {
                let mut op = describe_node(plan);
                if health_penalty > 1.0 {
                    op = format!("{op} [health ×{health_penalty:.2}]");
                }
                if let Some(rows) = observed {
                    op = format!("{op} [observed {rows:.0} rows]");
                }
                op
            },
            cost,
            attributions,
            children: children_explain.into_iter().flatten().collect(),
        });

        // A fully evaluated node's cost does not depend on the limit, so
        // it is memoizable even when a limit is in effect (an abandoned
        // run unwinds through `Err` before reaching this point).
        if let (Some(cache), Some(key)) = (self.cache, memo_key) {
            cache.cost_put(key, cost);
        }

        // Branch-and-bound abandonment (§4.3.2). Checked only where cost
        // accumulates monotonically — mediator-level nodes and the plan
        // root. Inside wrapper subtrees an index-access formula may price
        // a selection *below* its child scan, so a child-level check
        // could wrongly abandon a cheap plan.
        if let Some(limit) = self.limit {
            if (is_root || ctx.is_none()) && cost.total_time > limit {
                return Err(EstErr::Pruned);
            }
        }
        Ok((cost, explain_node))
    }

    /// Phase-1 association without the cache: provenance filter plus head
    /// unification over the registry's most-specific-first candidates.
    fn resolve_candidates(&self, plan: &LogicalPlan, ctx: Option<&str>) -> Vec<Candidate<'a>> {
        self.est
            .registry
            .candidates(plan.kind())
            .filter(|r| match &r.provenance {
                Provenance::Default => true,
                Provenance::Local => ctx.is_none(),
                Provenance::Wrapper(w) => ctx == Some(w.as_str()),
            })
            .filter_map(|r| {
                match_head(&r.head, plan, r.declared_in.as_deref())
                    .map(|bindings| Candidate { rule: r, bindings })
            })
            .collect()
    }

    /// Evaluate one candidate rule for one variable. `Ok(None)` = formula
    /// inapplicable (evaluation failed) — the caller falls back.
    #[allow(clippy::too_many_arguments)]
    fn eval_candidate(
        &mut self,
        cand: &Candidate<'a>,
        var: CostVar,
        plan: &LogicalPlan,
        child_plans: &[&LogicalPlan],
        children: &mut Vec<Option<NodeCost>>,
        children_explain: &mut [Option<ExplainNode>],
        child_ctx: Option<&str>,
        ctx: Option<&str>,
        partial: &PartialCost,
    ) -> std::result::Result<Option<f64>, EstErr> {
        // Force exactly the children this rule needs (§4.2 optimization:
        // "if no variables required from a child node, the recursive call
        // to the child is cut").
        let needed = match &cand.rule.body {
            RuleBody::Native(_) => (0..child_plans.len()).collect::<Vec<_>>(),
            RuleBody::Compiled(body) => children_needed(body, &cand.bindings, plan),
        };
        for &i in &needed {
            if children[i].is_none() {
                let (c, e) = self.node(child_plans[i], child_ctx, false)?;
                children[i] = Some(c);
                children_explain[i] = e;
            }
        }
        self.rules_evaluated += 1;

        let rule_wrapper = match &cand.rule.provenance {
            Provenance::Wrapper(w) => Some(w.as_str()),
            _ => ctx,
        };
        match &cand.rule.body {
            RuleBody::Native(native) => {
                let forced: Vec<NodeCost> = children
                    .iter()
                    .map(|c| c.unwrap_or(NodeCost::ZERO))
                    .collect();
                let nctx = NativeCtx {
                    node: plan,
                    children: &forced,
                    catalog: self.est.catalog,
                    registry: self.est.registry,
                    wrapper: ctx,
                    partial,
                };
                Ok(native.eval(var, &nctx))
            }
            RuleBody::Compiled(body) => {
                let env = RuleEnv {
                    bindings: &cand.bindings,
                    node: plan,
                    children,
                    catalog: self.est.catalog,
                    registry: self.est.registry,
                    ctx,
                    rule_wrapper,
                    partial,
                };
                match eval_program(&body.program, &env) {
                    Ok(locals) => {
                        let slot = body.output_slot(var).expect("provides_var checked");
                        Ok(locals[slot as usize].as_f64())
                    }
                    Err(_) => Ok(None),
                }
            }
        }
    }
}

/// Human-readable node description (first line of the plan display).
fn describe_node(plan: &LogicalPlan) -> String {
    disco_algebra::display::explain_logical(plan)
        .lines()
        .next()
        .unwrap_or("?")
        .to_owned()
}

/// Rule description: provenance, scope and printed head.
fn describe_rule(rule: &RegisteredRule) -> String {
    let who = match &rule.provenance {
        Provenance::Default => "default".to_owned(),
        Provenance::Local => "local".to_owned(),
        Provenance::Wrapper(w) => format!("wrapper {w}"),
    };
    format!("{who}: {}", disco_costlang::print_head(&rule.head))
}

/// Child indexes whose *cost variables* a compiled body reads.
fn children_needed(
    body: &disco_costlang::CompiledBody,
    bindings: &Bindings,
    plan: &LogicalPlan,
) -> Vec<usize> {
    let mut needed = Vec::new();
    let mut push = |i: usize| {
        if !needed.contains(&i) {
            needed.push(i);
        }
    };
    for instr in &body.program.instrs {
        let Instr::LoadPath(p) = instr else { continue };
        let path = &body.program.paths[*p as usize];
        if !matches!(path.leaf, PathLeaf::Cost(_)) {
            continue;
        }
        match &path.coll {
            CollSpec::Child(c) => push(child_slot(*c)),
            CollSpec::Binding(name) => {
                if let Some(BindingValue::Coll { child: Some(c), .. }) = bindings.get(name) {
                    push(child_slot(*c));
                }
            }
            CollSpec::Named(n) => {
                if let Some(i) = plan
                    .children()
                    .iter()
                    .position(|c| c.base_collection().is_some_and(|q| q.collection == *n))
                {
                    push(i);
                }
            }
        }
    }
    needed
}

fn child_slot(c: ChildRef) -> usize {
    match c {
        ChildRef::Input | ChildRef::Left => 0,
        ChildRef::Right => 1,
    }
}

/// Context handed to native formulas (the generic model).
pub struct NativeCtx<'a> {
    /// The node being estimated.
    pub node: &'a LogicalPlan,
    /// Costs of all children (forced before native evaluation).
    pub children: &'a [NodeCost],
    /// The mediator catalog.
    pub catalog: &'a Catalog,
    /// The rule registry (parameter lookup).
    pub registry: &'a RuleRegistry,
    /// Wrapper execution context of the node, if any.
    pub wrapper: Option<&'a str>,
    /// Variables of this node already computed.
    pub partial: &'a PartialCost,
}

impl NativeCtx<'_> {
    /// Parameter lookup: context wrapper's parameters shadow the mediator
    /// defaults — a wrapper exporting just `let IO = 12;` thereby
    /// re-calibrates the generic model for its own operations.
    pub fn param(&self, name: &str) -> Option<f64> {
        if let Some(w) = self.wrapper {
            if let Some(p) = self.registry.wrapper_params(w) {
                if let Some(v) = p.get_f64(name) {
                    return Some(v);
                }
            }
        }
        self.registry.params().get_f64(name)
    }

    /// Parameter with a hard default of 0 — for optional additive terms.
    pub fn param_or(&self, name: &str, default: f64) -> f64 {
        self.param(name).unwrap_or(default)
    }

    /// Page size in effect.
    pub fn page_size(&self) -> f64 {
        self.param("PageSize")
            .unwrap_or(crate::params::DEFAULT_PAGE_SIZE)
    }

    /// Statistics of a collection.
    pub fn stats(&self, name: &QualifiedName) -> Option<&CollectionStats> {
        self.catalog.stats(name).ok()
    }

    /// Statistics of the base collection a subtree derives from.
    pub fn base_stats(&self, plan: &LogicalPlan) -> Option<&CollectionStats> {
        plan.base_collection().and_then(|q| self.stats(q))
    }

    /// Cost of child `i`.
    pub fn child(&self, i: usize) -> NodeCost {
        self.children.get(i).copied().unwrap_or(NodeCost::ZERO)
    }
}

/// `EvalEnv` implementation backing compiled wrapper rules.
struct RuleEnv<'a> {
    bindings: &'a Bindings,
    node: &'a LogicalPlan,
    children: &'a [Option<NodeCost>],
    catalog: &'a Catalog,
    registry: &'a RuleRegistry,
    /// Wrapper execution context of the node.
    ctx: Option<&'a str>,
    /// Wrapper whose parameter namespace the rule sees.
    rule_wrapper: Option<&'a str>,
    partial: &'a PartialCost,
}

impl RuleEnv<'_> {
    fn page_size(&self) -> u64 {
        self.param_lookup("PageSize")
            .and_then(|v| v.as_f64())
            .unwrap_or(crate::params::DEFAULT_PAGE_SIZE) as u64
    }

    fn param_lookup(&self, name: &str) -> Option<Value> {
        if let Some(w) = self.rule_wrapper {
            if let Some(p) = self.registry.wrapper_params(w) {
                if let Some(v) = p.get(name) {
                    return Some(v.clone());
                }
            }
        }
        self.registry.params().get(name).cloned()
    }

    /// Resolve a collection spec to (child index, collection name).
    fn resolve_coll(&self, spec: &CollSpec) -> (Option<usize>, Option<QualifiedName>) {
        match spec {
            CollSpec::Child(c) => {
                let i = child_slot(*c);
                let coll = self
                    .node
                    .children()
                    .get(i)
                    .and_then(|p| p.base_collection())
                    .cloned();
                (Some(i), coll)
            }
            CollSpec::Binding(name) => match self.bindings.get(name) {
                Some(BindingValue::Coll { child, collection }) => {
                    (child.map(child_slot), collection.clone())
                }
                _ => (None, None),
            },
            CollSpec::Named(n) => {
                let coll = self.lookup_named(n);
                let child = self
                    .node
                    .children()
                    .iter()
                    .position(|c| c.base_collection().is_some_and(|q| q.collection == *n));
                (child, coll)
            }
        }
    }

    fn lookup_named(&self, name: &str) -> Option<QualifiedName> {
        if let Some(w) = self.ctx {
            let q = QualifiedName::new(w, name);
            if self.catalog.collection(&q).is_ok() {
                return Some(q);
            }
        }
        self.catalog.resolve(name).ok()
    }

    fn stats_for_selectivity(&self) -> Option<&CollectionStats> {
        let coll = match self.bindings.primary_coll() {
            Some(BindingValue::Coll {
                collection: Some(q),
                ..
            }) => Some(q.clone()),
            _ => self.node.base_collection().cloned(),
        }?;
        self.catalog.stats(&coll).ok()
    }
}

impl EvalEnv for RuleEnv<'_> {
    fn path(&self, coll: &CollSpec, attr: Option<&AttrSpec>, leaf: PathLeaf) -> Option<Value> {
        let (child, collection) = self.resolve_coll(coll);
        match leaf {
            PathLeaf::Cost(var) => {
                if let Some(i) = child {
                    if let Some(Some(c)) = self.children.get(i) {
                        return Some(Value::Double(c.get(var)));
                    }
                }
                // A collection term with no child (scan leaf, or a named
                // collection) still exposes its size statistics.
                let q = collection?;
                let stats = self.catalog.stats(&q).ok()?;
                match var {
                    CostVar::CountObject => Some(Value::Long(stats.extent.count_object as i64)),
                    CostVar::TotalSize => Some(Value::Long(stats.extent.total_size as i64)),
                    _ => None,
                }
            }
            PathLeaf::Stat(stat) => {
                let q = collection?;
                let stats = self.catalog.stats(&q).ok()?;
                let attr_name: Option<String> = match attr {
                    None => None,
                    Some(AttrSpec::Named(a)) => Some(a.clone()),
                    Some(AttrSpec::Binding(v)) => match self.bindings.get(v) {
                        Some(BindingValue::Attr(a)) => Some(a.clone()),
                        _ => return None,
                    },
                };
                let v = stats.stat(stat, attr_name.as_deref(), self.page_size());
                (!v.is_null()).then_some(v)
            }
        }
    }

    fn binding(&self, name: &str) -> Option<Value> {
        match self.bindings.get(name)? {
            BindingValue::Attr(a) => Some(Value::Str(a.clone())),
            BindingValue::Value(v) => Some(v.clone()),
            BindingValue::Pred(p) => Some(Value::Str(p.clone())),
            BindingValue::Coll { collection, .. } => collection
                .as_ref()
                .map(|q| Value::Str(q.collection.clone())),
        }
    }

    fn param(&self, name: &str) -> Option<Value> {
        self.param_lookup(name)
    }

    fn self_var(&self, var: CostVar) -> Option<f64> {
        self.partial.get(var)
    }

    fn call(&self, func: &str, args: &[Value]) -> Option<Value> {
        match func {
            // The Figure 8 ad-hoc selectivity function, backed by the
            // catalog (histograms when available).
            "selectivity" => {
                let [attr, value] = args else { return None };
                let attr = attr.as_str()?;
                let stats = self.stats_for_selectivity()?;
                let op = match &self.bindings.matched_pred {
                    Some(p) if p.attribute == attr => p.op,
                    _ => CompareOp::Eq,
                };
                let pred = SelectPredicate::new(attr, op, value.clone());
                Some(Value::Double(restriction_selectivity(stats, &pred)))
            }
            // Yao's formula as a convenience: yao(k, pages).
            "yao" => {
                let [k, m] = args else { return None };
                let (k, m) = (k.as_f64()?, m.as_f64()?);
                if k < 0.0 || m < 0.0 {
                    return None;
                }
                Some(Value::Double(yao_pages(
                    u64::MAX,
                    m.round() as u64,
                    k.round() as u64,
                )))
            }
            _ => None,
        }
    }
}

//! Historical costs and parameter adjustment (paper §4.3.1).
//!
//! Two complementary mechanisms:
//!
//! * [`HistoryRecorder`] — after a subquery executes, record its *real*
//!   cost as a query-scope rule matching that exact subquery ("a new
//!   formula is added after a subquery has been executed and the
//!   associated formula are now real costs, not estimates"). This is the
//!   HERMES-style cache integrated at the bottom of the scope hierarchy.
//! * [`ParamAdjuster`] — "one solution takes existing formulas and adjusts
//!   the input parameters until the formula returns a cost close to real
//!   execution the cost. Thus, we store only the adjusted parameters
//!   instead of new formulas." [`fit_param`] solves for the parameter
//!   value; [`ParamAdjuster`] smooths repeated observations.

use std::collections::BTreeMap;

use disco_algebra::{LogicalPlan, OperatorKind};
use disco_common::{DiscoError, Result, Value};
use disco_costlang::ast::{AttrTerm, CollTerm, HeadArg, PredRhs, RuleHead, Stmt};
use disco_costlang::{compile_body, CostVar, Expr};

use crate::cost::NodeCost;
use crate::registry::{Provenance, RuleRegistry};

/// Records executed subqueries as query-scope rules.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    recorded: usize,
    per_wrapper: BTreeMap<String, usize>,
}

impl HistoryRecorder {
    /// New, empty recorder.
    pub fn new() -> Self {
        HistoryRecorder::default()
    }

    /// Number of rules recorded so far.
    pub fn recorded(&self) -> usize {
        self.recorded
    }

    /// Rules recorded for one wrapper.
    pub fn recorded_for(&self, wrapper: &str) -> usize {
        self.per_wrapper.get(wrapper).copied().unwrap_or(0)
    }

    /// Per-wrapper recording counts, sorted by wrapper name.
    pub fn per_wrapper(&self) -> impl Iterator<Item = (&str, usize)> {
        self.per_wrapper.iter().map(|(w, n)| (w.as_str(), *n))
    }

    /// Record the measured cost of an executed wrapper subquery.
    ///
    /// The subquery's root operator is converted to a fully bound head
    /// (constants included → query scope) and a constant-formula body
    /// holding the real costs. Supported shapes are the ones wrappers
    /// execute: `scan(C)`, `select(C, a op v)` (single conjunct) and
    /// `join(C1, C2, a = b)`; other shapes are rejected — exactly the
    /// limitation the paper notes ("new formulas are restricted to one
    /// specific subquery").
    pub fn record(
        &mut self,
        registry: &mut RuleRegistry,
        wrapper: &str,
        plan: &LogicalPlan,
        measured: NodeCost,
    ) -> Result<usize> {
        let head = exact_head(plan)?;
        let body = constant_body(measured)?;
        let rule = disco_costlang::CompiledRule {
            head,
            body,
            declared_in: None,
        };
        let id = registry.register_compiled(Provenance::Wrapper(wrapper.to_owned()), rule)?;
        self.recorded += 1;
        *self.per_wrapper.entry(wrapper.to_owned()).or_default() += 1;
        if disco_obs::enabled() {
            disco_obs::counter(disco_obs::names::HISTORY_RECORDED, &[("wrapper", wrapper)]).inc();
        }
        Ok(id)
    }
}

/// Build a fully bound head matching exactly this subquery shape.
fn exact_head(plan: &LogicalPlan) -> Result<RuleHead> {
    match plan {
        LogicalPlan::Scan { collection, .. } => Ok(RuleHead {
            op: OperatorKind::Scan,
            args: vec![HeadArg::Coll(CollTerm::Named(
                collection.collection.clone(),
            ))],
        }),
        LogicalPlan::Select { input, predicate } => {
            let coll = input.base_collection().ok_or_else(|| {
                DiscoError::Unsupported("cannot record selection without a base collection".into())
            })?;
            let [c] = predicate.conjuncts.as_slice() else {
                return Err(DiscoError::Unsupported(
                    "historical rules cover single-conjunct selections only".into(),
                ));
            };
            Ok(RuleHead {
                op: OperatorKind::Select,
                args: vec![
                    HeadArg::Coll(CollTerm::Named(coll.collection.clone())),
                    HeadArg::Pred {
                        left: AttrTerm::Named(c.attribute.clone()),
                        op: c.op,
                        right: PredRhs::Const(c.value.clone()),
                    },
                ],
            })
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
            ..
        } => {
            let (lc, rc) = match (left.base_collection(), right.base_collection()) {
                (Some(l), Some(r)) => (l, r),
                _ => {
                    return Err(DiscoError::Unsupported(
                        "cannot record join without base collections".into(),
                    ))
                }
            };
            Ok(RuleHead {
                op: OperatorKind::Join,
                args: vec![
                    HeadArg::Coll(CollTerm::Named(lc.collection.clone())),
                    HeadArg::Coll(CollTerm::Named(rc.collection.clone())),
                    HeadArg::Pred {
                        left: AttrTerm::Named(predicate.left_attr.clone()),
                        op: predicate.op,
                        right: PredRhs::Ident(predicate.right_attr.clone()),
                    },
                ],
            })
        }
        // Submit wrappers and final projections are cost-transparent for
        // recording purposes: the head matches the operator that did the
        // work.
        LogicalPlan::Submit { input, .. } | LogicalPlan::Project { input, .. } => exact_head(input),
        other => Err(DiscoError::Unsupported(format!(
            "historical recording does not support `{}` roots",
            other.kind()
        ))),
    }
}

/// A body assigning the measured constants to every variable.
fn constant_body(measured: NodeCost) -> Result<disco_costlang::CompiledBody> {
    let stmts: Vec<Stmt> = CostVar::ALL
        .iter()
        .map(|v| Stmt::Assign {
            var: *v,
            expr: Expr::Num(measured.get(*v)),
        })
        .collect();
    compile_body(&stmts, &Default::default())
}

/// Fit a parameter value so that `estimate_fn(param) ≈ observed`.
///
/// `estimate_fn` re-runs the existing cost formula with a trial parameter
/// value; the solver assumes the estimate is monotone in the parameter
/// (true for the linear coefficients of the calibration model) and
/// bisects on `[lo, hi]`.
pub fn fit_param(estimate_fn: impl Fn(f64) -> f64, observed: f64, lo: f64, hi: f64) -> Option<f64> {
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return None;
    }
    let (flo, fhi) = (estimate_fn(lo), estimate_fn(hi));
    let increasing = fhi >= flo;
    // Observed outside the bracket: clamp to the nearest bound.
    if increasing && observed <= flo || !increasing && observed >= flo {
        return Some(lo);
    }
    if increasing && observed >= fhi || !increasing && observed <= fhi {
        return Some(hi);
    }
    let (mut a, mut b) = (lo, hi);
    for _ in 0..64 {
        let mid = 0.5 * (a + b);
        let fm = estimate_fn(mid);
        let go_right = if increasing {
            fm < observed
        } else {
            fm > observed
        };
        if go_right {
            a = mid;
        } else {
            b = mid;
        }
    }
    Some(0.5 * (a + b))
}

/// Smooths repeated (estimated, observed) pairs into a multiplicative
/// correction, and can push a fitted value into a wrapper parameter.
#[derive(Debug, Clone)]
pub struct ParamAdjuster {
    /// EWMA smoothing weight for new observations.
    pub alpha: f64,
    factor: f64,
    observations: usize,
}

impl Default for ParamAdjuster {
    fn default() -> Self {
        ParamAdjuster {
            alpha: 0.3,
            factor: 1.0,
            observations: 0,
        }
    }
}

impl ParamAdjuster {
    /// New adjuster with the default smoothing.
    pub fn new() -> Self {
        ParamAdjuster::default()
    }

    /// Feed one (estimated, observed) total-time pair.
    pub fn observe(&mut self, estimated: f64, observed: f64) {
        if estimated <= 0.0 || observed <= 0.0 {
            return;
        }
        let ratio = observed / estimated;
        self.factor = if self.observations == 0 {
            ratio
        } else {
            (1.0 - self.alpha) * self.factor + self.alpha * ratio
        };
        self.observations += 1;
    }

    /// Current multiplicative correction (`observed / estimated`, smoothed).
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Number of observations folded in.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Apply the correction to an estimate.
    pub fn adjusted(&self, estimate: f64) -> f64 {
        estimate * self.factor
    }

    /// Store a fitted parameter value in a wrapper's parameter table, so
    /// every formula reading it is "simultaneously adjusted" (§4.3.1).
    pub fn store_param(registry: &mut RuleRegistry, wrapper: &str, param: &str, value: f64) {
        registry
            .wrapper_params_mut(wrapper)
            .set(param, Value::Double(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{CompareOp, PlanBuilder};
    use disco_common::{AttributeDef, DataType, QualifiedName, Schema};

    fn emp() -> PlanBuilder {
        PlanBuilder::scan(
            QualifiedName::new("hr", "Employee"),
            Schema::new(vec![AttributeDef::new("salary", DataType::Long)]),
        )
    }

    fn measured() -> NodeCost {
        NodeCost {
            time_first: 10.0,
            time_next: 1.0,
            total_time: 1234.0,
            count_object: 50.0,
            total_size: 5000.0,
        }
    }

    #[test]
    fn record_select_creates_query_scope_rule() {
        let mut reg = RuleRegistry::empty();
        let mut rec = HistoryRecorder::new();
        let plan = emp().select("salary", CompareOp::Eq, 77i64).build();
        let id = rec.record(&mut reg, "hr", &plan, measured()).unwrap();
        let rule = reg.rule(id).unwrap();
        assert_eq!(rule.scope, crate::scope::Scope::Query);
        assert_eq!(rec.recorded(), 1);
        // The recorded rule matches the same plan…
        assert!(crate::pattern::match_head(&rule.head, &plan, None).is_some());
        // …but not a perturbed one.
        let other = emp().select("salary", CompareOp::Eq, 78i64).build();
        assert!(crate::pattern::match_head(&rule.head, &other, None).is_none());
    }

    #[test]
    fn record_scan_and_join() {
        let mut reg = RuleRegistry::empty();
        let mut rec = HistoryRecorder::new();
        rec.record(&mut reg, "hr", &emp().build(), measured())
            .unwrap();
        let join = emp().join(emp(), "salary", "salary").build();
        rec.record(&mut reg, "hr", &join, measured()).unwrap();
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn per_wrapper_counts_track_recordings() {
        let mut reg = RuleRegistry::empty();
        let mut rec = HistoryRecorder::new();
        rec.record(&mut reg, "hr", &emp().build(), measured())
            .unwrap();
        let sel = emp().select("salary", CompareOp::Eq, 1i64).build();
        rec.record(&mut reg, "hr", &sel, measured()).unwrap();
        let join = emp().join(emp(), "salary", "salary").build();
        rec.record(&mut reg, "files", &join, measured()).unwrap();
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.recorded_for("hr"), 2);
        assert_eq!(rec.recorded_for("files"), 1);
        assert_eq!(rec.recorded_for("web"), 0);
        let all: Vec<_> = rec.per_wrapper().collect();
        assert_eq!(all, vec![("files", 1), ("hr", 2)]);
    }

    #[test]
    fn unsupported_shapes_rejected() {
        let mut reg = RuleRegistry::empty();
        let mut rec = HistoryRecorder::new();
        let multi = emp()
            .select_pred(disco_algebra::Predicate::all(vec![
                disco_algebra::SelectPredicate::new("salary", CompareOp::Gt, 1i64.into()),
                disco_algebra::SelectPredicate::new("salary", CompareOp::Lt, 9i64.into()),
            ]))
            .build();
        assert!(rec.record(&mut reg, "hr", &multi, measured()).is_err());
        let sort = emp().sort_asc(&["salary"]).build();
        assert!(rec.record(&mut reg, "hr", &sort, measured()).is_err());
    }

    #[test]
    fn submit_unwraps_to_payload() {
        let mut reg = RuleRegistry::empty();
        let mut rec = HistoryRecorder::new();
        let plan = emp()
            .select("salary", CompareOp::Eq, 1i64)
            .submit("hr")
            .build();
        let id = rec.record(&mut reg, "hr", &plan, measured()).unwrap();
        assert_eq!(reg.rule(id).unwrap().head.op, OperatorKind::Select);
    }

    #[test]
    fn fit_param_recovers_linear_coefficient() {
        // estimate(p) = 1000 * p + 500; observed with true p = 25.
        let f = |p: f64| 1000.0 * p + 500.0;
        let p = fit_param(f, f(25.0), 0.0, 1000.0).unwrap();
        assert!((p - 25.0).abs() < 1e-6, "p={p}");
    }

    #[test]
    fn fit_param_clamps_out_of_range() {
        let f = |p: f64| p;
        assert_eq!(fit_param(f, -5.0, 0.0, 10.0), Some(0.0));
        assert_eq!(fit_param(f, 50.0, 0.0, 10.0), Some(10.0));
        assert_eq!(fit_param(f, 5.0, 10.0, 0.0), None);
    }

    #[test]
    fn fit_param_handles_decreasing() {
        let f = |p: f64| 100.0 - p;
        let p = fit_param(f, 40.0, 0.0, 100.0).unwrap();
        assert!((p - 60.0).abs() < 1e-6);
    }

    #[test]
    fn adjuster_converges_to_ratio() {
        let mut a = ParamAdjuster::new();
        for _ in 0..50 {
            a.observe(100.0, 250.0);
        }
        assert!((a.factor() - 2.5).abs() < 1e-6);
        assert!((a.adjusted(40.0) - 100.0).abs() < 1e-6);
        assert_eq!(a.observations(), 50);
    }

    #[test]
    fn adjuster_ignores_degenerate_pairs() {
        let mut a = ParamAdjuster::new();
        a.observe(0.0, 10.0);
        a.observe(10.0, 0.0);
        assert_eq!(a.factor(), 1.0);
        assert_eq!(a.observations(), 0);
    }

    #[test]
    fn store_param_lands_in_wrapper_namespace() {
        let mut reg = RuleRegistry::empty();
        ParamAdjuster::store_param(&mut reg, "hr", "IO", 42.0);
        assert_eq!(reg.wrapper_params("hr").unwrap().get_f64("IO"), Some(42.0));
    }
}

//! The DISCO extensible cost model (the paper's primary contribution).
//!
//! The mediator owns a generic cost model; wrappers override parts of it
//! with rules shipped at registration time. Rules live in a specialization
//! hierarchy of *scopes* (Figure 10); estimating a plan is a two-phase tree
//! traversal that associates the most specific applicable formula with each
//! node and result variable, then evaluates bottom-up (Figure 11).
//!
//! Modules:
//!
//! * [`cost`] — the per-node cost record (`TimeFirst`, `TimeNext`,
//!   `TotalTime`, `CountObject`, `TotalSize`);
//! * [`scope`] — the scope lattice and rule specificity;
//! * [`pattern`] — unification of rule heads against plan nodes;
//! * [`rules`] — registered rules: compiled wrapper formulas or native
//!   (Rust) formulas;
//! * [`registry`] — the rule store indexed for fast candidate lookup;
//! * [`params`] — calibration parameters (`IO`, `Output`, `PageSize`, …);
//! * [`generic`] — the mediator's built-in generic cost model (§2.3),
//!   calibration-style formulas for every operator;
//! * [`yao`] — Yao's page-access formula \[Yao77\] used by the improved
//!   index-scan rule of §5;
//! * [`estimator`] — the two-phase estimation algorithm with per-variable
//!   fallback, min-combination, required-variable cut-off and
//!   branch-and-bound cost limits;
//! * [`cache`] — the subplan cost memo and rule-resolution cache shared
//!   across all candidate estimations of one optimization run;
//! * [`historical`] — the §4.3.1 extensions: query-scope rules recorded
//!   from executed subqueries, and parameter adjustment.

pub mod cache;
pub mod cost;
pub mod estimator;
pub mod explain;
pub mod generic;
pub mod historical;
pub mod params;
pub mod pattern;
pub mod registry;
pub mod rules;
pub mod scope;
pub mod yao;

pub use cache::EstimatorCache;
pub use cost::NodeCost;
pub use disco_costlang::CostVar;
pub use estimator::{CardinalityOverrides, EstimateOptions, EstimateReport, Estimator};
pub use explain::{relative_error, AnalyzeNode, Attribution, ExplainNode, Measured, MeasuredNode};
pub use historical::{fit_param, HistoryRecorder, ParamAdjuster};
pub use params::Params;
pub use pattern::{BindingValue, Bindings};
pub use registry::{Provenance, RuleRegistry};
pub use rules::{NativeFormula, RegisteredRule, RuleBody};
pub use scope::{derive_scope, specificity, Scope};
pub use yao::yao_pages;

//! The rule registry: the mediator's blended cost model store.
//!
//! "Specific cost information are imported from a wrapper to the mediator
//! when a data source is registered. Then, during query processing, some
//! standard cost computation functions of the mediator are overridden by
//! the imported cost functions for the given data source."
//!
//! Rules are indexed by operator kind and kept sorted most-specific-first
//! (the paper implements "our own efficient [overriding mechanism] based on
//! kind of virtual tables"; the per-operator sorted index plays that role).

use std::collections::HashMap;
use std::sync::Arc;

use disco_algebra::OperatorKind;
use disco_common::{DiscoError, Result};
use disco_costlang::ast::RuleHead;
use disco_costlang::{CompiledDocument, CompiledRule};

use crate::params::Params;
use crate::rules::{NativeFormula, RegisteredRule, RuleBody};
use crate::scope::{derive_scope, specificity, Scope};

/// Who a rule came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// The mediator's generic model — applies everywhere.
    Default,
    /// The mediator's own physical operators — applies outside any wrapper.
    Local,
    /// A registered wrapper — applies to nodes executing at that wrapper.
    Wrapper(String),
}

/// The rule store.
#[derive(Debug, Clone, Default)]
pub struct RuleRegistry {
    rules: Vec<Option<RegisteredRule>>,
    by_op: HashMap<OperatorKind, Vec<usize>>,
    global_params: Params,
    wrapper_params: HashMap<String, Params>,
    next_seq: usize,
}

impl RuleRegistry {
    /// An empty registry — no default model. Used by tests; real setups
    /// want [`RuleRegistry::with_default_model`].
    pub fn empty() -> Self {
        RuleRegistry {
            global_params: Params::mediator_defaults(),
            ..Default::default()
        }
    }

    /// Registry with the mediator's generic cost model installed
    /// (default-scope rules for every operator and variable, §4.1: "The
    /// default-scope … contains a rule for all variables and operators").
    pub fn with_default_model() -> Self {
        let mut r = RuleRegistry::empty();
        crate::generic::install_default_model(&mut r);
        r
    }

    /// Global (mediator) parameters.
    pub fn params(&self) -> &Params {
        &self.global_params
    }

    /// Mutable access to the global parameters (calibration adjustments).
    pub fn params_mut(&mut self) -> &mut Params {
        &mut self.global_params
    }

    /// Parameters a given wrapper registered.
    pub fn wrapper_params(&self, wrapper: &str) -> Option<&Params> {
        self.wrapper_params.get(wrapper)
    }

    /// Mutable wrapper parameters (the §4.3.1 parameter-adjustment path).
    pub fn wrapper_params_mut(&mut self, wrapper: &str) -> &mut Params {
        self.wrapper_params.entry(wrapper.to_owned()).or_default()
    }

    /// Install everything a compiled registration document exports:
    /// wrapper parameters and cost rules. Statistics/schemas are the
    /// catalog's business and are returned by the caller's compilation
    /// step.
    pub fn register_document(&mut self, wrapper: &str, doc: &CompiledDocument) -> Result<()> {
        self.wrapper_params
            .entry(wrapper.to_owned())
            .or_default()
            .extend_from(&doc.params);
        for rule in &doc.rules {
            self.register_compiled(Provenance::Wrapper(wrapper.to_owned()), rule.clone())?;
        }
        Ok(())
    }

    /// Register one compiled rule. Scope and specificity derive from the
    /// head shape (and enclosing interface); `Default`/`Local` provenance
    /// forces the corresponding scope.
    pub fn register_compiled(
        &mut self,
        provenance: Provenance,
        rule: CompiledRule,
    ) -> Result<usize> {
        let scope = match &provenance {
            Provenance::Default => Scope::Default,
            Provenance::Local => Scope::Local,
            Provenance::Wrapper(_) => derive_scope(&rule.head, rule.declared_in.as_deref()),
        };
        let spec = specificity(&rule.head, rule.declared_in.as_deref());
        self.insert(RegisteredRule {
            id: 0,
            provenance,
            scope,
            specificity: spec,
            seq: 0,
            head: rule.head,
            declared_in: rule.declared_in,
            body: RuleBody::Compiled(rule.body),
        })
    }

    /// Register a native rule with an explicit scope.
    pub fn register_native(
        &mut self,
        provenance: Provenance,
        scope: Scope,
        head: RuleHead,
        native: Arc<dyn NativeFormula>,
    ) -> Result<usize> {
        let spec = specificity(&head, None);
        self.insert(RegisteredRule {
            id: 0,
            provenance,
            scope,
            specificity: spec,
            seq: 0,
            head,
            declared_in: None,
            body: RuleBody::Native(native),
        })
    }

    fn insert(&mut self, mut rule: RegisteredRule) -> Result<usize> {
        if rule.head.args.is_empty() {
            return Err(DiscoError::Cost("rule head has no arguments".into()));
        }
        let id = self.rules.len();
        rule.id = id;
        rule.seq = self.next_seq;
        self.next_seq += 1;
        let op = rule.head.op;
        self.rules.push(Some(rule));
        let ids = self.by_op.entry(op).or_default();
        ids.push(id);
        // Keep most-specific-first order; ties by declaration order.
        let rules = &self.rules;
        ids.sort_by_key(|&i| rules[i].as_ref().expect("live rule").rank());
        Ok(id)
    }

    /// Remove all rules and parameters of a wrapper (re-registration,
    /// §2.1's administrative interface).
    pub fn remove_wrapper(&mut self, wrapper: &str) {
        let target = Provenance::Wrapper(wrapper.to_owned());
        for slot in &mut self.rules {
            if slot.as_ref().is_some_and(|r| r.provenance == target) {
                *slot = None;
            }
        }
        for ids in self.by_op.values_mut() {
            ids.retain(|&i| self.rules[i].is_some());
        }
        self.wrapper_params.remove(wrapper);
    }

    /// Candidate rules for an operator kind, most specific first.
    pub fn candidates(&self, op: OperatorKind) -> impl Iterator<Item = &RegisteredRule> {
        self.by_op
            .get(&op)
            .into_iter()
            .flatten()
            .filter_map(|&i| self.rules[i].as_ref())
    }

    /// A rule by id (if still installed).
    pub fn rule(&self, id: usize) -> Option<&RegisteredRule> {
        self.rules.get(id).and_then(|r| r.as_ref())
    }

    /// Number of live rules.
    pub fn len(&self) -> usize {
        self.rules.iter().filter(|r| r.is_some()).count()
    }

    /// `true` when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of live rules per scope (diagnostics, experiments).
    pub fn count_in_scope(&self, scope: Scope) -> usize {
        self.rules
            .iter()
            .filter(|r| r.as_ref().is_some_and(|r| r.scope == scope))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_costlang::{compile_document, parse_document};

    fn doc(src: &str) -> CompiledDocument {
        compile_document(&parse_document(src).unwrap()).unwrap()
    }

    #[test]
    fn registration_sorts_by_specificity() {
        let mut reg = RuleRegistry::empty();
        reg.register_document(
            "w",
            &doc(r#"
                rule select($C, $P) { TotalTime = 1; }
                rule select(Employee, salary = 77) { TotalTime = 2; }
                rule select(Employee, $P) { TotalTime = 3; }
                rule select(Employee, salary = $V) { TotalTime = 4; }
            "#),
        )
        .unwrap();
        let scopes: Vec<Scope> = reg
            .candidates(OperatorKind::Select)
            .map(|r| r.scope)
            .collect();
        assert_eq!(
            scopes,
            vec![
                Scope::Query,
                Scope::Predicate,
                Scope::Collection,
                Scope::Wrapper
            ]
        );
    }

    #[test]
    fn declaration_order_breaks_ties() {
        let mut reg = RuleRegistry::empty();
        reg.register_document(
            "w",
            &doc(r#"
                rule select(Employee, $P) { TotalTime = 1; }
                rule select(Manager, $P) { TotalTime = 2; }
            "#),
        )
        .unwrap();
        let seqs: Vec<usize> = reg
            .candidates(OperatorKind::Select)
            .map(|r| r.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn wrapper_params_installed() {
        let mut reg = RuleRegistry::empty();
        reg.register_document("w", &doc("let IO = 7;")).unwrap();
        assert_eq!(reg.wrapper_params("w").unwrap().get_f64("IO"), Some(7.0));
        assert!(reg.wrapper_params("other").is_none());
    }

    #[test]
    fn remove_wrapper_clears_rules_and_params() {
        let mut reg = RuleRegistry::empty();
        reg.register_document("a", &doc("let X = 1; rule scan($C) { TotalTime = 1; }"))
            .unwrap();
        reg.register_document("b", &doc("rule scan($C) { TotalTime = 2; }"))
            .unwrap();
        assert_eq!(reg.len(), 2);
        reg.remove_wrapper("a");
        assert_eq!(reg.len(), 1);
        assert!(reg.wrapper_params("a").is_none());
        assert_eq!(reg.candidates(OperatorKind::Scan).count(), 1);
    }

    #[test]
    fn default_model_provides_every_operator() {
        let reg = RuleRegistry::with_default_model();
        for op in OperatorKind::ALL {
            let rules: Vec<_> = reg.candidates(op).collect();
            assert!(!rules.is_empty(), "no default rule for {op}");
            assert!(rules.iter().any(|r| r.scope == Scope::Default));
            // The default rule must provide every variable.
            let default = rules.iter().find(|r| r.scope == Scope::Default).unwrap();
            for v in disco_costlang::CostVar::ALL {
                assert!(default.provides_var(v), "{op} default lacks {v}");
            }
        }
    }

    #[test]
    fn interface_nested_rules_are_collection_scope() {
        let mut reg = RuleRegistry::empty();
        reg.register_document(
            "w",
            &doc(r#"interface Employee {
                attribute long salary;
                rule scan($C) { TotalTime = 1; }
            }"#),
        )
        .unwrap();
        let r = reg.candidates(OperatorKind::Scan).next().unwrap();
        assert_eq!(r.scope, Scope::Collection);
        assert_eq!(r.declared_in.as_deref(), Some("Employee"));
    }
}

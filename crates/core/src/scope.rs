//! The scope specialization hierarchy (paper §4.1, Figure 10).
//!
//! Rules are grouped by applicability domain. From least to most specific:
//!
//! * **Default** — the mediator's generic model; "contains a rule for all
//!   variables and operators", guaranteeing estimation always succeeds;
//! * **Local** — the mediator's own physical operators (footnote 1);
//! * **Wrapper** — operator-oriented rules of one wrapper, any collection;
//! * **Collection** — rules for a specific collection, any predicate;
//! * **Predicate** — specific collection *and* attribute;
//! * **Query** — exact subqueries (constants bound): hand-written
//!   query-specific rules or recorded historical costs (§4.3.1).
//!
//! Within a scope, rules with more bound parameters win (§3.3.2: "we
//! select the most specific rule, with more bound parameters"); remaining
//! ties go to declaration order.

use disco_costlang::ast::{CollTerm, HeadArg, PredRhs, RuleHead};
use disco_costlang::AttrTerm;

/// Applicability domain of a rule. Ordered: later variants are more
/// specific and are matched first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    Default,
    Local,
    Wrapper,
    Collection,
    Predicate,
    Query,
}

impl Scope {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scope::Default => "default",
            Scope::Local => "local",
            Scope::Wrapper => "wrapper",
            Scope::Collection => "collection",
            Scope::Predicate => "predicate",
            Scope::Query => "query",
        }
    }
}

/// Number of bound (literal) parameters in a head — the within-scope
/// specificity refinement.
///
/// `select(R, P)` scores 0, `select(Employee, P)` 1,
/// `select(Employee, salary = $V)` 2, `select(Employee, salary = 77)` 3,
/// `join(Employee, Book, id = id)` 4 — reproducing the matching-order
/// example of §4.1.
pub fn specificity(head: &RuleHead, declared_in: Option<&str>) -> u32 {
    let mut n = 0;
    let mut coll_seen = false;
    for arg in &head.args {
        match arg {
            HeadArg::Coll(CollTerm::Named(_)) => {
                n += 1;
                coll_seen = true;
            }
            HeadArg::Coll(CollTerm::Var(_)) => {}
            HeadArg::Pred { left, right, .. } => {
                if matches!(left, AttrTerm::Named(_)) {
                    n += 1;
                }
                match right {
                    PredRhs::Const(_) | PredRhs::Ident(_) => n += 1,
                    PredRhs::Var(_) => {}
                }
            }
            HeadArg::AnyPred(_) => {}
            HeadArg::Attr(AttrTerm::Named(_)) => n += 1,
            HeadArg::Attr(AttrTerm::Var(_)) => {}
            HeadArg::AttrList(_) => n += 1,
        }
    }
    // A rule declared inside an interface is implicitly bound to that
    // collection even when its head uses a variable.
    if declared_in.is_some() && !coll_seen {
        n += 1;
    }
    n
}

/// Derive the scope of a wrapper-exported rule from its head shape.
///
/// The strongest bound dimension decides: a bound constant makes a
/// query-scope rule, a bound attribute a predicate-scope rule, a bound
/// collection (explicitly or via the enclosing interface) a
/// collection-scope rule; otherwise the rule is wrapper-scope.
pub fn derive_scope(head: &RuleHead, declared_in: Option<&str>) -> Scope {
    let mut coll = declared_in.is_some();
    let mut attr = false;
    let mut value = false;
    for arg in &head.args {
        match arg {
            HeadArg::Coll(CollTerm::Named(_)) => coll = true,
            HeadArg::Coll(CollTerm::Var(_)) => {}
            HeadArg::Pred { left, right, .. } => {
                if matches!(left, AttrTerm::Named(_)) {
                    attr = true;
                }
                match right {
                    PredRhs::Const(_) => value = true,
                    // A literal rhs in a join head is an attribute name.
                    PredRhs::Ident(_) => attr = true,
                    PredRhs::Var(_) => {}
                }
            }
            HeadArg::Attr(AttrTerm::Named(_)) => attr = true,
            HeadArg::AttrList(_) => attr = true,
            HeadArg::AnyPred(_) | HeadArg::Attr(AttrTerm::Var(_)) => {}
        }
    }
    if value {
        Scope::Query
    } else if attr {
        Scope::Predicate
    } else if coll {
        Scope::Collection
    } else {
        Scope::Wrapper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_costlang::parse_document;

    fn head(src: &str) -> RuleHead {
        let doc = parse_document(&format!("rule {src} {{ TotalTime = 1; }}")).unwrap();
        doc.rules[0].head.clone()
    }

    #[test]
    fn scope_ordering_matches_figure_10() {
        assert!(Scope::Default < Scope::Wrapper);
        assert!(Scope::Wrapper < Scope::Collection);
        assert!(Scope::Collection < Scope::Predicate);
        assert!(Scope::Predicate < Scope::Query);
        assert!(Scope::Default < Scope::Local);
    }

    #[test]
    fn specificity_reproduces_section_4_1_example() {
        let ranks = [
            specificity(&head("select($R, $P)"), None),
            specificity(&head("select(Employee, $P)"), None),
            specificity(&head("select(Employee, salary = $A)"), None),
            specificity(&head("select(Employee, salary = 77)"), None),
        ];
        assert!(ranks.windows(2).all(|w| w[0] < w[1]), "{ranks:?}");

        let joins = [
            specificity(&head("join($R1, $R2, $P)"), None),
            specificity(&head("join(Employee, Book, $P)"), None),
            specificity(&head("join(Employee, Book, id = id)"), None),
        ];
        assert!(joins.windows(2).all(|w| w[0] < w[1]), "{joins:?}");
    }

    #[test]
    fn scope_derivation() {
        assert_eq!(derive_scope(&head("select($C, $P)"), None), Scope::Wrapper);
        assert_eq!(
            derive_scope(&head("select(Employee, $P)"), None),
            Scope::Collection
        );
        assert_eq!(
            derive_scope(&head("select(Employee, salary = $V)"), None),
            Scope::Predicate
        );
        assert_eq!(
            derive_scope(&head("select(Employee, salary = 77)"), None),
            Scope::Query
        );
        assert_eq!(derive_scope(&head("scan($C)"), None), Scope::Wrapper);
        assert_eq!(
            derive_scope(&head("scan(Employee)"), None),
            Scope::Collection
        );
        assert_eq!(
            derive_scope(&head("join($R1, $R2, id = id)"), None),
            Scope::Predicate
        );
    }

    #[test]
    fn interface_rules_are_collection_scope() {
        assert_eq!(
            derive_scope(&head("scan($C)"), Some("Employee")),
            Scope::Collection
        );
        assert_eq!(specificity(&head("scan($C)"), Some("Employee")), 1);
        // Explicitly named collection doesn't double count.
        assert_eq!(specificity(&head("scan(Employee)"), Some("Employee")), 1);
    }
}

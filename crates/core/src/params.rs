//! Calibration parameters.
//!
//! The generic cost model's coefficients — what the calibration approach
//! of \[DKS92\]/\[GST96\] estimates per class of system. Wrapper registration
//! documents may override or extend them with `let` definitions; the
//! estimator looks parameters up wrapper-first, then in these mediator
//! globals.
//!
//! Units: times in milliseconds, sizes in bytes.

use disco_common::Value;

/// An ordered name → value table with latest-wins semantics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Params {
    entries: Vec<(String, Value)>,
}

/// The paper's measured ObjectStore constants (§5): 25 ms per page read,
/// 9 ms to process/deliver one object.
pub const DEFAULT_IO_MS: f64 = 25.0;
/// See [`DEFAULT_IO_MS`].
pub const DEFAULT_OUTPUT_MS: f64 = 9.0;
/// Page size used in the OO7 experiment.
pub const DEFAULT_PAGE_SIZE: f64 = 4096.0;

impl Params {
    /// Empty table.
    pub fn new() -> Self {
        Params::default()
    }

    /// The mediator's default calibration constants.
    ///
    /// `IO`/`Output`/`PageSize` are the paper's §5 values; the remaining
    /// coefficients are this implementation's calibration of its own
    /// simulated substrate (documented in DESIGN.md).
    pub fn mediator_defaults() -> Self {
        let mut p = Params::new();
        p.set("PageSize", Value::Double(DEFAULT_PAGE_SIZE));
        p.set("IO", Value::Double(DEFAULT_IO_MS));
        p.set("Output", Value::Double(DEFAULT_OUTPUT_MS));
        // Query start-up overhead (the `120` of Figure 8).
        p.set("Overhead", Value::Double(120.0));
        // CPU per predicate evaluation / hash operation on one object.
        p.set("CpuPred", Value::Double(0.05));
        p.set("CpuScan", Value::Double(0.01));
        p.set("CpuHash", Value::Double(0.02));
        // Sort cost factor: SortFactor * n * log2(n).
        p.set("SortFactor", Value::Double(0.02));
        // Index probe CPU (tree descent, leaf search).
        p.set("IdxProbe", Value::Double(2.0));
        // Uniform communication model (§2.3 assumes uniform costs).
        p.set("MsgLatency", Value::Double(100.0));
        p.set("PerByte", Value::Double(0.001));
        // Default duplicate-elimination survival ratio.
        p.set("DedupSel", Value::Double(0.5));
        p
    }

    /// Set (or override) a parameter.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.entries.push((name.into(), value));
    }

    /// Latest value for `name`.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Numeric view of a parameter.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// Extend with `(name, value)` pairs (e.g. a wrapper's `let` results).
    pub fn extend_from(&mut self, pairs: &[(String, Value)]) {
        for (n, v) in pairs {
            self.set(n.clone(), v.clone());
        }
    }

    /// Number of entries (including shadowed ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no parameters are defined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_wins() {
        let mut p = Params::new();
        p.set("IO", Value::Double(25.0));
        p.set("IO", Value::Double(10.0));
        assert_eq!(p.get_f64("IO"), Some(10.0));
    }

    #[test]
    fn defaults_present() {
        let p = Params::mediator_defaults();
        assert_eq!(p.get_f64("IO"), Some(25.0));
        assert_eq!(p.get_f64("Output"), Some(9.0));
        assert_eq!(p.get_f64("PageSize"), Some(4096.0));
        assert!(p.get_f64("Nothing").is_none());
    }

    #[test]
    fn extend_from_pairs() {
        let mut p = Params::mediator_defaults();
        p.extend_from(&[("IO".into(), Value::Double(5.0))]);
        assert_eq!(p.get_f64("IO"), Some(5.0));
    }
}

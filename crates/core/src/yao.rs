//! Yao's page-access formula \[Yao77\].
//!
//! Given `n` objects uniformly distributed over `m` pages, an index scan
//! fetching `k` qualifying objects touches, in expectation, a number of
//! distinct pages given by Yao's formula. The paper (§5) uses the
//! exponential approximation `m * (1 - exp(-k/m))` in the improved cost
//! rule of Figure 13; we provide both forms.

/// Exact Yao formula: expected distinct pages touched when fetching `k`
/// of `n` objects spread evenly over `m` pages.
///
/// `m * (1 - Π_{i=0}^{k-1} (n - n/m - i) / (n - i))`.
pub fn yao_pages_exact(n: u64, m: u64, k: u64) -> f64 {
    if m == 0 || n == 0 || k == 0 {
        return 0.0;
    }
    if k >= n {
        return m as f64;
    }
    let n = n as f64;
    let m_f = m as f64;
    let per_page = n / m_f;
    let mut prod = 1.0f64;
    for i in 0..k {
        let i = i as f64;
        let num = n - per_page - i;
        let den = n - i;
        if num <= 0.0 || den <= 0.0 {
            prod = 0.0;
            break;
        }
        prod *= num / den;
        if prod < 1e-12 {
            prod = 0.0;
            break;
        }
    }
    m_f * (1.0 - prod)
}

/// The paper's exponential approximation (Figure 13):
/// `m * (1 - exp(-k / m))`.
pub fn yao_pages(n: u64, m: u64, k: u64) -> f64 {
    let _ = n; // the approximation only depends on k and m
    if m == 0 || k == 0 {
        return 0.0;
    }
    let m_f = m as f64;
    m_f * (1.0 - (-(k as f64) / m_f).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_cases() {
        assert_eq!(yao_pages(100, 10, 0), 0.0);
        assert_eq!(yao_pages(100, 0, 5), 0.0);
        assert_eq!(yao_pages_exact(100, 10, 0), 0.0);
        assert_eq!(yao_pages_exact(0, 10, 5), 0.0);
        assert_eq!(yao_pages_exact(100, 10, 100), 10.0);
    }

    #[test]
    fn bounded_by_page_count_and_k() {
        for k in [1u64, 10, 100, 1000, 70_000] {
            let p = yao_pages_exact(70_000, 1_000, k);
            assert!(p <= 1_000.0 + 1e-9, "k={k} p={p}");
            assert!(p <= k as f64 + 1e-9 || k as f64 > 1_000.0, "k={k} p={p}");
            let a = yao_pages(70_000, 1_000, k);
            assert!(a <= 1_000.0 + 1e-9);
        }
    }

    #[test]
    fn monotone_in_k() {
        let mut prev = 0.0;
        for k in (0..=70_000).step_by(700) {
            let p = yao_pages_exact(70_000, 1_000, k as u64);
            assert!(p >= prev - 1e-9, "k={k}");
            prev = p;
        }
    }

    #[test]
    fn approximation_tracks_exact_within_percent() {
        // The OO7 parameters of §5: n = 70000, m = 1000 (70 objects/page).
        for k in [700u64, 7_000, 21_000, 49_000] {
            let exact = yao_pages_exact(70_000, 1_000, k);
            let approx = yao_pages(70_000, 1_000, k);
            let rel = (exact - approx).abs() / exact;
            assert!(rel < 0.02, "k={k} exact={exact} approx={approx} rel={rel}");
        }
    }

    #[test]
    fn single_object_touches_one_page() {
        let p = yao_pages_exact(70_000, 1_000, 1);
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn saturates_near_full_selectivity() {
        // Fetching half the objects already touches ~all pages at 70/page.
        let p = yao_pages_exact(70_000, 1_000, 35_000);
        assert!(p > 999.9, "p={p}");
    }
}

//! The per-node cost record.

use std::fmt;

use disco_costlang::CostVar;

/// Estimated (or measured) cost of one plan node.
///
/// Times are in **milliseconds** (the paper's unit); `count_object` and
/// `total_size` describe the node's output (objects and bytes).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeCost {
    /// Response time to the first tuple.
    pub time_first: f64,
    /// Average time per subsequent tuple.
    pub time_next: f64,
    /// Total work to produce all tuples.
    pub total_time: f64,
    /// Output cardinality.
    pub count_object: f64,
    /// Output size in bytes.
    pub total_size: f64,
}

impl NodeCost {
    /// The zero cost.
    pub const ZERO: NodeCost = NodeCost {
        time_first: 0.0,
        time_next: 0.0,
        total_time: 0.0,
        count_object: 0.0,
        total_size: 0.0,
    };

    /// Read a variable.
    pub fn get(&self, var: CostVar) -> f64 {
        match var {
            CostVar::TimeFirst => self.time_first,
            CostVar::TimeNext => self.time_next,
            CostVar::TotalTime => self.total_time,
            CostVar::CountObject => self.count_object,
            CostVar::TotalSize => self.total_size,
        }
    }

    /// Write a variable.
    pub fn set(&mut self, var: CostVar, value: f64) {
        match var {
            CostVar::TimeFirst => self.time_first = value,
            CostVar::TimeNext => self.time_next = value,
            CostVar::TotalTime => self.total_time = value,
            CostVar::CountObject => self.count_object = value,
            CostVar::TotalSize => self.total_size = value,
        }
    }
}

impl fmt::Display for NodeCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1}ms (first {:.1}ms, next {:.3}ms) -> {:.0} objects / {:.0} bytes",
            self.total_time, self.time_first, self.time_next, self.count_object, self.total_size
        )
    }
}

/// Partially computed cost during bottom-up evaluation: variables are
/// filled in the order `CountObject`, `TotalSize`, `TimeFirst`,
/// `TimeNext`, `TotalTime`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialCost {
    values: [Option<f64>; 5],
}

impl PartialCost {
    fn idx(var: CostVar) -> usize {
        match var {
            CostVar::TimeFirst => 0,
            CostVar::TimeNext => 1,
            CostVar::TotalTime => 2,
            CostVar::CountObject => 3,
            CostVar::TotalSize => 4,
        }
    }

    /// Already-computed value of `var`.
    pub fn get(&self, var: CostVar) -> Option<f64> {
        self.values[Self::idx(var)]
    }

    /// Record `var`.
    pub fn set(&mut self, var: CostVar, value: f64) {
        self.values[Self::idx(var)] = Some(value);
    }

    /// Finalize; every variable must have been computed.
    pub fn finish(self) -> Option<NodeCost> {
        Some(NodeCost {
            time_first: self.values[0]?,
            time_next: self.values[1]?,
            total_time: self.values[2]?,
            count_object: self.values[3]?,
            total_size: self.values[4]?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut c = NodeCost::ZERO;
        for (i, v) in CostVar::ALL.iter().enumerate() {
            c.set(*v, i as f64 + 1.0);
        }
        for (i, v) in CostVar::ALL.iter().enumerate() {
            assert_eq!(c.get(*v), i as f64 + 1.0);
        }
    }

    #[test]
    fn partial_requires_all_vars() {
        let mut p = PartialCost::default();
        for v in CostVar::ALL {
            assert!(p.finish().is_none());
            p.set(v, 1.0);
        }
        assert!(p.finish().is_some());
    }

    #[test]
    fn display_is_readable() {
        let c = NodeCost {
            time_first: 120.0,
            time_next: 0.5,
            total_time: 500.0,
            count_object: 700.0,
            total_size: 39200.0,
        };
        let s = c.to_string();
        assert!(s.contains("total 500.0ms"));
        assert!(s.contains("700 objects"));
    }
}

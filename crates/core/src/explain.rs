//! Cost-estimate explanation: which rule, from which scope, computed
//! each result variable of each node.
//!
//! This is the observable form of the paper's blending: for one plan you
//! can see `TotalTime` coming from a wrapper's predicate-scope rule while
//! `CountObject` falls back to the default scope — exactly the §4.1
//! per-variable resolution.

use std::fmt::Write as _;

use disco_costlang::CostVar;

use crate::cost::NodeCost;
use crate::scope::Scope;

/// Who computed one result variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    pub var: CostVar,
    /// Scope of the winning class.
    pub scope: Scope,
    /// Within-scope specificity of the winning class.
    pub specificity: u32,
    /// Printed heads of the rules that evaluated successfully in the
    /// class (more than one means min-combination applied).
    pub rules: Vec<String>,
    /// The value assigned.
    pub value: f64,
}

/// Explanation for one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainNode {
    /// Operator description (`select`, `scan hr.Employee`, …).
    pub operator: String,
    /// The node's final cost.
    pub cost: NodeCost,
    /// Per-variable attributions, in evaluation order.
    pub attributions: Vec<Attribution>,
    /// Explanations of the children that were actually estimated (the
    /// §4.2 cut-off removes the others).
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// The attribution of one variable.
    pub fn attribution(&self, var: CostVar) -> Option<&Attribution> {
        self.attributions.iter().find(|a| a.var == var)
    }

    /// Indented rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{}  [{}]", self.operator, self.cost);
        for a in &self.attributions {
            let rules = if a.rules.len() == 1 {
                a.rules[0].clone()
            } else {
                format!("min of {} rules: {}", a.rules.len(), a.rules.join(" | "))
            };
            let _ = writeln!(
                out,
                "{pad}  {:<12} = {:>14.3}  ({} scope, {})",
                a.var.name(),
                a.value,
                a.scope.name(),
                rules
            );
        }
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

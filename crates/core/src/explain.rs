//! Cost-estimate explanation: which rule, from which scope, computed
//! each result variable of each node.
//!
//! This is the observable form of the paper's blending: for one plan you
//! can see `TotalTime` coming from a wrapper's predicate-scope rule while
//! `CountObject` falls back to the default scope — exactly the §4.1
//! per-variable resolution.

use std::fmt::Write as _;

use disco_costlang::CostVar;

use crate::cost::NodeCost;
use crate::scope::Scope;

/// Who computed one result variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    pub var: CostVar,
    /// Scope of the winning class.
    pub scope: Scope,
    /// Within-scope specificity of the winning class.
    pub specificity: u32,
    /// Printed heads of the rules that evaluated successfully in the
    /// class (more than one means min-combination applied).
    pub rules: Vec<String>,
    /// The value assigned.
    pub value: f64,
}

/// Explanation for one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainNode {
    /// Operator description (`select`, `scan hr.Employee`, …).
    pub operator: String,
    /// The node's final cost.
    pub cost: NodeCost,
    /// Per-variable attributions, in evaluation order.
    pub attributions: Vec<Attribution>,
    /// Explanations of the children that were actually estimated (the
    /// §4.2 cut-off removes the others).
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// The attribution of one variable.
    pub fn attribution(&self, var: CostVar) -> Option<&Attribution> {
        self.attributions.iter().find(|a| a.var == var)
    }

    /// Indented rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{}  [{}]", self.operator, self.cost);
        for a in &self.attributions {
            let rules = if a.rules.len() == 1 {
                a.rules[0].clone()
            } else {
                format!("min of {} rules: {}", a.rules.len(), a.rules.join(" | "))
            };
            let _ = writeln!(
                out,
                "{pad}  {:<12} = {:>14.3}  ({} scope, {})",
                a.var.name(),
                a.value,
                a.scope.name(),
                rules
            );
        }
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(total_time: f64, rows: f64) -> NodeCost {
        NodeCost {
            time_first: 1.0,
            time_next: 0.1,
            total_time,
            count_object: rows,
            total_size: rows * 10.0,
        }
    }

    fn attr(var: CostVar, scope: Scope, value: f64) -> Attribution {
        Attribution {
            var,
            scope,
            specificity: 0,
            rules: vec!["r".into()],
            value,
        }
    }

    fn explain_leaf(op: &str, total_time: f64, rows: f64, scope: Scope) -> ExplainNode {
        ExplainNode {
            operator: op.into(),
            cost: cost(total_time, rows),
            attributions: vec![
                attr(CostVar::TotalTime, scope, total_time),
                attr(CostVar::CountObject, scope, rows),
            ],
            children: Vec::new(),
        }
    }

    #[test]
    fn relative_error_semantics() {
        let e = relative_error(110.0, 100.0).unwrap();
        assert!((e - 0.1).abs() < 1e-12, "{e}");
        assert_eq!(relative_error(50.0, 100.0), Some(-0.5));
        assert_eq!(relative_error(0.0, 0.0), Some(0.0));
        assert_eq!(relative_error(5.0, 0.0), None);
    }

    #[test]
    fn zip_pairs_matching_trees() {
        let predicted = ExplainNode {
            children: vec![explain_leaf("scan a", 10.0, 100.0, Scope::Collection)],
            ..explain_leaf("select", 20.0, 50.0, Scope::Predicate)
        };
        let measured = MeasuredNode {
            operator: "select".into(),
            rows: 40,
            elapsed_ms: 25.0,
            failed: false,
            pages: None,
            first_row_ms: None,
            children: vec![MeasuredNode {
                operator: "scan a".into(),
                rows: 100,
                elapsed_ms: 9.0,
                failed: false,
                pages: None,
                first_row_ms: None,
                children: Vec::new(),
            }],
        };
        let a = AnalyzeNode::zip(&predicted, &measured);
        assert_eq!(a.scope(), Some(Scope::Predicate));
        assert_eq!(a.measured.unwrap().rows, 40);
        assert_eq!(a.cardinality_error(), Some(0.25));
        assert_eq!(a.time_error(), Some(-0.2));
        assert_eq!(a.children.len(), 1);
        assert_eq!(a.children[0].scope(), Some(Scope::Collection));
        assert_eq!(a.nodes().len(), 2);
        let text = a.render();
        assert!(text.contains("predicted:"), "{text}");
        assert!(text.contains("measured:"), "{text}");
        assert!(text.contains("scope: time=predicate"), "{text}");
    }

    #[test]
    fn zip_keeps_wrapper_side_subtree_predicted_only() {
        // Execution sees submit as a leaf; prediction prices its subtree.
        let predicted = ExplainNode {
            children: vec![ExplainNode {
                children: vec![explain_leaf("scan a", 5.0, 100.0, Scope::Wrapper)],
                ..explain_leaf("select", 8.0, 10.0, Scope::Query)
            }],
            ..explain_leaf("submit hr", 30.0, 10.0, Scope::Wrapper)
        };
        let measured = MeasuredNode {
            operator: "submit hr".into(),
            rows: 10,
            elapsed_ms: 28.0,
            failed: false,
            pages: Some(12),
            first_row_ms: Some(2.0),
            children: Vec::new(),
        };
        let mut a = AnalyzeNode::zip(&predicted, &measured);
        assert!(a.measured.is_some());
        // Page I/O line appears once a prediction is filled in.
        assert_eq!(a.pages_error(), None, "no prediction yet");
        a.predicted_pages = Some(15.0);
        let e = a.pages_error().unwrap();
        assert!((e - 0.25).abs() < 1e-12, "{e}");
        assert!(a.render().contains("page io:"), "{}", a.render());
        assert!(a.render().contains("measured=12"), "{}", a.render());
        // TimeFirst 1.0 predicted vs 2.0 measured: −50%.
        assert_eq!(a.first_row_error(), Some(-0.5));
        assert!(a.render().contains("time to first:"), "{}", a.render());
        assert!(a.render().contains("measured=2.0ms"), "{}", a.render());
        assert_eq!(a.children.len(), 1);
        let wrapper_side = &a.children[0];
        assert!(wrapper_side.measured.is_none());
        assert_eq!(wrapper_side.scope(), Some(Scope::Query));
        assert!(wrapper_side.children[0].measured.is_none());
        assert!(a.render().contains("predicted only"), "{}", a.render());
    }
}

/// What instrumented execution measured for one plan node.
///
/// Built by the executor; paired with the predicted [`ExplainNode`] tree
/// by [`AnalyzeNode::zip`]. Times are cumulative over the node's subtree
/// (the same convention as [`NodeCost::total_time`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredNode {
    /// Operator description as executed.
    pub operator: String,
    /// Rows the node actually produced.
    pub rows: u64,
    /// Measured wall/virtual milliseconds for the node's subtree.
    pub elapsed_ms: f64,
    /// A submission that returned no answer (downed wrapper, partial
    /// answer mode).
    pub failed: bool,
    /// Pages the source actually read serving this node (`submit` nodes
    /// only — the wrapper reports its engine's fault count; combine-phase
    /// operators perform no page I/O and carry `None`).
    pub pages: Option<u64>,
    /// Measured time-to-first-row in simulated milliseconds (`submit`
    /// nodes only: the wrapper's `TimeFirst` plus the communication time
    /// of whatever carried the first row — the whole reply in two-phase
    /// mode, the first stream frame in pipelined mode).
    pub first_row_ms: Option<f64>,
    pub children: Vec<MeasuredNode>,
}

/// Measured facts attached to one analyze node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measured {
    pub rows: u64,
    pub elapsed_ms: f64,
    pub failed: bool,
    /// Measured page reads, when the node is a `submit` whose source
    /// reported them.
    pub pages: Option<u64>,
    /// Measured time-to-first-row, when the node is a `submit` (see
    /// [`MeasuredNode::first_row_ms`]).
    pub first_row_ms: Option<f64>,
}

/// One node of an EXPLAIN ANALYZE report: the predicted cost and its
/// per-variable scope attributions next to what execution measured.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeNode {
    pub operator: String,
    /// Scope-blended prediction for this node.
    pub predicted: NodeCost,
    /// Predicted page I/O for this node (Yao's `pages_touched`, scaled by
    /// the wrapper's cache regime). Filled by the mediator for `submit`
    /// nodes whose subplan reads one collection; `None` elsewhere.
    pub predicted_pages: Option<f64>,
    /// Which rule, from which scope, produced each predicted variable.
    pub attributions: Vec<Attribution>,
    /// `None` for predicted-only nodes: the wrapper-side subtree of a
    /// `submit`, which the mediator prices but never executes itself.
    pub measured: Option<Measured>,
    pub children: Vec<AnalyzeNode>,
}

/// Relative error of a prediction against a measurement:
/// `(predicted − measured) / measured`. Exactly-right is `0`; `+1.0`
/// means the prediction doubled the measurement. `None` when the
/// measurement is zero but the prediction is not (the ratio diverges);
/// both-zero is exactly right.
pub fn relative_error(predicted: f64, measured: f64) -> Option<f64> {
    if measured == 0.0 {
        return (predicted == 0.0).then_some(0.0);
    }
    Some((predicted - measured) / measured)
}

impl AnalyzeNode {
    /// Pair a predicted explain tree with a measured execution tree.
    ///
    /// The trees correspond node-for-node with one exception: execution
    /// treats `submit` as a leaf (the wrapper runs the subtree remotely)
    /// while the estimator prices the wrapper-side plan below it. Any
    /// predicted children beyond the measured ones therefore become
    /// predicted-only nodes (`measured: None`).
    pub fn zip(predicted: &ExplainNode, measured: &MeasuredNode) -> AnalyzeNode {
        let mut children: Vec<AnalyzeNode> = predicted
            .children
            .iter()
            .zip(&measured.children)
            .map(|(p, m)| AnalyzeNode::zip(p, m))
            .collect();
        for p in predicted.children.iter().skip(measured.children.len()) {
            children.push(AnalyzeNode::predicted_only(p));
        }
        AnalyzeNode {
            operator: predicted.operator.clone(),
            predicted: predicted.cost,
            predicted_pages: None,
            attributions: predicted.attributions.clone(),
            measured: Some(Measured {
                rows: measured.rows,
                elapsed_ms: measured.elapsed_ms,
                failed: measured.failed,
                pages: measured.pages,
                first_row_ms: measured.first_row_ms,
            }),
            children,
        }
    }

    fn predicted_only(predicted: &ExplainNode) -> AnalyzeNode {
        AnalyzeNode {
            operator: predicted.operator.clone(),
            predicted: predicted.cost,
            predicted_pages: None,
            attributions: predicted.attributions.clone(),
            measured: None,
            children: predicted
                .children
                .iter()
                .map(AnalyzeNode::predicted_only)
                .collect(),
        }
    }

    /// The attribution of one variable.
    pub fn attribution(&self, var: CostVar) -> Option<&Attribution> {
        self.attributions.iter().find(|a| a.var == var)
    }

    /// The scope that produced the predicted `TotalTime` — "the" scope of
    /// the node in renderings and tests.
    pub fn scope(&self) -> Option<Scope> {
        self.attribution(CostVar::TotalTime).map(|a| a.scope)
    }

    /// Relative cardinality error (predicted `CountObject` vs measured
    /// rows). `None` for predicted-only nodes or a diverging ratio.
    pub fn cardinality_error(&self) -> Option<f64> {
        let m = self.measured.as_ref()?;
        relative_error(self.predicted.count_object, m.rows as f64)
    }

    /// Relative time error (predicted `TotalTime` vs measured elapsed
    /// milliseconds). `None` for predicted-only nodes or a diverging
    /// ratio.
    pub fn time_error(&self) -> Option<f64> {
        let m = self.measured.as_ref()?;
        relative_error(self.predicted.total_time, m.elapsed_ms)
    }

    /// Relative page-I/O error (predicted Yao pages vs measured page
    /// reads). `None` unless the node carries both a page prediction and
    /// a page measurement.
    pub fn pages_error(&self) -> Option<f64> {
        let predicted = self.predicted_pages?;
        let measured = self.measured.as_ref()?.pages?;
        relative_error(predicted, measured as f64)
    }

    /// Relative time-to-first-row error (predicted `TimeFirst` vs the
    /// measured first-row time). `None` unless the node measured one
    /// (`submit` nodes).
    pub fn first_row_error(&self) -> Option<f64> {
        let measured = self.measured.as_ref()?.first_row_ms?;
        relative_error(self.predicted.time_first, measured)
    }

    /// Every node of the tree, preorder.
    pub fn nodes(&self) -> Vec<&AnalyzeNode> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.nodes());
        }
        out
    }

    /// Indented rendering: per node, predicted vs measured time and
    /// cardinality, relative errors, and the winning scope per variable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let scope_of = |var: CostVar| self.attribution(var).map_or("?", |a| a.scope.name());
        let _ = writeln!(out, "{pad}{}", self.operator);
        let _ = writeln!(
            out,
            "{pad}  predicted: time={:>12.3}ms  rows={:>10.0}  (scope: time={}, rows={})",
            self.predicted.total_time,
            self.predicted.count_object,
            scope_of(CostVar::TotalTime),
            scope_of(CostVar::CountObject),
        );
        match &self.measured {
            Some(m) => {
                let _ = writeln!(
                    out,
                    "{pad}  measured:  time={:>12.3}ms  rows={:>10}{}",
                    m.elapsed_ms,
                    m.rows,
                    if m.failed { "  [no answer]" } else { "" },
                );
                let fmt = |e: Option<f64>| match e {
                    Some(e) => format!("{:+.1}%", e * 100.0),
                    None => "n/a".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{pad}  error:     time={:>11}  rows={:>9}",
                    fmt(self.time_error()),
                    fmt(self.cardinality_error()),
                );
                if self.predicted_pages.is_some() || m.pages.is_some() {
                    let predicted = self
                        .predicted_pages
                        .map_or("n/a".to_owned(), |p| format!("{p:.1}"));
                    let measured = m.pages.map_or("n/a".to_owned(), |p| p.to_string());
                    let _ = writeln!(
                        out,
                        "{pad}  page io:   predicted={predicted}  measured={measured}  error={}",
                        fmt(self.pages_error()),
                    );
                }
                if let Some(first) = m.first_row_ms {
                    let _ = writeln!(
                        out,
                        "{pad}  time to first: predicted={:.1}ms  measured={first:.1}ms  error={}",
                        self.predicted.time_first,
                        fmt(self.first_row_error()),
                    );
                }
            }
            None => {
                let _ = writeln!(out, "{pad}  measured:  (wrapper-side; predicted only)");
            }
        }
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

//! The mediator's generic cost model (paper §2.3).
//!
//! Calibration-style formulas in the spirit of \[GST96\]: for unary
//! operators the model distinguishes sequential and index scans (selecting
//! the index formula when the wrapper exported an index on the restricted
//! attribute); for joins it considers index join, nested loops and
//! sort-merge and keeps the cheapest. Selectivities derive from the
//! exported `Min`/`Max`/`CountDistinct` statistics. Clustering is *not*
//! modelled — the very limitation the paper's §5 experiment exposes.
//!
//! The calibrated index-scan formula deliberately assumes the number of
//! pages fetched is proportional to the number of qualifying objects
//! (`k * IO`), which over-estimates badly once qualifying objects share
//! pages; the wrapper-exported Yao rule of Figure 13 corrects it.
//!
//! Two native rule sets are installed:
//!
//! * [`GenericModel`] — default scope, applies everywhere, provides every
//!   variable for every operator (the guarantee of §4.1);
//! * [`LocalModel`] — local scope, the mediator's own in-memory physical
//!   operators (no per-object `Output` delivery cost, hash-based join).

use std::sync::Arc;

use disco_algebra::{CompareOp, LogicalPlan, OperatorKind, Predicate};
use disco_catalog::{join_selectivity, predicate_selectivity};
use disco_costlang::ast::{AttrTerm, CollTerm, HeadArg, RuleHead};
use disco_costlang::CostVar;

use crate::estimator::NativeCtx;
use crate::registry::{Provenance, RuleRegistry};
use crate::rules::NativeFormula;
use crate::scope::Scope;

/// Install the default-scope generic model (all operators) and the
/// local-scope mediator model (combination operators) into a registry.
pub fn install_default_model(reg: &mut RuleRegistry) {
    for op in OperatorKind::ALL {
        reg.register_native(
            Provenance::Default,
            Scope::Default,
            catch_all_head(op),
            Arc::new(GenericModel { op }),
        )
        .expect("default model head is valid");
    }
    for op in [
        OperatorKind::Select,
        OperatorKind::Project,
        OperatorKind::Sort,
        OperatorKind::Join,
        OperatorKind::Union,
        OperatorKind::Dedup,
        OperatorKind::Aggregate,
    ] {
        reg.register_native(
            Provenance::Local,
            Scope::Local,
            catch_all_head(op),
            Arc::new(LocalModel { op }),
        )
        .expect("local model head is valid");
    }
}

/// The all-free-variables head matching every node of an operator kind.
pub fn catch_all_head(op: OperatorKind) -> RuleHead {
    let coll = |n: &str| HeadArg::Coll(CollTerm::Var(n.into()));
    let args = match op {
        OperatorKind::Scan
        | OperatorKind::Dedup
        | OperatorKind::Aggregate
        | OperatorKind::Submit => vec![coll("C")],
        OperatorKind::Select | OperatorKind::Project => {
            vec![coll("C"), HeadArg::AnyPred("P".into())]
        }
        OperatorKind::Sort => vec![coll("C"), HeadArg::Attr(AttrTerm::Var("A".into()))],
        OperatorKind::Union => vec![coll("C1"), coll("C2")],
        OperatorKind::Join => vec![coll("C1"), coll("C2"), HeadArg::AnyPred("P".into())],
    };
    RuleHead { op, args }
}

const ALL_VARS: [CostVar; 5] = [
    CostVar::TimeFirst,
    CostVar::TimeNext,
    CostVar::TotalTime,
    CostVar::CountObject,
    CostVar::TotalSize,
];

/// Selectivity when no statistics are available: the classical defaults.
fn fallback_selectivity(pred: &Predicate) -> f64 {
    pred.conjuncts
        .iter()
        .map(|c| match c.op {
            CompareOp::Eq => 0.1,
            CompareOp::Ne => 0.9,
            _ => 1.0 / 3.0,
        })
        .product()
}

/// Selectivity of a selection node given its input subtree.
fn selection_selectivity(ctx: &NativeCtx<'_>, input: &LogicalPlan, pred: &Predicate) -> f64 {
    match ctx.base_stats(input) {
        Some(stats) => predicate_selectivity(stats, pred),
        None => fallback_selectivity(pred),
    }
}

/// `n log2 n` sort work.
fn sort_cost(ctx: &NativeCtx<'_>, n: f64) -> f64 {
    ctx.param_or("SortFactor", 0.02) * n * n.max(2.0).log2()
}

/// Average object width of a subresult, falling back to base statistics.
fn width_of(ctx: &NativeCtx<'_>, plan: &LogicalPlan, cost: &crate::cost::NodeCost) -> f64 {
    if cost.count_object >= 1.0 && cost.total_size > 0.0 {
        cost.total_size / cost.count_object
    } else {
        ctx.base_stats(plan)
            .map(|s| s.extent.object_size as f64)
            .unwrap_or(100.0)
    }
}

/// The default-scope generic model for one operator kind.
#[derive(Debug)]
pub struct GenericModel {
    pub op: OperatorKind,
}

impl GenericModel {
    /// Output cardinality.
    fn count(&self, ctx: &NativeCtx<'_>) -> Option<f64> {
        match ctx.node {
            LogicalPlan::Scan { .. } => Some(ctx.base_stats(ctx.node)?.extent.count_object as f64),
            LogicalPlan::Select { input, predicate } => {
                let sel = selection_selectivity(ctx, input, predicate);
                Some(ctx.child(0).count_object * sel)
            }
            LogicalPlan::Project { .. } | LogicalPlan::Sort { .. } | LogicalPlan::Submit { .. } => {
                Some(ctx.child(0).count_object)
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                ..
            } => {
                let (l, r) = (ctx.child(0), ctx.child(1));
                let jsel = match (ctx.base_stats(left), ctx.base_stats(right)) {
                    (Some(ls), Some(rs)) => join_selectivity(ls, rs, predicate),
                    // Without statistics assume a key-foreign-key join.
                    _ => 1.0 / l.count_object.max(r.count_object).max(1.0),
                };
                Some(l.count_object * r.count_object * jsel)
            }
            LogicalPlan::Union { .. } => {
                Some(ctx.child(0).count_object + ctx.child(1).count_object)
            }
            LogicalPlan::Dedup { .. } => {
                let n = ctx.child(0).count_object;
                Some((n * ctx.param_or("DedupSel", 0.5)).min(n).max(n.min(1.0)))
            }
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                let n = ctx.child(0).count_object;
                if group_by.is_empty() {
                    return Some(n.min(1.0));
                }
                match ctx.base_stats(input) {
                    Some(stats) => {
                        let groups: f64 = group_by
                            .iter()
                            .map(|g| stats.attribute(g).count_distinct as f64)
                            .product();
                        Some(groups.min(n))
                    }
                    None => Some((n * ctx.param_or("DedupSel", 0.5)).min(n)),
                }
            }
        }
    }

    /// Output size in bytes, given the (possibly overridden) cardinality.
    fn size(&self, ctx: &NativeCtx<'_>, count: f64) -> Option<f64> {
        match ctx.node {
            LogicalPlan::Scan { .. } => Some(ctx.base_stats(ctx.node)?.extent.total_size as f64),
            LogicalPlan::Project { input, columns } => {
                // Width scales with the kept fraction of attributes.
                let child = ctx.child(0);
                let in_arity = input.output_schema().map(|s| s.arity()).unwrap_or(1).max(1);
                let ratio = columns.len() as f64 / in_arity as f64;
                Some(count * width_of(ctx, input, &child) * ratio.min(1.0))
            }
            LogicalPlan::Join { left, right, .. } => {
                let wl = width_of(ctx, left, &ctx.child(0));
                let wr = width_of(ctx, right, &ctx.child(1));
                Some(count * (wl + wr))
            }
            LogicalPlan::Union { left, .. } => {
                let w = width_of(ctx, left, &ctx.child(0));
                Some(count * w)
            }
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Dedup { input }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Submit { input, .. } => {
                Some(count * width_of(ctx, input, &ctx.child(0)))
            }
        }
    }

    /// `(TimeFirst, TimeNext, TotalTime)`.
    ///
    /// The model is *delivery-at-producer*: an operator's `TotalTime` is
    /// its internal work plus `Output` per object of its **own** result —
    /// intermediate results hand off within the source at CPU cost, not
    /// at delivery cost. [`internal_time`] removes a child's delivery
    /// term when the child feeds this operator inside the same source.
    fn times(&self, ctx: &NativeCtx<'_>, count: f64) -> Option<(f64, f64, f64)> {
        let io = ctx.param_or("IO", 25.0);
        let output = ctx.param_or("Output", 9.0);
        let overhead = ctx.param_or("Overhead", 120.0);
        let cpu_pred = ctx.param_or("CpuPred", 0.05);
        let cpu_scan = ctx.param_or("CpuScan", 0.01);
        let cpu_hash = ctx.param_or("CpuHash", 0.02);
        let deliver = count * output;
        let (tf, tt) = match ctx.node {
            LogicalPlan::Scan { .. } => {
                let stats = ctx.base_stats(ctx.node)?;
                let pages = stats.extent.count_pages(ctx.page_size() as u64) as f64;
                let n = stats.extent.count_object as f64;
                (overhead, overhead + pages * io + n * cpu_scan + deliver)
            }
            LogicalPlan::Select { input, predicate } => {
                let child = ctx.child(0);
                // Index path: selection directly over a base scan with an
                // index on the (single) restricted attribute.
                let indexed_attr = match (input.as_ref(), predicate.conjuncts.as_slice()) {
                    (LogicalPlan::Scan { .. }, [c]) => ctx
                        .base_stats(input)
                        .is_some_and(|s| s.attribute(&c.attribute).indexed),
                    _ => false,
                };
                if indexed_attr {
                    // Calibrated index scan: pages fetched assumed
                    // proportional to qualifying objects — the §5 flaw.
                    (overhead + io, overhead + count * io + deliver)
                } else {
                    (
                        child.time_first + cpu_pred,
                        internal_time(ctx, &child) + child.count_object * cpu_pred + deliver,
                    )
                }
            }
            LogicalPlan::Project { .. } => {
                let child = ctx.child(0);
                (
                    child.time_first + cpu_hash,
                    internal_time(ctx, &child) + child.count_object * cpu_hash + deliver,
                )
            }
            LogicalPlan::Sort { .. } => {
                let child = ctx.child(0);
                let tt = internal_time(ctx, &child) + sort_cost(ctx, child.count_object) + deliver;
                (tt, tt) // blocking
            }
            LogicalPlan::Join {
                right, predicate, ..
            } => {
                let (l, r) = (ctx.child(0), ctx.child(1));
                let (nl, nr) = (l.count_object, r.count_object);
                let (il, ir) = (internal_time(ctx, &l), internal_time(ctx, &r));
                let nested = il + ir + nl * nr * cpu_pred;
                let sort_merge =
                    il + ir + sort_cost(ctx, nl) + sort_cost(ctx, nr) + (nl + nr) * cpu_pred;
                let mut best = nested.min(sort_merge);
                // Index join when the inner input is a base scan with an
                // index on the join attribute (§2.3: "when an index is
                // existing, the index join formula is selected").
                let right_indexed = matches!(right.as_ref(), LogicalPlan::Scan { .. })
                    && ctx
                        .base_stats(right)
                        .is_some_and(|s| s.attribute(&predicate.right_attr).indexed);
                if right_indexed {
                    let probe = ctx.param_or("IdxProbe", 2.0);
                    let index = il + nl * (probe + io);
                    best = best.min(index);
                }
                (l.time_first + r.time_first, best + deliver)
            }
            LogicalPlan::Union { .. } => {
                let (l, r) = (ctx.child(0), ctx.child(1));
                (
                    l.time_first.min(r.time_first),
                    internal_time(ctx, &l) + internal_time(ctx, &r) + deliver,
                )
            }
            LogicalPlan::Dedup { .. } => {
                let child = ctx.child(0);
                (
                    child.time_first + cpu_hash,
                    internal_time(ctx, &child) + child.count_object * cpu_hash + deliver,
                )
            }
            LogicalPlan::Aggregate { .. } => {
                let child = ctx.child(0);
                let tt = internal_time(ctx, &child) + child.count_object * cpu_hash + deliver;
                (tt, tt) // blocking
            }
            LogicalPlan::Submit { .. } => {
                // Delivery already happened at the subplan root; submit
                // adds the uniform communication cost.
                let child = ctx.child(0);
                let latency = ctx.param_or("MsgLatency", 100.0);
                let per_byte = ctx.param_or("PerByte", 0.001);
                (
                    child.time_first + latency,
                    child.total_time + latency + child.total_size * per_byte,
                )
            }
        };
        let tn = ((tt - tf) / count.max(1.0)).max(0.0);
        Some((tf, tn, tt))
    }
}

/// A child's work without its per-object delivery term: when the child
/// feeds its parent inside the same source, objects are handed off at CPU
/// cost and only the parent's own result is delivered.
fn internal_time(ctx: &NativeCtx<'_>, child: &crate::cost::NodeCost) -> f64 {
    let output = ctx.param_or("Output", 9.0);
    (child.total_time - child.count_object * output).max(0.0)
}

impl NativeFormula for GenericModel {
    fn provides(&self) -> &[CostVar] {
        &ALL_VARS
    }

    fn eval(&self, var: CostVar, ctx: &NativeCtx<'_>) -> Option<f64> {
        // Honor blending: values already computed for this node (possibly
        // by more specific wrapper rules) feed the remaining formulas.
        let count = ctx
            .partial
            .get(CostVar::CountObject)
            .or_else(|| self.count(ctx))?;
        match var {
            CostVar::CountObject => Some(count),
            CostVar::TotalSize => self.size(ctx, count),
            CostVar::TimeFirst => self.times(ctx, count).map(|t| t.0),
            CostVar::TimeNext => self.times(ctx, count).map(|t| t.1),
            CostVar::TotalTime => self.times(ctx, count).map(|t| t.2),
        }
    }

    fn name(&self) -> &str {
        "generic"
    }
}

/// Local-scope model: the mediator's own in-memory combination operators.
///
/// No page I/O, no per-object delivery cost — just CPU over materialized
/// subanswers, with a hash join as the default equi-join algorithm.
#[derive(Debug)]
pub struct LocalModel {
    pub op: OperatorKind,
}

impl NativeFormula for LocalModel {
    fn provides(&self) -> &[CostVar] {
        &ALL_VARS
    }

    fn eval(&self, var: CostVar, ctx: &NativeCtx<'_>) -> Option<f64> {
        // Cardinalities and sizes follow the generic model.
        let generic = GenericModel { op: self.op };
        let count = ctx
            .partial
            .get(CostVar::CountObject)
            .or_else(|| generic.count(ctx))?;
        match var {
            CostVar::CountObject => return Some(count),
            CostVar::TotalSize => return generic.size(ctx, count),
            _ => {}
        }
        let cpu = ctx.param_or("CpuHash", 0.02);
        let cpu_pred = ctx.param_or("CpuPred", 0.05);
        let (tf, tt) = match ctx.node {
            LogicalPlan::Select { .. } | LogicalPlan::Project { .. } => {
                let c = ctx.child(0);
                (
                    c.time_first + cpu_pred,
                    c.total_time + c.count_object * cpu_pred,
                )
            }
            LogicalPlan::Sort { .. } => {
                let c = ctx.child(0);
                let tt = c.total_time + sort_cost(ctx, c.count_object);
                (tt, tt)
            }
            LogicalPlan::Join { .. } => {
                // Hash join: build on the smaller input, probe the larger.
                let (l, r) = (ctx.child(0), ctx.child(1));
                let build = l.count_object.min(r.count_object);
                let probe = l.count_object.max(r.count_object);
                let tt = l.total_time + r.total_time + (build + probe) * cpu + count * cpu;
                (l.time_first + r.time_first, tt)
            }
            LogicalPlan::Union { .. } => {
                let (l, r) = (ctx.child(0), ctx.child(1));
                (l.time_first.min(r.time_first), l.total_time + r.total_time)
            }
            LogicalPlan::Dedup { .. } | LogicalPlan::Aggregate { .. } => {
                let c = ctx.child(0);
                (c.time_first + cpu, c.total_time + c.count_object * cpu)
            }
            // Scan/submit are not mediator-local operators.
            _ => return None,
        };
        let tn = ((tt - tf) / count.max(1.0)).max(0.0);
        Some(match var {
            CostVar::TimeFirst => tf,
            CostVar::TimeNext => tn,
            CostVar::TotalTime => tt,
            _ => unreachable!("size vars handled above"),
        })
    }

    fn name(&self) -> &str {
        "local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::NodeCost;
    use crate::estimator::Estimator;
    use disco_algebra::PlanBuilder;
    use disco_catalog::{AttributeStats, Capabilities, Catalog, CollectionStats, ExtentStats};
    use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};

    /// A catalog with the paper's OO7 AtomicParts profile: 70 000 objects
    /// of 56 bytes (≈1000 pages at 4 KiB 96% fill → we register the raw
    /// sizes and let page counts derive).
    fn oo7_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_wrapper("oo7", Capabilities::full()).unwrap();
        let stats = CollectionStats::new(ExtentStats {
            count_object: 70_000,
            total_size: 4_096_000, // 1000 pages exactly
            object_size: 56,
            count_page: None,
        })
        .with_attribute(
            "Id",
            AttributeStats::indexed(70_000, Value::Long(0), Value::Long(69_999)),
        )
        .with_attribute(
            "BuildDate",
            AttributeStats::new(1_000, Value::Long(0), Value::Long(999)),
        );
        c.register_collection(
            "oo7",
            "AtomicParts",
            Schema::new(vec![
                AttributeDef::new("Id", DataType::Long),
                AttributeDef::new("BuildDate", DataType::Long),
            ]),
            stats,
        )
        .unwrap();
        c
    }

    fn atomic_parts() -> PlanBuilder {
        PlanBuilder::scan(
            QualifiedName::new("oo7", "AtomicParts"),
            Schema::new(vec![
                AttributeDef::new("Id", DataType::Long),
                AttributeDef::new("BuildDate", DataType::Long),
            ]),
        )
    }

    fn estimate(plan: &LogicalPlan) -> NodeCost {
        let reg = RuleRegistry::with_default_model();
        let cat = oo7_catalog();
        Estimator::new(&reg, &cat).estimate(plan).unwrap()
    }

    #[test]
    fn scan_cost_is_pages_plus_output() {
        let c = estimate(&atomic_parts().build());
        assert_eq!(c.count_object, 70_000.0);
        assert_eq!(c.total_size, 4_096_000.0);
        // Overhead + 1000*IO + 70000*(CpuScan + Output)
        //   = 120 + 25000 + 700 + 630000.
        assert!((c.total_time - 655_820.0).abs() < 1e-6, "{c}");
        assert_eq!(c.time_first, 120.0);
    }

    #[test]
    fn indexed_selection_uses_linear_calibrated_formula() {
        // Id <= 6999 -> selectivity 0.1 by interpolation, k = 7000.
        let plan = atomic_parts()
            .select("Id", disco_algebra::CompareOp::Le, 6_999i64)
            .build();
        let c = estimate(&plan);
        let sel = 6_999.0 / 69_999.0;
        let k = 70_000.0 * sel;
        assert!((c.count_object - k).abs() < 1.0, "{c}");
        // Overhead + k * (IO + Output).
        let expected = 120.0 + k * 34.0;
        assert!(
            (c.total_time - expected).abs() < 40.0,
            "{} vs {expected}",
            c.total_time
        );
    }

    #[test]
    fn unindexed_selection_pays_full_scan() {
        let plan = atomic_parts()
            .select("BuildDate", disco_algebra::CompareOp::Eq, 5i64)
            .build();
        let c = estimate(&plan);
        // 1/CountDistinct(BuildDate) = 1/1000 selectivity.
        assert!((c.count_object - 70.0).abs() < 1e-6);
        // Internal scan work (no delivery) + per-object predicate CPU +
        // delivery of the 70 qualifying objects:
        // 120 + 25000 + 700 + 3500 + 630.
        assert!((c.total_time - 29_950.0).abs() < 1e-6, "{c}");
    }

    #[test]
    fn join_picks_cheapest_algorithm() {
        let small = atomic_parts().select("Id", disco_algebra::CompareOp::Le, 699i64);
        let plan = small.join(atomic_parts(), "Id", "Id").build();
        let c = estimate(&plan);
        // Index join must beat nested loops (which would cost ~nl*nr*cpu).
        let l_count = 70_000.0 * (699.0 / 69_999.0);
        let nested_floor = l_count * 70_000.0 * 0.05;
        assert!(c.total_time < nested_floor, "{c}");
        assert!(c.count_object > 0.0);
    }

    #[test]
    fn sort_is_blocking() {
        let plan = atomic_parts().sort_asc(&["Id"]).build();
        let c = estimate(&plan);
        assert_eq!(c.time_first, c.total_time);
        assert!(c.total_time > 655_120.0);
    }

    #[test]
    fn aggregate_group_count_uses_distinct_stats() {
        let plan = atomic_parts()
            .aggregate(
                &["BuildDate"],
                vec![("n", disco_algebra::AggFunc::Count, None)],
            )
            .build();
        let c = estimate(&plan);
        assert_eq!(c.count_object, 1_000.0);
    }

    #[test]
    fn global_aggregate_returns_one_row() {
        let plan = atomic_parts()
            .aggregate(&[], vec![("n", disco_algebra::AggFunc::Count, None)])
            .build();
        let c = estimate(&plan);
        assert_eq!(c.count_object, 1.0);
    }

    #[test]
    fn submit_adds_uniform_communication() {
        let inner = atomic_parts().select("Id", disco_algebra::CompareOp::Le, 6_999i64);
        let submitted = inner.clone().submit("oo7").build();
        let bare = estimate(&inner.build());
        let c = estimate(&submitted);
        assert!((c.total_time - (bare.total_time + 100.0 + bare.total_size * 0.001)).abs() < 1e-6);
        assert_eq!(c.count_object, bare.count_object);
    }

    #[test]
    fn union_sums() {
        let plan = atomic_parts().union(atomic_parts()).build();
        let c = estimate(&plan);
        assert_eq!(c.count_object, 140_000.0);
    }

    #[test]
    fn projection_shrinks_size() {
        let plan = atomic_parts().project_attrs(&["Id"]).build();
        let c = estimate(&plan);
        assert_eq!(c.count_object, 70_000.0);
        assert!(c.total_size < 4_096_000.0);
    }

    #[test]
    fn dedup_halves_by_default() {
        let plan = atomic_parts().dedup().build();
        let c = estimate(&plan);
        assert_eq!(c.count_object, 35_000.0);
    }
}

//! End-to-end tests of the cost-blending machinery: wrapper rules
//! overriding the generic model through the scope hierarchy, exactly as
//! §4 describes.

use disco_algebra::{CompareOp, PlanBuilder};
use disco_catalog::{AttributeStats, Capabilities, Catalog, CollectionStats, ExtentStats};
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
use disco_core::{EstimateOptions, Estimator, HistoryRecorder, NodeCost, RuleRegistry};
use disco_costlang::{compile_document, parse_document};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_wrapper("hr", Capabilities::full()).unwrap();
    let stats = CollectionStats::new(ExtentStats::of(10_000, 120))
        .with_attribute(
            "salary",
            AttributeStats::indexed(100, Value::Long(1_000), Value::Long(30_000)),
        )
        .with_attribute(
            "name",
            AttributeStats::new(
                10_000,
                Value::Str("Adiba".into()),
                Value::Str("Valduriez".into()),
            ),
        );
    c.register_collection(
        "hr",
        "Employee",
        Schema::new(vec![
            AttributeDef::new("salary", DataType::Long),
            AttributeDef::new("name", DataType::Str),
        ]),
        stats,
    )
    .unwrap();
    c
}

fn registry_with(rules: &str) -> RuleRegistry {
    let mut reg = RuleRegistry::with_default_model();
    let doc = compile_document(&parse_document(rules).unwrap()).unwrap();
    reg.register_document("hr", &doc).unwrap();
    reg
}

fn employee() -> PlanBuilder {
    PlanBuilder::scan(
        QualifiedName::new("hr", "Employee"),
        Schema::new(vec![
            AttributeDef::new("salary", DataType::Long),
            AttributeDef::new("name", DataType::Str),
        ]),
    )
}

fn estimate(reg: &RuleRegistry, cat: &Catalog, plan: &disco_algebra::LogicalPlan) -> NodeCost {
    Estimator::new(reg, cat).estimate(plan).unwrap()
}

#[test]
fn wrapper_scan_rule_overrides_generic() {
    let cat = catalog();
    let reg = registry_with("rule scan($C) { TotalTime = 777; }");
    let plan = employee().build();
    let c = estimate(&reg, &cat, &plan);
    // TotalTime from the wrapper rule…
    assert_eq!(c.total_time, 777.0);
    // …but CountObject/TotalSize still from the generic model (per-variable
    // fallback, §4.1: "the scope hierarchy is scanned until the first
    // less-specific rule is found").
    assert_eq!(c.count_object, 10_000.0);
    assert_eq!(c.total_size, 1_200_000.0);
}

#[test]
fn figure_8_scan_rule_evaluates_statistics() {
    let cat = catalog();
    // TotalTime = 120 + TotalSize*12 + CountObject/CountDistinct(salary).
    let reg = registry_with(
        "rule scan(Employee) {
            TotalTime = 120 + Employee.TotalSize * 12
                      + Employee.CountObject / Employee.salary.CountDistinct;
        }",
    );
    let c = estimate(&reg, &cat, &employee().build());
    let expected = 120.0 + 1_200_000.0 * 12.0 + 10_000.0 / 100.0;
    assert_eq!(c.total_time, expected);
}

#[test]
fn figure_8_select_rule_uses_child_results() {
    let cat = catalog();
    let reg = registry_with(
        "rule select($C, $A = $V) {
            CountObject = $C.CountObject * selectivity($A, $V);
            TotalSize = CountObject * $C.ObjectSize;
            TotalTime = $C.TotalTime + $C.TotalSize * 25;
        }",
    );
    let plan = employee()
        .select("salary", CompareOp::Eq, 10_000i64)
        .build();
    let c = estimate(&reg, &cat, &plan);
    // selectivity(salary = v) = 1/CountDistinct = 0.01.
    assert_eq!(c.count_object, 100.0);
    assert_eq!(c.total_size, 100.0 * 120.0);
    // Child = generic scan estimate.
    let scan_cost = estimate(&reg, &cat, &employee().build());
    assert_eq!(c.total_time, scan_cost.total_time + 1_200_000.0 * 25.0);
}

#[test]
fn most_specific_scope_wins() {
    let cat = catalog();
    let reg = registry_with(
        "rule select($C, $P) { TotalTime = 1; }
         rule select(Employee, $P) { TotalTime = 2; }
         rule select(Employee, salary = $V) { TotalTime = 3; }
         rule select(Employee, salary = 777) { TotalTime = 4; }",
    );
    let cases = [
        (employee().select("name", CompareOp::Eq, "x").build(), 2.0),
        (
            employee().select("salary", CompareOp::Eq, 5i64).build(),
            3.0,
        ),
        (
            employee().select("salary", CompareOp::Eq, 777i64).build(),
            4.0,
        ),
    ];
    for (plan, want) in cases {
        let c = estimate(&reg, &cat, &plan);
        assert_eq!(c.total_time, want, "{plan:?}");
    }
    // Wrapper-scope rule fires when the collection doesn't resolve.
    let join = employee().join(employee(), "salary", "salary");
    let over_join = join.select("name", CompareOp::Eq, "x").build();
    let c = estimate(&reg, &cat, &over_join);
    assert_eq!(c.total_time, 1.0);
}

#[test]
fn equally_specific_rules_min_combine() {
    let cat = catalog();
    // Two collection-scope rules for the same node: lowest value wins
    // (§4.2 step 3).
    let reg = registry_with(
        "rule select(Employee, $P) { TotalTime = 500; }
         rule select(Employee, $P) { TotalTime = 300; }",
    );
    let plan = employee().select("salary", CompareOp::Eq, 5i64).build();
    assert_eq!(estimate(&reg, &cat, &plan).total_time, 300.0);
}

#[test]
fn failing_specific_rule_falls_back() {
    let cat = catalog();
    // The predicate-scope rule divides by zero at evaluation time; the
    // collection-scope rule must take over.
    let reg = registry_with(
        "rule select(Employee, salary = $V) { TotalTime = 1 / 0; }
         rule select(Employee, $P) { TotalTime = 42; }",
    );
    let plan = employee().select("salary", CompareOp::Eq, 5i64).build();
    assert_eq!(estimate(&reg, &cat, &plan).total_time, 42.0);
}

#[test]
fn historical_rule_caches_real_cost() {
    let cat = catalog();
    let mut reg = registry_with("rule select(Employee, salary = $V) { TotalTime = 1000; }");
    let plan = employee().select("salary", CompareOp::Eq, 77i64).build();
    let mut rec = HistoryRecorder::new();
    let real = NodeCost {
        time_first: 5.0,
        time_next: 0.1,
        total_time: 333.0,
        count_object: 12.0,
        total_size: 1440.0,
    };
    rec.record(&mut reg, "hr", &plan, real).unwrap();
    // The recorded query-scope rule beats the predicate-scope rule…
    let c = estimate(&reg, &cat, &plan);
    assert_eq!(c.total_time, 333.0);
    assert_eq!(c.count_object, 12.0);
    // …and only for the identical subquery.
    let other = employee().select("salary", CompareOp::Eq, 78i64).build();
    assert_eq!(estimate(&reg, &cat, &other).total_time, 1000.0);
}

#[test]
fn cost_limit_abandons_expensive_plans() {
    let cat = catalog();
    let reg = RuleRegistry::with_default_model();
    let est = Estimator::new(&reg, &cat);
    let plan = employee().build();
    let full = est.estimate(&plan).unwrap();

    let opts = EstimateOptions {
        cost_limit: Some(full.total_time / 2.0),
        ..Default::default()
    };
    assert!(est.estimate_report(&plan, &opts).unwrap().is_none());

    let opts = EstimateOptions {
        cost_limit: Some(full.total_time * 2.0),
        ..Default::default()
    };
    let report = est.estimate_report(&plan, &opts).unwrap().unwrap();
    assert_eq!(report.cost.total_time, full.total_time);
}

#[test]
fn cost_limit_prunes_midway_through_the_tree() {
    let cat = catalog();
    let reg = RuleRegistry::with_default_model();
    let est = Estimator::new(&reg, &cat);
    // A join whose children alone exceed the limit: the run must abandon
    // before finishing the root.
    let plan = employee().join(employee(), "salary", "salary").build();
    let scan = est.estimate(&employee().build()).unwrap();
    let opts = EstimateOptions {
        cost_limit: Some(scan.total_time * 0.9),
        ..Default::default()
    };
    assert!(est.estimate_report(&plan, &opts).unwrap().is_none());
}

#[test]
fn constant_rules_cut_child_subtrees() {
    let cat = catalog();
    // A constant rule for every variable at the root operator: children
    // need not be estimated at all (§4.2: "in the best case, the root node
    // has formulas containing only constants and consequently no recursive
    // traversal of the tree is performed").
    let reg = registry_with(
        "rule select($C, $P) {
            CountObject = 10; TotalSize = 100;
            TimeFirst = 1; TimeNext = 1; TotalTime = 50;
        }",
    );
    let est = Estimator::new(&reg, &cat);
    let plan = employee().select("salary", CompareOp::Eq, 5i64).build();
    let report = est
        .estimate_report(&plan, &EstimateOptions::default())
        .unwrap()
        .unwrap();
    assert_eq!(report.cost.total_time, 50.0);
    assert_eq!(report.nodes_visited, 1, "child scan should be cut");

    // Same plan under the pure generic model visits both nodes.
    let reg2 = RuleRegistry::with_default_model();
    let report2 = Estimator::new(&reg2, &cat)
        .estimate_report(&plan, &EstimateOptions::default())
        .unwrap()
        .unwrap();
    assert_eq!(report2.nodes_visited, 2);
}

#[test]
fn wrapper_param_recalibrates_generic_model() {
    let cat = catalog();
    // The wrapper exports only a parameter override — no rules. The
    // generic model must pick it up for this wrapper's operations.
    let reg = registry_with("let IO = 50;");
    let base = RuleRegistry::with_default_model();
    let plan = employee().build();
    let with_override = estimate(&reg, &cat, &plan);
    let without = estimate(&base, &cat, &plan);
    // Scan pays pages * IO; doubling IO from 25 to 50 adds pages*25.
    let pages = (1_200_000f64 / 4096.0).ceil();
    assert!((with_override.total_time - without.total_time - pages * 25.0).abs() < 1e-6);
}

#[test]
fn figure_13_yao_rule_beats_calibration_shape() {
    let cat = catalog();
    // Figure 13, expressed in the cost language with the yao() helper.
    let reg = registry_with(
        "let IO = 25.0;
         let Output = 9.0;
         let PageSize = 4096;
         rule select($C, salary = $V) {
            let CountPage = $C.TotalSize / PageSize;
            CountObject = $C.CountObject * selectivity(\"salary\", $V);
            TotalSize = CountObject * $C.ObjectSize;
            TimeFirst = 120 + IO;
            TimeNext = Output;
            TotalTime = IO * yao(CountObject, CountPage) + CountObject * Output;
         }",
    );
    let plan = employee()
        .select("salary", CompareOp::Eq, 10_000i64)
        .build();
    let c = estimate(&reg, &cat, &plan);
    // k = 100 qualifying objects over 293 pages.
    let pages = (1_200_000f64 / 4096.0).ceil();
    let yao = pages * (1.0 - (-100.0 / pages).exp());
    assert!((c.total_time - (25.0 * yao + 100.0 * 9.0)).abs() < 1e-6);
    // The generic calibrated estimate charges one page per object and is
    // higher (k*(IO+Output) + overhead vs IO*yao(k) + k*Output).
    let generic = RuleRegistry::with_default_model();
    let cal = estimate(&generic, &cat, &plan);
    assert!(cal.total_time > c.total_time);
}

#[test]
fn local_scope_prices_mediator_side_operators() {
    let cat = catalog();
    let reg = RuleRegistry::with_default_model();
    // submit(select(scan)) ⊳ mediator-side join of two subanswers: the
    // join node sits outside any wrapper and must use the local model
    // (hash join), not the generic wrapper-side model with Output costs.
    let sub = |v: i64| employee().select("salary", CompareOp::Le, v).submit("hr");
    let plan = sub(2_000).join(sub(3_000), "salary", "salary").build();
    let c = estimate(&reg, &cat, &plan);
    assert!(c.total_time > 0.0);
    // The mediator-level join adds only CPU over the submit costs.
    let left = estimate(&reg, &cat, &sub(2_000).build());
    let right = estimate(&reg, &cat, &sub(3_000).build());
    assert!(c.total_time >= left.total_time + right.total_time);
    let overheads = c.total_time - left.total_time - right.total_time;
    // Hash-join CPU is far below another full index-scan.
    assert!(
        overheads < left.total_time,
        "local join too expensive: {overheads}"
    );
}

#[test]
fn explain_shows_per_variable_attribution() {
    use disco_costlang::CostVar;

    let cat = catalog();
    // Wrapper provides only TotalTime at predicate scope; everything else
    // falls back to the default scope.
    let reg = registry_with("rule select(Employee, salary = $V) { TotalTime = 77; }");
    let est = Estimator::new(&reg, &cat);
    let plan = employee().select("salary", CompareOp::Eq, 5i64).build();
    let node = est
        .explain(&plan, &EstimateOptions::default())
        .unwrap()
        .unwrap();

    let tt = node.attribution(CostVar::TotalTime).unwrap();
    assert_eq!(tt.scope, disco_core::Scope::Predicate);
    assert_eq!(tt.value, 77.0);
    assert!(tt.rules[0].contains("wrapper hr"), "{:?}", tt.rules);

    let count = node.attribution(CostVar::CountObject).unwrap();
    assert_eq!(count.scope, disco_core::Scope::Default);

    // The child scan was estimated and appears in the tree.
    assert_eq!(node.children.len(), 1);
    assert!(node.children[0].operator.starts_with("scan"));

    // Rendering mentions the blend.
    let text = node.render();
    assert!(text.contains("predicate scope"), "{text}");
    assert!(text.contains("default scope"), "{text}");
}

#[test]
fn explain_records_min_combination() {
    let cat = catalog();
    let reg = registry_with(
        "rule select(Employee, $P) { TotalTime = 500; }
         rule select(Employee, $P) { TotalTime = 300; }",
    );
    let est = Estimator::new(&reg, &cat);
    let plan = employee().select("salary", CompareOp::Eq, 5i64).build();
    let node = est
        .explain(&plan, &EstimateOptions::default())
        .unwrap()
        .unwrap();
    let tt = node
        .attribution(disco_costlang::CostVar::TotalTime)
        .unwrap();
    assert_eq!(tt.rules.len(), 2);
    assert_eq!(tt.value, 300.0);
    assert!(node.render().contains("min of 2 rules"));
}

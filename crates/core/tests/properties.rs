// Gated: requires the `proptest` cargo feature (and the proptest
// dev-dependency, removed so offline builds succeed — see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property tests on estimator invariants.

use proptest::prelude::*;

use disco_algebra::{AggFunc, CompareOp, LogicalPlan, PlanBuilder};
use disco_catalog::{AttributeStats, Capabilities, Catalog, CollectionStats, ExtentStats};
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
use disco_core::{EstimateOptions, Estimator, RuleRegistry};

fn catalog(count: u64, distinct: u64, indexed: bool) -> Catalog {
    let mut c = Catalog::new();
    c.register_wrapper("w", Capabilities::full()).unwrap();
    let mut attr = AttributeStats::new(
        distinct.max(1),
        Value::Long(0),
        Value::Long(distinct.max(1) as i64 - 1),
    );
    attr.indexed = indexed;
    c.register_collection(
        "w",
        "T",
        schema(),
        CollectionStats::new(ExtentStats::of(count, 56)).with_attribute("a", attr),
    )
    .unwrap();
    c
}

fn schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("a", DataType::Long),
        AttributeDef::new("b", DataType::Long),
    ])
}

fn scan() -> PlanBuilder {
    PlanBuilder::scan(QualifiedName::new("w", "T"), schema())
}

/// A random linear plan over the one collection.
fn plan_strategy() -> impl Strategy<Value = LogicalPlan> {
    let op = prop::sample::select(vec![
        CompareOp::Eq,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
        CompareOp::Ne,
    ]);
    (
        prop::collection::vec((0usize..6, op, -10i64..3_000), 0..4),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(steps, project, aggregate)| {
            let mut b = scan();
            for (kind, op, v) in steps {
                b = match kind {
                    0..=2 => b.select("a", op, v),
                    3 => b.select("b", op, v),
                    4 => b.sort_asc(&["a"]),
                    _ => b.dedup(),
                };
            }
            if project {
                b = b.project_attrs(&["a"]);
            }
            if aggregate {
                b = b.aggregate(&[], vec![("n", AggFunc::Count, None)]);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Estimates are always finite and non-negative, for every variable,
    /// under arbitrary linear plans and catalog scales.
    #[test]
    fn estimates_are_finite_and_nonnegative(
        plan in plan_strategy(),
        count in 1u64..200_000,
        distinct in 1u64..10_000,
        indexed in any::<bool>(),
    ) {
        let cat = catalog(count, distinct, indexed);
        let reg = RuleRegistry::with_default_model();
        let est = Estimator::new(&reg, &cat);
        let c = est.estimate(&plan).unwrap();
        for v in disco_costlang::CostVar::ALL {
            let x = c.get(v);
            prop_assert!(x.is_finite(), "{v} = {x} for {plan:?}");
            prop_assert!(x >= 0.0, "{v} = {x} for {plan:?}");
        }
        // Cardinality never exceeds the base collection.
        prop_assert!(c.count_object <= count as f64 + 1e-6);
    }

    /// Wrapping a plan in `submit` adds communication cost and preserves
    /// the answer shape.
    #[test]
    fn submit_adds_cost_preserves_shape(
        plan in plan_strategy(),
        count in 1u64..50_000,
    ) {
        let cat = catalog(count, (count / 7).max(1), true);
        let reg = RuleRegistry::with_default_model();
        let est = Estimator::new(&reg, &cat);
        let bare = est.estimate(&plan).unwrap();
        let submitted = LogicalPlan::Submit { wrapper: "w".into(), input: Box::new(plan) };
        let sub = est.estimate(&submitted).unwrap();
        prop_assert!(sub.total_time > bare.total_time);
        prop_assert!((sub.count_object - bare.count_object).abs() < 1e-6);
    }

    /// The cost limit behaves as a threshold at the root: limits above
    /// the true cost keep the plan, limits below abandon it.
    #[test]
    fn cost_limit_is_a_threshold(
        plan in plan_strategy(),
        count in 1u64..50_000,
    ) {
        let cat = catalog(count, (count / 3).max(1), false);
        let reg = RuleRegistry::with_default_model();
        let est = Estimator::new(&reg, &cat);
        let full = est.estimate(&plan).unwrap();
        let above = EstimateOptions {
            cost_limit: Some(full.total_time * 1.01 + 1.0),
            ..Default::default()
        };
        prop_assert!(est.estimate_report(&plan, &above).unwrap().is_some());
        let below = EstimateOptions {
            cost_limit: Some(full.total_time * 0.99 - 1.0),
            ..Default::default()
        };
        prop_assert!(est.estimate_report(&plan, &below).unwrap().is_none());
    }

    /// Explain mode computes exactly the same cost as plain estimation
    /// and attributes every variable of every node.
    #[test]
    fn explain_is_faithful(
        plan in plan_strategy(),
        count in 1u64..50_000,
    ) {
        let cat = catalog(count, (count / 5).max(1), true);
        let reg = RuleRegistry::with_default_model();
        let est = Estimator::new(&reg, &cat);
        let plain = est.estimate(&plan).unwrap();
        let node = est.explain(&plan, &EstimateOptions::default()).unwrap().unwrap();
        prop_assert_eq!(node.cost, plain);
        fn check(n: &disco_core::ExplainNode) {
            assert_eq!(n.attributions.len(), 5, "{:?}", n.operator);
            for c in &n.children {
                check(c);
            }
        }
        check(&node);
    }
}

//! The buffer pool.
//!
//! Frames cache [`Page`]s read from a [`PageFile`]. Accessors pin a page
//! ([`PageRef`] unpins on drop); dirty frames are written back when
//! evicted (LRU over unpinned frames) or on [`BufferPool::flush`]. All
//! state sits behind one non-reentrant mutex, so callers must never pin
//! or allocate from *inside* a [`BufferPool::with_page_mut`] closure.
//!
//! Counters distinguish data (heap) from index (B+Tree) faults so cost
//! models can attribute I/O to the operator that caused it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use disco_common::{DiscoError, Result};

use crate::file::PageFile;
use crate::page::{Page, PageId, PageKind};

/// Snapshot of pool activity. Monotonic; diff two snapshots with
/// [`PoolCounters::delta`] to meter one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that went to disk.
    pub faults: u64,
    /// Faults on heap pages.
    pub data_faults: u64,
    /// Faults on B+Tree pages.
    pub index_faults: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back (eviction or flush).
    pub writebacks: u64,
}

impl PoolCounters {
    /// Activity since `since` was captured.
    pub fn delta(&self, since: &PoolCounters) -> PoolCounters {
        PoolCounters {
            hits: self.hits - since.hits,
            faults: self.faults - since.faults,
            data_faults: self.data_faults - since.data_faults,
            index_faults: self.index_faults - since.index_faults,
            evictions: self.evictions - since.evictions,
            writebacks: self.writebacks - since.writebacks,
        }
    }
}

#[derive(Debug)]
struct Frame {
    page: Arc<Page>,
    pins: u32,
    dirty: bool,
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    file: PageFile,
    capacity: usize,
    tick: u64,
    frames: HashMap<PageId, Frame>,
    counters: PoolCounters,
}

impl Inner {
    fn touch(frame: &mut Frame, tick: &mut u64) {
        *tick += 1;
        frame.last_used = *tick;
    }

    /// Make room for one more frame. LRU over unpinned frames, ties (only
    /// possible across pools, not within one) broken by page id so
    /// eviction order is a pure function of the access history.
    fn make_room(&mut self) -> Result<()> {
        while self.frames.len() >= self.capacity {
            let victim = self
                .frames
                .iter()
                .filter(|(_, f)| f.pins == 0)
                .map(|(&pid, f)| (f.last_used, pid))
                .min();
            let Some((_, pid)) = victim else {
                return Err(DiscoError::Source(format!(
                    "store: buffer pool exhausted ({} frames, all pinned)",
                    self.frames.len()
                )));
            };
            let frame = self.frames.remove(&pid).expect("victim frame present");
            if frame.dirty {
                self.file.write_page(pid, &frame.page)?;
                self.counters.writebacks += 1;
            }
            self.counters.evictions += 1;
        }
        Ok(())
    }

    /// Ensure `id` is resident, recording hit/fault, and return its frame.
    fn load(&mut self, id: PageId) -> Result<&mut Frame> {
        if self.frames.contains_key(&id) {
            self.counters.hits += 1;
        } else {
            self.make_room()?;
            let page = self.file.read_page(id)?;
            self.counters.faults += 1;
            match page.kind() {
                Some(PageKind::Heap) => self.counters.data_faults += 1,
                Some(PageKind::BTreeLeaf) | Some(PageKind::BTreeInternal) => {
                    self.counters.index_faults += 1
                }
                None => {}
            }
            self.frames.insert(
                id,
                Frame {
                    page: Arc::new(page),
                    pins: 0,
                    dirty: false,
                    last_used: 0,
                },
            );
        }
        let tick = &mut self.tick;
        let frame = self.frames.get_mut(&id).expect("frame just ensured");
        Self::touch(frame, tick);
        Ok(frame)
    }
}

/// A shared, thread-safe buffer pool over one page file.
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<Mutex<Inner>>,
}

/// A pinned page. Derefs to [`Page`]; the pin is released on drop, making
/// the frame evictable again.
pub struct PageRef {
    pool: BufferPool,
    id: PageId,
    page: Arc<Page>,
}

impl std::ops::Deref for PageRef {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.page
    }
}

impl PageRef {
    /// The pinned page's id.
    pub fn id(&self) -> PageId {
        self.id
    }
}

impl Drop for PageRef {
    fn drop(&mut self) {
        let mut inner = self.pool.inner.lock().expect("pool mutex");
        if let Some(frame) = inner.frames.get_mut(&self.id) {
            frame.pins = frame.pins.saturating_sub(1);
        }
    }
}

impl BufferPool {
    /// Wrap `file` with room for `capacity` resident pages.
    pub fn new(file: PageFile, capacity: usize) -> BufferPool {
        BufferPool {
            inner: Arc::new(Mutex::new(Inner {
                file,
                capacity: capacity.max(1),
                tick: 0,
                frames: HashMap::new(),
                counters: PoolCounters::default(),
            })),
        }
    }

    /// Allocate a fresh page of `kind`. Born dirty and resident; it
    /// reaches disk on eviction or flush.
    pub fn allocate(&self, kind: PageKind) -> Result<PageId> {
        let mut inner = self.inner.lock().expect("pool mutex");
        inner.make_room()?;
        let id = inner.file.allocate();
        let tick = &mut inner.tick;
        *tick += 1;
        let last_used = *tick;
        inner.frames.insert(
            id,
            Frame {
                page: Arc::new(Page::new(kind)),
                pins: 0,
                dirty: true,
                last_used,
            },
        );
        Ok(id)
    }

    /// Pin a page for reading. Counts a hit or fault.
    pub fn pin(&self, id: PageId) -> Result<PageRef> {
        let page = {
            let mut inner = self.inner.lock().expect("pool mutex");
            let frame = inner.load(id)?;
            frame.pins += 1;
            Arc::clone(&frame.page)
        };
        Ok(PageRef {
            pool: self.clone(),
            id,
            page,
        })
    }

    /// Mutate a page in place, marking it dirty. Counts a hit or fault.
    /// The closure MUST NOT call back into the pool (non-reentrant lock);
    /// callers that need a second page (e.g. B+Tree splits) allocate it
    /// *before* entering the closure.
    pub fn with_page_mut<T>(&self, id: PageId, f: impl FnOnce(&mut Page) -> T) -> Result<T> {
        let mut inner = self.inner.lock().expect("pool mutex");
        let frame = inner.load(id)?;
        frame.dirty = true;
        Ok(f(Arc::make_mut(&mut frame.page)))
    }

    /// Write every dirty frame back and sync the file.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock().expect("pool mutex");
        let mut dirty: Vec<PageId> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&pid, _)| pid)
            .collect();
        dirty.sort_unstable();
        for pid in dirty {
            let frame = self.clone_frame_page(&mut inner, pid);
            inner.file.write_page(pid, &frame)?;
            inner.counters.writebacks += 1;
            inner.frames.get_mut(&pid).expect("dirty frame").dirty = false;
        }
        inner.file.sync()
    }

    fn clone_frame_page(&self, inner: &mut Inner, pid: PageId) -> Arc<Page> {
        Arc::clone(&inner.frames.get(&pid).expect("dirty frame").page)
    }

    /// Flush, then drop every unpinned frame: the next access pattern
    /// starts against a cold cache. Counts neither hits nor evictions.
    pub fn clear_cache(&self) -> Result<()> {
        self.flush()?;
        let mut inner = self.inner.lock().expect("pool mutex");
        inner.frames.retain(|_, f| f.pins > 0);
        Ok(())
    }

    /// Current counter snapshot.
    pub fn counters(&self) -> PoolCounters {
        self.inner.lock().expect("pool mutex").counters
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.inner.lock().expect("pool mutex").frames.len()
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("pool mutex").capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize) -> BufferPool {
        let file = PageFile::create_temp("pool").unwrap();
        BufferPool::new(file, capacity)
    }

    #[test]
    fn allocate_write_read_through_pool() {
        let p = pool(4);
        let id = p.allocate(PageKind::Heap).unwrap();
        let slot = p
            .with_page_mut(id, |pg| pg.insert(b"hello pool").unwrap())
            .unwrap();
        let r = p.pin(id).unwrap();
        assert_eq!(r.record(slot).unwrap(), b"hello pool");
    }

    #[test]
    fn eviction_writes_back_and_refault_restores() {
        let p = pool(2);
        let ids: Vec<PageId> = (0..3)
            .map(|i| {
                let id = p.allocate(PageKind::Heap).unwrap();
                p.with_page_mut(id, |pg| pg.insert(format!("page {i}").as_bytes()).unwrap())
                    .unwrap();
                id
            })
            .collect();
        // Allocating page 2 evicted page 0 (LRU), writing it back.
        let c = p.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.writebacks, 1);
        // Touching page 0 again faults it back in, contents intact.
        let r = p.pin(ids[0]).unwrap();
        assert_eq!(r.record(0).unwrap(), b"page 0");
        let c = p.counters();
        assert_eq!(c.faults, 1);
        assert_eq!(c.data_faults, 1);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(2);
        let a = p.allocate(PageKind::Heap).unwrap();
        let b = p.allocate(PageKind::Heap).unwrap();
        let pin_a = p.pin(a).unwrap();
        let pin_b = p.pin(b).unwrap();
        // Pool full of pinned pages: a third allocation must fail cleanly.
        let err = p.allocate(PageKind::Heap).unwrap_err().to_string();
        assert!(err.contains("exhausted"), "{err}");
        drop(pin_a);
        // With a unpinned, allocation succeeds and evicts a.
        p.allocate(PageKind::Heap).unwrap();
        assert_eq!(p.counters().evictions, 1);
        drop(pin_b);
    }

    #[test]
    fn lru_prefers_least_recently_used() {
        let p = pool(2);
        let a = p.allocate(PageKind::Heap).unwrap();
        let b = p.allocate(PageKind::Heap).unwrap();
        p.flush().unwrap();
        // Touch a so b becomes LRU.
        drop(p.pin(a).unwrap());
        let _c = p.allocate(PageKind::Heap).unwrap();
        // b was evicted: re-pinning it faults, re-pinning a hits.
        let before = p.counters();
        drop(p.pin(a).unwrap());
        assert_eq!(p.counters().faults, before.faults);
        drop(p.pin(b).unwrap());
        assert_eq!(p.counters().faults, before.faults + 1);
    }

    #[test]
    fn clear_cache_forces_cold_start() {
        let p = pool(8);
        let id = p.allocate(PageKind::BTreeLeaf).unwrap();
        p.with_page_mut(id, |pg| pg.insert(b"cold").unwrap())
            .unwrap();
        p.clear_cache().unwrap();
        assert_eq!(p.resident(), 0);
        let before = p.counters();
        let r = p.pin(id).unwrap();
        assert_eq!(r.record(0).unwrap(), b"cold");
        let d = p.counters().delta(&before);
        assert_eq!(d.faults, 1);
        assert_eq!(d.index_faults, 1);
        assert_eq!(d.hits, 0);
    }

    #[test]
    fn counters_delta() {
        let p = pool(4);
        let id = p.allocate(PageKind::Heap).unwrap();
        p.clear_cache().unwrap();
        let before = p.counters();
        drop(p.pin(id).unwrap());
        drop(p.pin(id).unwrap());
        let d = p.counters().delta(&before);
        assert_eq!(d.faults, 1);
        assert_eq!(d.hits, 1);
    }
}

//! # disco-store
//!
//! A real disk-backed paged storage engine beneath the federation: 4 KB
//! slotted heap pages with checksummed headers, an on-disk B+-tree, and
//! a buffer pool with pin/unpin, dirty tracking, and LRU eviction — all
//! over `std::fs::File`, no external dependencies.
//!
//! The simulated pager in `disco-sources` *charges* a virtual clock for
//! page faults it never performs; this crate performs them, so Yao's
//! `pages_touched` prediction (the paper's Figure 12 experiment) can be
//! validated against page fetches that actually happened. Load-time
//! placement reproduces the simulated layout bit-for-bit — same seed
//! stream, same objects-per-page formula — making fault counts directly
//! comparable across the two engines.
//!
//! Layering, bottom up:
//!
//! | module   | responsibility |
//! |----------|----------------|
//! | [`page`] | slotted 4 KB pages: header, slot directory, compaction |
//! | [`codec`]| tuple ⇄ record bytes, index key encoding |
//! | [`file`] | page-granular `File` I/O with checksum validation |
//! | [`buffer`] | frame cache, pin/unpin, LRU eviction, fault counters |
//! | [`heap`] | unordered record files, bulk append, rid addressing |
//! | [`btree`] | on-disk B+-tree with leaf-chained range scans |
//! | [`engine`] | named collections, bulk load, metered sessions |

pub mod btree;
pub mod buffer;
pub mod codec;
pub mod engine;
pub mod file;
pub mod heap;
pub mod page;

pub use btree::DiskBTree;
pub use buffer::{BufferPool, PageRef, PoolCounters};
pub use engine::{
    DiskCollection, DiskCollectionBuilder, DiskStore, DiskStoreBuilder, Placement, StoreSession,
};
pub use file::PageFile;
pub use heap::{HeapBuilder, HeapFile, Rid};
pub use page::{Page, PageId, PageKind, HEADER_SIZE, NO_PAGE, PAGE_SIZE};

//! An on-disk B+-tree over buffer-pool pages.
//!
//! Leaf cells hold `key · u16 rid-count · rids`; internal cells hold
//! `key · u64 child`, with the leftmost child in the page's `aux` field.
//! Keys order under [`Value::total_cmp_value`] — the same total order as
//! the in-memory tree in `disco-sources`, so both indexes answer every
//! comparison identically. Leaves chain through `next` for range scans.
//!
//! Inserts rewrite the touched page from a decoded copy (read cells,
//! splice, re-encode): pages stay compact without in-place slot surgery,
//! and splits pre-allocate the right sibling *before* mutating either
//! page — the buffer pool's lock is not reentrant. Like the in-memory
//! tree, deletion is out of scope: stores bulk-load at startup and the
//! workloads are read-only.
//!
//! One key's rid list must fit a single cell (~500 rids); indexing an
//! attribute with heavier duplication than that is rejected at build
//! time rather than silently mis-answered.

use std::cmp::Ordering;

use disco_algebra::CompareOp;
use disco_common::{DiscoError, Result, Value};

use crate::buffer::BufferPool;
use crate::codec::{decode_value, encode_key};
use crate::heap::Rid;
use crate::page::{Page, PageId, PageKind, HEADER_SIZE, PAGE_SIZE};

/// Per-slot directory overhead when sizing cells against a page.
const SLOT_COST: usize = 4;

fn cells_fit(cells: &[Vec<u8>]) -> bool {
    let used: usize = cells.iter().map(|c| SLOT_COST + c.len()).sum();
    HEADER_SIZE + used <= PAGE_SIZE
}

#[derive(Debug, Clone)]
struct LeafCell {
    key: Value,
    key_bytes: Vec<u8>,
    rids: Vec<Rid>,
}

impl LeafCell {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.key_bytes.len() + 2 + self.rids.len() * 8);
        out.extend_from_slice(&self.key_bytes);
        out.extend_from_slice(&(self.rids.len() as u16).to_le_bytes());
        for rid in &self.rids {
            out.extend_from_slice(&rid.to_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<LeafCell> {
        let mut pos = 0;
        let key = decode_value(bytes, &mut pos)?;
        let key_bytes = bytes[..pos].to_vec();
        let n = bytes
            .get(pos..pos + 2)
            .map(|b| u16::from_le_bytes(b.try_into().expect("2 bytes")) as usize)
            .ok_or_else(|| DiscoError::Source("store: truncated leaf cell".into()))?;
        pos += 2;
        let mut rids = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = bytes
                .get(pos..pos + 8)
                .ok_or_else(|| DiscoError::Source("store: truncated leaf cell rids".into()))?;
            rids.push(Rid::from_bytes(raw)?);
            pos += 8;
        }
        Ok(LeafCell {
            key,
            key_bytes,
            rids,
        })
    }
}

#[derive(Debug, Clone)]
struct InnerCell {
    key: Value,
    key_bytes: Vec<u8>,
    child: PageId,
}

impl InnerCell {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.key_bytes.len() + 8);
        out.extend_from_slice(&self.key_bytes);
        out.extend_from_slice(&self.child.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<InnerCell> {
        let mut pos = 0;
        let key = decode_value(bytes, &mut pos)?;
        let key_bytes = bytes[..pos].to_vec();
        let child = bytes
            .get(pos..pos + 8)
            .map(|b| PageId::from_le_bytes(b.try_into().expect("8 bytes")))
            .ok_or_else(|| DiscoError::Source("store: truncated inner cell".into()))?;
        Ok(InnerCell {
            key,
            key_bytes,
            child,
        })
    }
}

/// What an insert into a subtree reports upward.
type Split = Option<(Vec<u8>, PageId)>;

/// The on-disk B+-tree.
#[derive(Debug, Clone)]
pub struct DiskBTree {
    pool: BufferPool,
    root: PageId,
    height: usize,
    len: usize,
}

impl DiskBTree {
    /// Empty tree: a single leaf root.
    pub fn new(pool: BufferPool) -> Result<DiskBTree> {
        let root = pool.allocate(PageKind::BTreeLeaf)?;
        Ok(DiskBTree {
            pool,
            root,
            height: 1,
            len: 0,
        })
    }

    /// Build from `(value, rid)` pairs in iteration order (rid lists per
    /// key keep that order, matching the in-memory tree).
    pub fn build(
        pool: BufferPool,
        entries: impl IntoIterator<Item = (Value, Rid)>,
    ) -> Result<DiskBTree> {
        let mut t = DiskBTree::new(pool)?;
        for (v, r) in entries {
            t.insert(v, r)?;
        }
        Ok(t)
    }

    /// Number of (key, rid) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Insert one entry.
    pub fn insert(&mut self, value: Value, rid: Rid) -> Result<()> {
        if let Some((sep_bytes, right)) = self.insert_rec(self.root, self.height, &value, rid)? {
            let new_root = self.pool.allocate(PageKind::BTreeInternal)?;
            let old_root = self.root;
            let cell = InnerCell {
                key: Value::Null, // unused: encode() only reads key_bytes
                key_bytes: sep_bytes,
                child: right,
            }
            .encode();
            self.pool.with_page_mut(new_root, |pg| {
                pg.set_aux(old_root);
                assert!(pg.insert_at(0, &cell), "fresh root holds one cell");
            })?;
            self.root = new_root;
            self.height += 1;
        }
        self.len += 1;
        Ok(())
    }

    fn read_leaf(&self, pid: PageId) -> Result<(Vec<LeafCell>, Option<PageId>)> {
        let page = self.pool.pin(pid)?;
        let next = page.next();
        let cells = page
            .records()
            .map(|(_, bytes)| LeafCell::decode(bytes))
            .collect::<Result<Vec<_>>>()?;
        Ok((cells, next))
    }

    fn read_inner(&self, pid: PageId) -> Result<(PageId, Vec<InnerCell>)> {
        let page = self.pool.pin(pid)?;
        let leftmost = page.aux();
        let cells = page
            .records()
            .map(|(_, bytes)| InnerCell::decode(bytes))
            .collect::<Result<Vec<_>>>()?;
        Ok((leftmost, cells))
    }

    /// Rewrite `pid` from scratch with `cells` in order. Callers checked
    /// [`cells_fit`] first.
    fn rewrite(
        &self,
        pid: PageId,
        kind: PageKind,
        aux: u64,
        next: Option<PageId>,
        cells: &[Vec<u8>],
    ) -> Result<()> {
        self.pool.with_page_mut(pid, |pg: &mut Page| {
            pg.init(kind);
            pg.set_aux(aux);
            pg.set_next(next);
            for (i, cell) in cells.iter().enumerate() {
                assert!(pg.insert_at(i, cell), "cells pre-checked to fit");
            }
        })
    }

    fn insert_rec(&mut self, pid: PageId, level: usize, value: &Value, rid: Rid) -> Result<Split> {
        if level == 1 {
            return self.insert_leaf(pid, value, rid);
        }
        let (leftmost, mut cells) = self.read_inner(pid)?;
        // Route exactly like the in-memory tree: child i+1 covers
        // keys >= cells[i].key.
        let mut pos = 0;
        for (i, c) in cells.iter().enumerate() {
            if value.total_cmp_value(&c.key) != Ordering::Less {
                pos = i + 1;
            } else {
                break;
            }
        }
        let child = if pos == 0 {
            leftmost
        } else {
            cells[pos - 1].child
        };
        let Some((sep_bytes, new_right)) = self.insert_rec(child, level - 1, value, rid)? else {
            return Ok(None);
        };
        let sep_key = {
            let mut p = 0;
            decode_value(&sep_bytes, &mut p)?
        };
        let at = cells
            .binary_search_by(|c| c.key.total_cmp_value(&sep_key))
            .unwrap_or_else(|i| i);
        cells.insert(
            at,
            InnerCell {
                key: sep_key,
                key_bytes: sep_bytes,
                child: new_right,
            },
        );
        let encoded: Vec<Vec<u8>> = cells.iter().map(InnerCell::encode).collect();
        if cells_fit(&encoded) {
            self.rewrite(pid, PageKind::BTreeInternal, leftmost, None, &encoded)?;
            return Ok(None);
        }
        // Split: the middle cell's key moves up; its child becomes the
        // right sibling's leftmost. Allocate before touching either page.
        let right_pid = self.pool.allocate(PageKind::BTreeInternal)?;
        let mid = cells.len() / 2;
        let up = cells[mid].clone();
        let left_enc: Vec<Vec<u8>> = cells[..mid].iter().map(InnerCell::encode).collect();
        let right_enc: Vec<Vec<u8>> = cells[mid + 1..].iter().map(InnerCell::encode).collect();
        self.rewrite(pid, PageKind::BTreeInternal, leftmost, None, &left_enc)?;
        self.rewrite(
            right_pid,
            PageKind::BTreeInternal,
            up.child,
            None,
            &right_enc,
        )?;
        Ok(Some((up.key_bytes, right_pid)))
    }

    fn insert_leaf(&mut self, pid: PageId, value: &Value, rid: Rid) -> Result<Split> {
        let (mut cells, next) = self.read_leaf(pid)?;
        match cells.binary_search_by(|c| c.key.total_cmp_value(value)) {
            Ok(i) => cells[i].rids.push(rid),
            Err(i) => cells.insert(
                i,
                LeafCell {
                    key: value.clone(),
                    key_bytes: encode_key(value),
                    rids: vec![rid],
                },
            ),
        }
        let encoded: Vec<Vec<u8>> = cells.iter().map(LeafCell::encode).collect();
        if let Some(c) = encoded
            .iter()
            .find(|c| HEADER_SIZE + SLOT_COST + c.len() > PAGE_SIZE)
        {
            return Err(DiscoError::Source(format!(
                "store: index cell of {} bytes exceeds one page — too many \
                 duplicate rids for a single key",
                c.len()
            )));
        }
        if cells_fit(&encoded) {
            self.rewrite(pid, PageKind::BTreeLeaf, 0, next, &encoded)?;
            return Ok(None);
        }
        let right_pid = self.pool.allocate(PageKind::BTreeLeaf)?;
        let mid = cells.len() / 2;
        let sep_bytes = cells[mid].key_bytes.clone();
        let left_enc: Vec<Vec<u8>> = cells[..mid].iter().map(LeafCell::encode).collect();
        let right_enc: Vec<Vec<u8>> = cells[mid..].iter().map(LeafCell::encode).collect();
        self.rewrite(pid, PageKind::BTreeLeaf, 0, Some(right_pid), &left_enc)?;
        self.rewrite(right_pid, PageKind::BTreeLeaf, 0, next, &right_enc)?;
        Ok(Some((sep_bytes, right_pid)))
    }

    fn leaf_for(&self, value: &Value) -> Result<PageId> {
        let mut pid = self.root;
        for _ in 1..self.height {
            let (leftmost, cells) = self.read_inner(pid)?;
            let mut child = leftmost;
            for c in &cells {
                if value.total_cmp_value(&c.key) != Ordering::Less {
                    child = c.child;
                } else {
                    break;
                }
            }
            pid = child;
        }
        Ok(pid)
    }

    fn first_leaf(&self) -> Result<PageId> {
        let mut pid = self.root;
        for _ in 1..self.height {
            let (leftmost, _) = self.read_inner(pid)?;
            pid = leftmost;
        }
        Ok(pid)
    }

    /// Rids with exactly `value`, in insertion order.
    pub fn lookup(&self, value: &Value) -> Result<Vec<Rid>> {
        let leaf = self.leaf_for(value)?;
        let (cells, _) = self.read_leaf(leaf)?;
        Ok(cells
            .binary_search_by(|c| c.key.total_cmp_value(value))
            .map(|i| cells[i].rids.clone())
            .unwrap_or_default())
    }

    /// Rids matching `op value`, in key order — same contract as the
    /// in-memory tree: `Ne` returns `None` (an index gives no benefit).
    pub fn scan(&self, op: CompareOp, value: &Value) -> Result<Option<Vec<Rid>>> {
        let mut out = Vec::new();
        match op {
            CompareOp::Eq => out.extend(self.lookup(value)?),
            CompareOp::Ne => return Ok(None),
            CompareOp::Lt | CompareOp::Le => {
                let mut leaf = Some(self.first_leaf()?);
                'walk: while let Some(pid) = leaf {
                    let (cells, next) = self.read_leaf(pid)?;
                    for c in &cells {
                        let ord = c.key.total_cmp_value(value);
                        let keep = match op {
                            CompareOp::Lt => ord == Ordering::Less,
                            _ => ord != Ordering::Greater,
                        };
                        if keep {
                            out.extend_from_slice(&c.rids);
                        } else {
                            break 'walk;
                        }
                    }
                    leaf = next;
                }
            }
            CompareOp::Gt | CompareOp::Ge => {
                let mut leaf = Some(self.leaf_for(value)?);
                while let Some(pid) = leaf {
                    let (cells, next) = self.read_leaf(pid)?;
                    for c in &cells {
                        let ord = c.key.total_cmp_value(value);
                        let keep = match op {
                            CompareOp::Gt => ord == Ordering::Greater,
                            _ => ord != Ordering::Less,
                        };
                        if keep {
                            out.extend_from_slice(&c.rids);
                        }
                    }
                    leaf = next;
                }
            }
        }
        Ok(Some(out))
    }

    /// Distinct keys, walking the leaf chain.
    pub fn distinct_keys(&self) -> Result<usize> {
        let mut count = 0;
        let mut leaf = Some(self.first_leaf()?);
        while let Some(pid) = leaf {
            let (cells, next) = self.read_leaf(pid)?;
            count += cells.len();
            leaf = next;
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::PageFile;
    use disco_common::rng;

    fn pool() -> BufferPool {
        BufferPool::new(PageFile::create_temp("btree").unwrap(), 256)
    }

    fn rid(n: u32) -> Rid {
        Rid {
            page: n / 70,
            slot: (n % 70) as u16,
        }
    }

    #[test]
    fn single_leaf_lookup() {
        let mut t = DiskBTree::new(pool()).unwrap();
        for i in [5i64, 1, 9, 3] {
            t.insert(Value::Long(i), rid(i as u32)).unwrap();
        }
        assert_eq!(t.height(), 1);
        assert_eq!(t.lookup(&Value::Long(9)).unwrap(), vec![rid(9)]);
        assert!(t.lookup(&Value::Long(7)).unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_keep_insertion_order() {
        let mut t = DiskBTree::new(pool()).unwrap();
        for n in [3u32, 1, 2] {
            t.insert(Value::Str("dup".into()), rid(n)).unwrap();
        }
        assert_eq!(
            t.lookup(&Value::Str("dup".into())).unwrap(),
            vec![rid(3), rid(1), rid(2)]
        );
    }

    #[test]
    fn splits_grow_the_tree_and_preserve_answers() {
        let mut t = DiskBTree::new(pool()).unwrap();
        let mut order: Vec<u32> = (0..2000).collect();
        let perm = rng::permutation(&mut rng::seeded(rng::DEFAULT_SEED, "btree-shuffle"), 2000);
        order.sort_by_key(|&i| perm[i as usize]);
        for &i in &order {
            t.insert(Value::Long(i as i64), rid(i)).unwrap();
        }
        assert!(t.height() >= 2, "2000 distinct keys must split");
        assert_eq!(t.len(), 2000);
        for i in (0..2000).step_by(97) {
            assert_eq!(
                t.lookup(&Value::Long(i as i64)).unwrap(),
                vec![rid(i as u32)]
            );
        }
        assert_eq!(t.distinct_keys().unwrap(), 2000);
    }

    #[test]
    fn matches_in_memory_scan_semantics() {
        // Differential check against disco-sources' in-memory tree over
        // the same entries, for every comparison operator.
        let mut r = rng::seeded(rng::DEFAULT_SEED, "btree-diff");
        let values: Vec<i64> = (0..600).map(|_| (r.next_u64() % 97) as i64).collect();
        let mut disk = DiskBTree::new(pool()).unwrap();
        let mut rows: Vec<(i64, u32)> = Vec::new();
        for (n, &v) in values.iter().enumerate() {
            disk.insert(Value::Long(v), rid(n as u32)).unwrap();
            rows.push((v, n as u32));
        }
        let probe = Value::Long(48);
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            let got = disk.scan(op, &probe).unwrap();
            // Reference: sort by (key, insertion) and filter.
            let expect: Option<Vec<Rid>> = match op {
                CompareOp::Ne => None,
                _ => {
                    let mut sorted = rows.clone();
                    sorted.sort_by_key(|&(v, n)| (v, n));
                    Some(
                        sorted
                            .iter()
                            .filter(|&&(v, _)| match op {
                                CompareOp::Eq => v == 48,
                                CompareOp::Lt => v < 48,
                                CompareOp::Le => v <= 48,
                                CompareOp::Gt => v > 48,
                                CompareOp::Ge => v >= 48,
                                CompareOp::Ne => unreachable!(),
                            })
                            .map(|&(_, n)| rid(n))
                            .collect(),
                    )
                }
            };
            assert_eq!(got, expect, "{op:?}");
        }
    }

    #[test]
    fn range_scan_across_leaves() {
        let mut t = DiskBTree::new(pool()).unwrap();
        for i in 0..3000i64 {
            t.insert(Value::Long(i), rid(i as u32)).unwrap();
        }
        let got = t.scan(CompareOp::Ge, &Value::Long(2990)).unwrap().unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0], rid(2990));
        let low = t.scan(CompareOp::Lt, &Value::Long(5)).unwrap().unwrap();
        assert_eq!(low, (0..5).map(|i| rid(i as u32)).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_type_keys_follow_total_order() {
        let mut t = DiskBTree::new(pool()).unwrap();
        t.insert(Value::Null, rid(0)).unwrap();
        t.insert(Value::Long(1), rid(1)).unwrap();
        t.insert(Value::Str("s".into()), rid(2)).unwrap();
        t.insert(Value::Bool(true), rid(3)).unwrap();
        t.insert(Value::Double(0.5), rid(4)).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.distinct_keys().unwrap(), 5);
        assert_eq!(t.lookup(&Value::Str("s".into())).unwrap(), vec![rid(2)]);
    }

    #[test]
    fn oversized_rid_list_rejected() {
        let mut t = DiskBTree::new(pool()).unwrap();
        let mut hit_limit = false;
        for n in 0..2000u32 {
            match t.insert(Value::Long(7), rid(n)) {
                Ok(()) => {}
                Err(e) => {
                    assert!(e.to_string().contains("duplicate"), "{e}");
                    hit_limit = true;
                    break;
                }
            }
        }
        assert!(hit_limit, "a ~16 KB rid list cannot fit a 4 KB page");
    }
}

//! The 4 KiB slotted page.
//!
//! Layout (offsets in bytes):
//!
//! ```text
//! 0                4     5     6           8          10    12         20        28
//! +----------------+-----+-----+-----------+----------+-----+----------+---------+--
//! | checksum (u32) |magic|kind | slots u16 | free_end | pad | next u64 | aux u64 | slot dir …
//! +----------------+-----+-----+-----------+----------+-----+----------+---------+--
//!                                              … free space …        ← records grow down
//! +------------------------------------------------------------------------------+
//! |                                                              … record area → |
//! +------------------------------------------------------------------------------+ 4096
//! ```
//!
//! The slot directory grows upward from the header (4 bytes per slot:
//! record offset `u16`, record length `u16`); records grow downward from
//! the page end. `free_end` is the lowest byte of the record area, so
//! free space is the gap between the directory and `free_end`. A deleted
//! slot keeps its index (heap RIDs stay stable) with offset `0` — no
//! live record can start inside the header — and its bytes become
//! garbage that [`Page::compact`] reclaims.
//!
//! The checksum (FNV-1a over bytes 4..4096) is computed when a page is
//! written to disk and verified when it is read back; in-memory
//! mutations leave it stale on purpose.

use disco_common::{DiscoError, Result};

/// Page size in bytes. Fixed: the OO7 experiment layout (§5) and the
/// cost rules' `PageSize` parameter both assume 4 096.
pub const PAGE_SIZE: usize = 4_096;

/// Identifies a page within a [`crate::file::PageFile`].
pub type PageId = u64;

/// Sentinel for "no next page" in the chain field.
pub const NO_PAGE: u64 = u64::MAX;

const MAGIC: u8 = 0xD5;
/// Header bytes before the slot directory.
pub const HEADER_SIZE: usize = 28;
const SLOT_SIZE: usize = 4;

const OFF_CHECKSUM: usize = 0;
const OFF_MAGIC: usize = 4;
const OFF_KIND: usize = 5;
const OFF_SLOTS: usize = 6;
const OFF_FREE_END: usize = 8;
const OFF_NEXT: usize = 12;
const OFF_AUX: usize = 20;

/// What a page stores. Stored in the header so the buffer pool can
/// attribute faults to data vs index I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Heap page holding encoded tuples.
    Heap,
    /// B+Tree leaf: cells of `key → RID list`.
    BTreeLeaf,
    /// B+Tree internal node: cells of `separator key → child page`.
    BTreeInternal,
}

impl PageKind {
    fn code(self) -> u8 {
        match self {
            PageKind::Heap => 1,
            PageKind::BTreeLeaf => 2,
            PageKind::BTreeInternal => 3,
        }
    }

    fn from_code(c: u8) -> Option<PageKind> {
        Some(match c {
            1 => PageKind::Heap,
            2 => PageKind::BTreeLeaf,
            3 => PageKind::BTreeInternal,
            _ => return None,
        })
    }
}

/// One 4 KiB page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("kind", &self.kind())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

/// FNV-1a over the checksummed region (everything after the checksum
/// field itself).
pub fn checksum(data: &[u8; PAGE_SIZE]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in &data[OFF_MAGIC..] {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl Page {
    /// A fresh, initialized page of the given kind.
    pub fn new(kind: PageKind) -> Page {
        let mut p = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.init(kind);
        p
    }

    /// A page around raw bytes read from disk (header unvalidated; see
    /// [`Page::validate`]).
    pub fn from_bytes(data: Box<[u8; PAGE_SIZE]>) -> Page {
        Page { data }
    }

    /// Reset to an empty page of the given kind (also clears the chain
    /// pointer and aux field).
    pub fn init(&mut self, kind: PageKind) {
        self.data.fill(0);
        self.data[OFF_MAGIC] = MAGIC;
        self.data[OFF_KIND] = kind.code();
        self.put_u16(OFF_SLOTS, 0);
        self.put_u16(OFF_FREE_END, PAGE_SIZE as u16);
        self.put_u64(OFF_NEXT, NO_PAGE);
    }

    /// Raw bytes (for writing to disk).
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Stamp the checksum over the current contents (done by the page
    /// file just before a write).
    pub fn seal(&mut self) {
        let c = checksum(&self.data);
        self.put_u32(OFF_CHECKSUM, c);
    }

    /// Verify magic and checksum after a read from disk.
    pub fn validate(&self) -> Result<()> {
        if self.data[OFF_MAGIC] != MAGIC {
            return Err(DiscoError::Source(
                "store: page magic mismatch (torn or foreign page)".into(),
            ));
        }
        let stored = self.get_u32(OFF_CHECKSUM);
        let actual = checksum(&self.data);
        if stored != actual {
            return Err(DiscoError::Source(format!(
                "store: page checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        Ok(())
    }

    /// The page kind stored in the header.
    pub fn kind(&self) -> Option<PageKind> {
        PageKind::from_code(self.data[OFF_KIND])
    }

    /// Number of slots in the directory (live and dead).
    pub fn slot_count(&self) -> usize {
        self.get_u16(OFF_SLOTS) as usize
    }

    /// Chain pointer: next heap page / right leaf sibling.
    pub fn next(&self) -> Option<PageId> {
        let n = self.get_u64(OFF_NEXT);
        (n != NO_PAGE).then_some(n)
    }

    /// Set the chain pointer.
    pub fn set_next(&mut self, next: Option<PageId>) {
        self.put_u64(OFF_NEXT, next.unwrap_or(NO_PAGE));
    }

    /// Auxiliary header field (B+Tree internal nodes keep their leftmost
    /// child here).
    pub fn aux(&self) -> u64 {
        self.get_u64(OFF_AUX)
    }

    /// Set the auxiliary field.
    pub fn set_aux(&mut self, v: u64) {
        self.put_u64(OFF_AUX, v);
    }

    fn dir_end(&self) -> usize {
        HEADER_SIZE + SLOT_SIZE * self.slot_count()
    }

    fn free_end(&self) -> usize {
        self.get_u16(OFF_FREE_END) as usize
    }

    /// Contiguous free bytes between the slot directory and the record
    /// area (garbage from deleted records not included — see
    /// [`Page::compact`]).
    pub fn free_space(&self) -> usize {
        self.free_end().saturating_sub(self.dir_end())
    }

    fn slot(&self, idx: usize) -> Option<(usize, usize)> {
        if idx >= self.slot_count() {
            return None;
        }
        let at = HEADER_SIZE + SLOT_SIZE * idx;
        let off = self.get_u16(at) as usize;
        let len = self.get_u16(at + 2) as usize;
        Some((off, len))
    }

    fn set_slot(&mut self, idx: usize, off: usize, len: usize) {
        let at = HEADER_SIZE + SLOT_SIZE * idx;
        self.put_u16(at, off as u16);
        self.put_u16(at + 2, len as u16);
    }

    /// Record bytes of a live slot (`None` for dead or out-of-range
    /// slots).
    pub fn record(&self, idx: usize) -> Option<&[u8]> {
        let (off, len) = self.slot(idx)?;
        (off != 0).then(|| &self.data[off..off + len])
    }

    /// Live `(slot, bytes)` pairs in slot order.
    pub fn records(&self) -> impl Iterator<Item = (usize, &[u8])> {
        (0..self.slot_count()).filter_map(|i| self.record(i).map(|r| (i, r)))
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        self.records().count()
    }

    /// Allocate record space from the free gap, compacting first when
    /// the gap alone is too small. Returns the record offset.
    fn allocate(&mut self, len: usize, extra_dir: usize) -> Option<usize> {
        if self.free_space() < len + extra_dir {
            self.compact();
            if self.free_space() < len + extra_dir {
                return None;
            }
        }
        let off = self.free_end() - len;
        self.put_u16(OFF_FREE_END, off as u16);
        Some(off)
    }

    /// Insert a record, reusing the first dead slot if any, else
    /// appending a new one. Returns the slot index, or `None` when the
    /// page is full even after compaction.
    pub fn insert(&mut self, bytes: &[u8]) -> Option<usize> {
        let reuse = (0..self.slot_count()).find(|&i| self.slot(i).is_some_and(|(off, _)| off == 0));
        let extra_dir = if reuse.is_some() { 0 } else { SLOT_SIZE };
        let off = self.allocate(bytes.len(), extra_dir)?;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        let idx = match reuse {
            Some(i) => i,
            None => {
                let i = self.slot_count();
                self.put_u16(OFF_SLOTS, (i + 1) as u16);
                i
            }
        };
        self.set_slot(idx, off, bytes.len());
        Some(idx)
    }

    /// Insert a record *at* slot index `idx`, shifting later slots up —
    /// B+Tree pages keep their cells in key order this way. All slots
    /// must be live (trees never leave dead slots).
    pub fn insert_at(&mut self, idx: usize, bytes: &[u8]) -> bool {
        let n = self.slot_count();
        debug_assert!(idx <= n, "insert_at past directory end");
        let Some(off) = self.allocate(bytes.len(), SLOT_SIZE) else {
            return false;
        };
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        // Shift directory entries [idx, n) up one slot.
        let start = HEADER_SIZE + SLOT_SIZE * idx;
        let end = HEADER_SIZE + SLOT_SIZE * n;
        self.data.copy_within(start..end, start + SLOT_SIZE);
        self.put_u16(OFF_SLOTS, (n + 1) as u16);
        self.set_slot(idx, off, bytes.len());
        true
    }

    /// Replace the record at a live slot. Shrinks in place; growth
    /// allocates fresh space (the old bytes become garbage). Returns
    /// `false` when the page cannot hold the new record.
    pub fn replace(&mut self, idx: usize, bytes: &[u8]) -> bool {
        let Some((off, len)) = self.slot(idx) else {
            return false;
        };
        if off == 0 {
            return false;
        }
        if bytes.len() <= len {
            self.data[off..off + bytes.len()].copy_from_slice(bytes);
            self.set_slot(idx, off, bytes.len());
            return true;
        }
        // Growing: retire the old copy, then compact-and-allocate. Mark
        // the slot dead first so compaction drops the old bytes.
        self.set_slot(idx, 0, 0);
        let Some(new_off) = self.allocate(bytes.len(), 0) else {
            return false;
        };
        self.data[new_off..new_off + bytes.len()].copy_from_slice(bytes);
        self.set_slot(idx, new_off, bytes.len());
        true
    }

    /// Mark a slot dead, keeping its index (heap RIDs stay stable).
    /// Returns `false` for dead or out-of-range slots.
    pub fn delete(&mut self, idx: usize) -> bool {
        match self.slot(idx) {
            Some((off, _)) if off != 0 => {
                self.set_slot(idx, 0, 0);
                true
            }
            _ => false,
        }
    }

    /// Remove a slot entirely, shifting later slots down — the B+Tree
    /// variant of deletion, where cell indexes are positional.
    pub fn remove_at(&mut self, idx: usize) {
        let n = self.slot_count();
        debug_assert!(idx < n, "remove_at past directory end");
        self.set_slot(idx, 0, 0);
        let start = HEADER_SIZE + SLOT_SIZE * (idx + 1);
        let end = HEADER_SIZE + SLOT_SIZE * n;
        self.data.copy_within(start..end, start - SLOT_SIZE);
        self.put_u16(OFF_SLOTS, (n - 1) as u16);
    }

    /// Squeeze out garbage: repack live records against the page end so
    /// the free gap is contiguous again. Slot indexes are preserved.
    pub fn compact(&mut self) {
        let mut live: Vec<(usize, usize, usize)> = (0..self.slot_count())
            .filter_map(|i| {
                self.slot(i)
                    .filter(|&(off, _)| off != 0)
                    .map(|(o, l)| (i, o, l))
            })
            .collect();
        // Repack highest-offset first so moves never overwrite unread
        // source bytes (records only ever move toward the page end).
        live.sort_by_key(|&(_, off, _)| std::cmp::Reverse(off));
        let mut free_end = PAGE_SIZE;
        for (idx, off, len) in live {
            let new_off = free_end - len;
            self.data.copy_within(off..off + len, new_off);
            self.set_slot(idx, new_off, len);
            free_end = new_off;
        }
        self.put_u16(OFF_FREE_END, free_end as u16);
    }

    fn get_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn put_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn get_u32(&self, at: usize) -> u32 {
        u32::from_le_bytes(self.data[at..at + 4].try_into().expect("4 bytes"))
    }

    fn put_u32(&mut self, at: usize, v: u32) {
        self.data[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    fn get_u64(&self, at: usize) -> u64 {
        u64::from_le_bytes(self.data[at..at + 8].try_into().expect("8 bytes"))
    }

    fn put_u64(&mut self, at: usize, v: u64) {
        self.data[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut p = Page::new(PageKind::Heap);
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"bravo-longer").unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(p.record(a).unwrap(), b"alpha");
        assert_eq!(p.record(b).unwrap(), b"bravo-longer");
        assert_eq!(p.live_count(), 2);
        assert_eq!(p.kind(), Some(PageKind::Heap));
    }

    #[test]
    fn delete_keeps_slot_indexes_stable() {
        let mut p = Page::new(PageKind::Heap);
        let a = p.insert(b"aa").unwrap();
        let b = p.insert(b"bb").unwrap();
        let c = p.insert(b"cc").unwrap();
        assert!(p.delete(b));
        assert!(!p.delete(b), "double delete rejected");
        assert_eq!(p.record(a).unwrap(), b"aa");
        assert!(p.record(b).is_none());
        assert_eq!(p.record(c).unwrap(), b"cc");
        // The dead slot is reused by the next insert.
        let d = p.insert(b"dd").unwrap();
        assert_eq!(d, b);
        assert_eq!(p.record(d).unwrap(), b"dd");
    }

    #[test]
    fn compaction_reclaims_garbage() {
        let mut p = Page::new(PageKind::Heap);
        // Fill the page with 100-byte records.
        let mut slots = Vec::new();
        while let Some(s) = p.insert(&[7u8; 100]) {
            slots.push(s);
        }
        let full = slots.len();
        assert!(full >= 38, "expected ~40 records, got {full}");
        // Delete every other record: gap appears but is fragmented.
        for &s in slots.iter().step_by(2) {
            assert!(p.delete(s));
        }
        // Inserts now succeed again (insert compacts internally).
        let mut extra = 0;
        while p.insert(&[9u8; 100]).is_some() {
            extra += 1;
        }
        assert!(extra >= full / 2, "compaction reclaimed {extra} slots");
        // Survivors are intact.
        for &s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.record(s).unwrap(), &[7u8; 100]);
        }
    }

    #[test]
    fn insert_at_keeps_order_and_remove_at_shifts() {
        let mut p = Page::new(PageKind::BTreeLeaf);
        assert!(p.insert_at(0, b"m"));
        assert!(p.insert_at(0, b"a"));
        assert!(p.insert_at(2, b"z"));
        assert!(p.insert_at(1, b"c"));
        let got: Vec<&[u8]> = p.records().map(|(_, r)| r).collect();
        assert_eq!(got, vec![b"a" as &[u8], b"c", b"m", b"z"]);
        p.remove_at(1);
        let got: Vec<&[u8]> = p.records().map(|(_, r)| r).collect();
        assert_eq!(got, vec![b"a" as &[u8], b"m", b"z"]);
        assert_eq!(p.slot_count(), 3);
    }

    #[test]
    fn replace_shrink_and_grow() {
        let mut p = Page::new(PageKind::BTreeLeaf);
        let i = p.insert(b"0123456789").unwrap();
        assert!(p.replace(i, b"abc"));
        assert_eq!(p.record(i).unwrap(), b"abc");
        assert!(p.replace(i, b"a-much-longer-record-payload"));
        assert_eq!(p.record(i).unwrap(), b"a-much-longer-record-payload");
    }

    #[test]
    fn replace_grow_when_nearly_full() {
        let mut p = Page::new(PageKind::BTreeLeaf);
        let first = p.insert(&[1u8; 64]).unwrap();
        while p.insert(&[2u8; 64]).is_some() {}
        // Growing the first record must either succeed via compaction of
        // its own old copy, or fail cleanly.
        let grew = p.replace(first, &[3u8; 80]);
        if grew {
            assert_eq!(p.record(first).unwrap(), &[3u8; 80]);
        } else {
            // Failed growth retires the record (documented trade-off of
            // the retire-then-allocate scheme; callers split the page).
            assert!(p.record(first).is_none());
        }
    }

    #[test]
    fn page_full_returns_none() {
        let mut p = Page::new(PageKind::Heap);
        while p.insert(&[0u8; 200]).is_some() {}
        assert!(p.insert(&[0u8; 200]).is_none());
        assert!(p.free_space() < 204);
        // A smaller record can still fit.
        assert!(p.insert(&[0u8; 8]).is_some() || p.free_space() < 12);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new(PageKind::Heap);
        assert!(p.insert(&[0u8; PAGE_SIZE]).is_none());
        assert!(p.insert(&[0u8; PAGE_SIZE - HEADER_SIZE - 3]).is_none());
    }

    #[test]
    fn checksum_round_trip_and_corruption() {
        let mut p = Page::new(PageKind::Heap);
        p.insert(b"payload").unwrap();
        p.seal();
        assert!(p.validate().is_ok());
        // Flip one payload bit.
        let mut raw = *p.bytes();
        raw[PAGE_SIZE - 3] ^= 0x01;
        let corrupt = Page::from_bytes(Box::new(raw));
        assert!(corrupt.validate().is_err());
        // Bad magic reported distinctly.
        let zero = Page::from_bytes(Box::new([0u8; PAGE_SIZE]));
        let err = zero.validate().unwrap_err().to_string();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn next_and_aux_fields() {
        let mut p = Page::new(PageKind::BTreeInternal);
        assert_eq!(p.next(), None);
        p.set_next(Some(42));
        assert_eq!(p.next(), Some(42));
        p.set_next(None);
        assert_eq!(p.next(), None);
        p.set_aux(7);
        assert_eq!(p.aux(), 7);
        // init clears both.
        p.init(PageKind::Heap);
        assert_eq!(p.next(), None);
        assert_eq!(p.aux(), 0);
    }

    // Gated: requires the `proptest` cargo feature (and the proptest
    // dev-dependency, removed so offline builds succeed — see Cargo.toml).
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Model: a Vec<Option<Vec<u8>>> mirroring slot contents.
        #[derive(Debug, Clone)]
        enum Op {
            Insert(Vec<u8>),
            Delete(usize),
            Compact,
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                prop::collection::vec(any::<u8>(), 0..300).prop_map(Op::Insert),
                (0usize..64).prop_map(Op::Delete),
                Just(Op::Compact),
            ]
        }

        proptest! {
            #[test]
            fn slot_directory_survives_insert_delete_compact(ops in prop::collection::vec(op_strategy(), 0..200)) {
                let mut page = Page::new(PageKind::Heap);
                let mut model: Vec<Option<Vec<u8>>> = Vec::new();
                for op in ops {
                    match op {
                        Op::Insert(bytes) => {
                            if let Some(slot) = page.insert(&bytes) {
                                if slot == model.len() {
                                    model.push(Some(bytes));
                                } else {
                                    prop_assert!(model[slot].is_none(), "reused a live slot");
                                    model[slot] = Some(bytes);
                                }
                            }
                        }
                        Op::Delete(i) => {
                            let expect = i < model.len() && model[i].is_some();
                            prop_assert_eq!(page.delete(i), expect);
                            if expect {
                                model[i] = None;
                            }
                        }
                        Op::Compact => page.compact(),
                    }
                    prop_assert_eq!(page.slot_count(), model.len());
                    for (i, m) in model.iter().enumerate() {
                        prop_assert_eq!(page.record(i), m.as_deref());
                    }
                }
            }
        }
    }
}

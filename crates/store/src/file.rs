//! The on-disk page file.
//!
//! A [`PageFile`] is a flat array of [`PAGE_SIZE`] pages over one
//! `std::fs::File`. Writes seal the page checksum; reads verify it.
//! Stores usually live in per-process temp files deleted on drop, but a
//! file can also be created at (or reopened from) an explicit path.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use disco_common::{DiscoError, Result};

use crate::page::{Page, PageId, PAGE_SIZE};

/// Distinguishes temp files created by this process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn io_err(op: &str, e: std::io::Error) -> DiscoError {
    DiscoError::Source(format!("store: {op} failed: {e}"))
}

/// A paged file.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    path: PathBuf,
    pages: u64,
    delete_on_drop: bool,
}

impl PageFile {
    /// Create (truncate) a page file at an explicit path.
    pub fn create(path: impl AsRef<Path>) -> Result<PageFile> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create", e))?;
        Ok(PageFile {
            file,
            path,
            pages: 0,
            delete_on_drop: false,
        })
    }

    /// Create a page file in the system temp directory, deleted when the
    /// store is dropped. `tag` makes the name recognizable in listings.
    pub fn create_temp(tag: &str) -> Result<PageFile> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let clean: String = tag
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = std::env::temp_dir().join(format!(
            "disco-store-{}-{n}-{clean}.pages",
            std::process::id()
        ));
        let mut f = PageFile::create(&path)?;
        f.delete_on_drop = true;
        Ok(f)
    }

    /// Reopen an existing page file.
    pub fn open(path: impl AsRef<Path>) -> Result<PageFile> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open", e))?;
        let len = file.metadata().map_err(|e| io_err("stat", e))?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DiscoError::Source(format!(
                "store: file length {len} is not a whole number of pages"
            )));
        }
        Ok(PageFile {
            file,
            path,
            pages: len / PAGE_SIZE as u64,
            delete_on_drop: false,
        })
    }

    /// File path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages (some may not have reached disk yet —
    /// the buffer pool owns dirty state).
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Allocate the next page id. No disk write happens here; the page
    /// materializes on its first write-back.
    pub fn allocate(&mut self) -> PageId {
        let id = self.pages;
        self.pages += 1;
        id
    }

    /// Read and validate one page.
    pub fn read_page(&mut self, id: PageId) -> Result<Page> {
        if id >= self.pages {
            return Err(DiscoError::Source(format!(
                "store: read of unallocated page {id} (file has {})",
                self.pages
            )));
        }
        self.file
            .seek(SeekFrom::Start(id * PAGE_SIZE as u64))
            .map_err(|e| io_err("seek", e))?;
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        self.file
            .read_exact(&mut buf[..])
            .map_err(|e| io_err(&format!("read of page {id}"), e))?;
        let page = Page::from_bytes(buf);
        page.validate()?;
        Ok(page)
    }

    /// Seal and write one page. Writing past the current end (sparse
    /// regions from out-of-order eviction) is fine; the skipped range
    /// reads back as zeroes only until its own write-back arrives, and
    /// the pool never reads a page it has not flushed.
    pub fn write_page(&mut self, id: PageId, page: &Page) -> Result<()> {
        if id >= self.pages {
            return Err(DiscoError::Source(format!(
                "store: write of unallocated page {id}"
            )));
        }
        let mut sealed = page.clone();
        sealed.seal();
        self.file
            .seek(SeekFrom::Start(id * PAGE_SIZE as u64))
            .map_err(|e| io_err("seek", e))?;
        self.file
            .write_all(&sealed.bytes()[..])
            .map_err(|e| io_err(&format!("write of page {id}"), e))?;
        Ok(())
    }

    /// Flush file-system buffers.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(|e| io_err("sync", e))
    }
}

impl Drop for PageFile {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    #[test]
    fn write_read_round_trip() {
        let mut f = PageFile::create_temp("roundtrip").unwrap();
        let a = f.allocate();
        let b = f.allocate();
        let mut pa = Page::new(PageKind::Heap);
        pa.insert(b"first page").unwrap();
        let mut pb = Page::new(PageKind::BTreeLeaf);
        pb.insert(b"second page").unwrap();
        f.write_page(a, &pa).unwrap();
        f.write_page(b, &pb).unwrap();
        f.sync().unwrap();
        let ra = f.read_page(a).unwrap();
        assert_eq!(ra.record(0).unwrap(), b"first page");
        assert_eq!(ra.kind(), Some(PageKind::Heap));
        let rb = f.read_page(b).unwrap();
        assert_eq!(rb.record(0).unwrap(), b"second page");
    }

    #[test]
    fn unallocated_access_rejected() {
        let mut f = PageFile::create_temp("bounds").unwrap();
        assert!(f.read_page(0).is_err());
        assert!(f.write_page(0, &Page::new(PageKind::Heap)).is_err());
        let id = f.allocate();
        assert!(f.write_page(id, &Page::new(PageKind::Heap)).is_ok());
    }

    #[test]
    fn corruption_detected_on_read() {
        let mut f = PageFile::create_temp("corrupt").unwrap();
        let id = f.allocate();
        let mut p = Page::new(PageKind::Heap);
        p.insert(b"precious bytes").unwrap();
        f.write_page(id, &p).unwrap();
        // Flip a byte on disk behind the page file's back.
        use std::io::{Seek, SeekFrom, Write};
        f.file.seek(SeekFrom::Start(100)).unwrap();
        f.file.write_all(&[0xAB]).unwrap();
        let err = f.read_page(id).unwrap_err().to_string();
        assert!(err.contains("checksum") || err.contains("magic"), "{err}");
    }

    #[test]
    fn temp_file_deleted_on_drop() {
        let path;
        {
            let f = PageFile::create_temp("dropme").unwrap();
            path = f.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn reopen_preserves_pages() {
        let dir = std::env::temp_dir().join(format!("disco-store-reopen-{}", std::process::id()));
        let mut f = PageFile::create(&dir).unwrap();
        let id = f.allocate();
        let mut p = Page::new(PageKind::Heap);
        p.insert(b"persisted").unwrap();
        f.write_page(id, &p).unwrap();
        f.sync().unwrap();
        drop(f);
        let mut again = PageFile::open(&dir).unwrap();
        assert_eq!(again.pages(), 1);
        assert_eq!(
            again.read_page(id).unwrap().record(0).unwrap(),
            b"persisted"
        );
        drop(again);
        std::fs::remove_file(&dir).unwrap();
    }
}

//! The tuple ⇄ record codec.
//!
//! Records are self-describing: a `u16` column count followed by one
//! tagged value per column (tag byte, then a fixed- or length-prefixed
//! payload). Keys in B+Tree cells use the same value encoding, compared
//! after decoding under [`Value::total_cmp_value`] — byte order is *not*
//! the value order, so cells are never compared as raw bytes.

use disco_common::{DiscoError, Result, Tuple, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_LONG: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_STR: u8 = 4;

/// Append one value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Long(x) => {
            out.push(TAG_LONG);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Double(x) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn short(what: &str) -> DiscoError {
    DiscoError::Source(format!("store: truncated record ({what})"))
}

fn take<'b>(bytes: &'b [u8], pos: &mut usize, n: usize, what: &str) -> Result<&'b [u8]> {
    let end = pos.checked_add(n).filter(|&e| e <= bytes.len());
    match end {
        Some(end) => {
            let s = &bytes[*pos..end];
            *pos = end;
            Ok(s)
        }
        None => Err(short(what)),
    }
}

/// Decode one value at `pos`, advancing it.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = take(bytes, pos, 1, "tag")?[0];
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(take(bytes, pos, 1, "bool")?[0] != 0),
        TAG_LONG => Value::Long(i64::from_le_bytes(
            take(bytes, pos, 8, "long")?.try_into().expect("8 bytes"),
        )),
        TAG_DOUBLE => Value::Double(f64::from_bits(u64::from_le_bytes(
            take(bytes, pos, 8, "double")?.try_into().expect("8 bytes"),
        ))),
        TAG_STR => {
            let len = u32::from_le_bytes(
                take(bytes, pos, 4, "string length")?
                    .try_into()
                    .expect("4 bytes"),
            ) as usize;
            let raw = take(bytes, pos, len, "string payload")?;
            Value::Str(
                std::str::from_utf8(raw)
                    .map_err(|_| DiscoError::Source("store: record holds invalid UTF-8".into()))?
                    .to_owned(),
            )
        }
        t => {
            return Err(DiscoError::Source(format!(
                "store: unknown value tag {t} in record"
            )))
        }
    })
}

/// Encode a single value as a standalone key.
pub fn encode_key(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_value(v, &mut out);
    out
}

/// Encode one tuple as a record.
pub fn encode_tuple(t: &Tuple) -> Vec<u8> {
    let values = t.values();
    let mut out = Vec::with_capacity(2 + values.len() * 9);
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        encode_value(v, &mut out);
    }
    out
}

/// Decode a record back into a tuple. Rejects trailing bytes — a record
/// is exactly its encoding, so excess length means corruption.
pub fn decode_tuple(bytes: &[u8]) -> Result<Tuple> {
    let mut pos = 0;
    let n = u16::from_le_bytes(
        take(bytes, &mut pos, 2, "column count")?
            .try_into()
            .expect("2"),
    ) as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_value(bytes, &mut pos)?);
    }
    if pos != bytes.len() {
        return Err(DiscoError::Source(format!(
            "store: {} trailing bytes after record payload",
            bytes.len() - pos
        )));
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_common::rng;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Long(0),
            Value::Long(-1),
            Value::Long(i64::MAX),
            Value::Long(i64::MIN),
            Value::Double(0.0),
            Value::Double(-2.5),
            Value::Double(f64::NAN),
            Value::Double(f64::INFINITY),
            Value::Str(String::new()),
            Value::Str("héllo wörld — ユニコード".into()),
        ]
    }

    #[test]
    fn tuple_round_trip() {
        let t = Tuple::new(sample_values());
        let bytes = encode_tuple(&t);
        let back = decode_tuple(&bytes).unwrap();
        // NaN breaks PartialEq; compare under the total order.
        assert_eq!(back.values().len(), t.values().len());
        for (a, b) in back.values().iter().zip(t.values()) {
            assert!(a.total_cmp_value(b).is_eq(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn empty_tuple_round_trip() {
        let t = Tuple::new(vec![]);
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn key_round_trip() {
        for v in sample_values() {
            let bytes = encode_key(&v);
            let mut pos = 0;
            let back = decode_value(&bytes, &mut pos).unwrap();
            assert_eq!(pos, bytes.len());
            assert!(back.total_cmp_value(&v).is_eq(), "{back:?} vs {v:?}");
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let t = Tuple::new(vec![Value::Long(42), Value::Str("abc".into())]);
        let bytes = encode_tuple(&t);
        for cut in 0..bytes.len() {
            assert!(decode_tuple(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_tuple(&padded).is_err());
    }

    #[test]
    fn bad_tag_and_bad_utf8_rejected() {
        // Column count 1, tag 9.
        assert!(decode_tuple(&[1, 0, 9]).is_err());
        // Str of length 1 with an invalid UTF-8 byte.
        assert!(decode_tuple(&[1, 0, TAG_STR, 1, 0, 0, 0, 0xFF]).is_err());
    }

    #[test]
    fn randomized_round_trip() {
        let mut r = rng::seeded(rng::DEFAULT_SEED, "codec-roundtrip");
        for _ in 0..500 {
            let n = (r.next_u64() % 8) as usize;
            let values: Vec<Value> = (0..n)
                .map(|_| match r.next_u64() % 5 {
                    0 => Value::Null,
                    1 => Value::Bool(r.next_u64().is_multiple_of(2)),
                    2 => Value::Long(r.next_u64() as i64),
                    3 => Value::Double(f64::from_bits(r.next_u64() % (1 << 62))),
                    _ => {
                        let len = (r.next_u64() % 40) as usize;
                        Value::Str("x".repeat(len))
                    }
                })
                .collect();
            let t = Tuple::new(values);
            let back = decode_tuple(&encode_tuple(&t)).unwrap();
            for (a, b) in back.values().iter().zip(t.values()) {
                assert!(a.total_cmp_value(b).is_eq());
            }
        }
    }

    // Gated: requires the `proptest` cargo feature (and the proptest
    // dev-dependency, removed so offline builds succeed — see Cargo.toml).
    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn value_strategy() -> impl Strategy<Value = Value> {
            prop_oneof![
                Just(Value::Null),
                any::<bool>().prop_map(Value::Bool),
                any::<i64>().prop_map(Value::Long),
                any::<f64>().prop_map(Value::Double),
                ".{0,60}".prop_map(Value::Str),
            ]
        }

        proptest! {
            #[test]
            fn any_tuple_round_trips(values in prop::collection::vec(value_strategy(), 0..12)) {
                let t = Tuple::new(values);
                let back = decode_tuple(&encode_tuple(&t)).unwrap();
                prop_assert_eq!(back.values().len(), t.values().len());
                for (a, b) in back.values().iter().zip(t.values()) {
                    prop_assert!(a.total_cmp_value(b).is_eq());
                }
            }
        }
    }
}

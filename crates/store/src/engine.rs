//! The storage engine: named collections over one page file + buffer
//! pool, bulk-loaded once and then read-only.
//!
//! Loading reproduces the *exact* page placement of the simulated store
//! in `disco-sources` — same seed derivation (`"{store}::{collection}"`),
//! same permutation draw, same objects-per-page formula — so measured
//! page faults are comparable number-for-number with the simulated pager
//! and with Yao's prediction. Tuples keep their logical (insertion) row
//! ids: scans return rows in insertion order even though the heap stores
//! them in placement order, matching the in-memory source byte for byte.
//!
//! Queries run under a [`StoreSession`]: a store-wide lock plus a counter
//! snapshot, so one query's I/O is metered without interference.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

use disco_algebra::CompareOp;
use disco_common::{rng, DiscoError, Result, Schema, Tuple, Value};

use crate::btree::DiskBTree;
use crate::buffer::{BufferPool, PoolCounters};
use crate::codec::{decode_tuple, encode_tuple};
use crate::file::PageFile;
use crate::heap::{HeapBuilder, HeapFile, Rid};

/// How objects are assigned to pages (mirrors `disco-sources`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Uniform random placement — Yao's independence assumption.
    Random,
    /// Storage follows an attribute's order (the §7 effect).
    Clustered,
}

/// One loaded collection.
#[derive(Debug)]
pub struct DiskCollection {
    schema: Schema,
    heap: HeapFile,
    indexes: BTreeMap<String, DiskBTree>,
    clustered_on: Option<String>,
    object_size: u64,
    /// Logical row id → rid, in insertion order.
    rids: Vec<Rid>,
    /// Rid → logical row id.
    row_of: HashMap<Rid, u32>,
}

impl DiskCollection {
    /// The collection's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rids.len()
    }

    /// Heap pages occupied.
    pub fn pages(&self) -> u64 {
        self.heap.pages()
    }

    /// Modelled object size in bytes.
    pub fn object_size(&self) -> u64 {
        self.object_size
    }

    /// Attribute the storage order follows, if clustered.
    pub fn clustered_on(&self) -> Option<&str> {
        self.clustered_on.as_deref()
    }

    /// Is `attr` indexed?
    pub fn has_index(&self, attr: &str) -> bool {
        self.indexes.contains_key(attr)
    }
}

/// Builder for one collection (same knobs as the simulated store's
/// `CollectionBuilder`).
#[derive(Debug, Clone)]
pub struct DiskCollectionBuilder {
    schema: Schema,
    tuples: Vec<Tuple>,
    object_size: Option<u64>,
    page_size: u64,
    fill_factor: f64,
    cluster_on: Option<String>,
    indexes: Vec<String>,
}

impl DiskCollectionBuilder {
    /// Start a collection with the given schema.
    pub fn new(schema: Schema) -> Self {
        DiskCollectionBuilder {
            schema,
            tuples: Vec::new(),
            object_size: None,
            page_size: crate::page::PAGE_SIZE as u64,
            fill_factor: 0.96,
            cluster_on: None,
            indexes: Vec::new(),
        }
    }

    /// Add one row.
    pub fn row(mut self, values: Vec<Value>) -> Self {
        self.tuples.push(Tuple::new(values));
        self
    }

    /// Add many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.tuples.extend(rows.into_iter().map(Tuple::new));
        self
    }

    /// Modelled object size in bytes (defaults to the average tuple
    /// width). Controls objects-per-page, not the stored record bytes.
    pub fn object_size(mut self, bytes: u64) -> Self {
        self.object_size = Some(bytes);
        self
    }

    /// Modelled page size (default 4096 — the physical page size; other
    /// values shift objects-per-page but pages on disk stay 4 KB).
    pub fn page_size(mut self, bytes: u64) -> Self {
        self.page_size = bytes;
        self
    }

    /// Page fill factor (default 0.96, the OO7 setup).
    pub fn fill_factor(mut self, f: f64) -> Self {
        self.fill_factor = f;
        self
    }

    /// Cluster storage on an attribute's order instead of uniform random
    /// placement.
    pub fn cluster_on(mut self, attr: impl Into<String>) -> Self {
        self.cluster_on = Some(attr.into());
        self
    }

    /// Build an on-disk B+-tree index on an attribute.
    pub fn index(mut self, attr: impl Into<String>) -> Self {
        self.indexes.push(attr.into());
        self
    }

    fn build(self, pool: &BufferPool, rng_source: &mut rng::StdRng) -> Result<DiskCollection> {
        let n = self.tuples.len();
        let object_size = self.object_size.unwrap_or_else(|| {
            let total: u64 = self.tuples.iter().map(Tuple::width).sum();
            (total / n.max(1) as u64).max(1)
        });
        // Storage rank, exactly as the simulated heap computes it.
        let rank: Vec<usize> = match &self.cluster_on {
            None => rng::permutation(rng_source, n),
            Some(attr) => {
                let idx = self.schema.index_of(attr).ok_or_else(|| {
                    DiscoError::Source(format!("cannot cluster on unknown attribute `{attr}`"))
                })?;
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    let (x, y) = (self.tuples[a].get(idx), self.tuples[b].get(idx));
                    match (x, y) {
                        (Some(x), Some(y)) => x.total_cmp_value(y),
                        _ => std::cmp::Ordering::Equal,
                    }
                });
                let mut rank = vec![0usize; n];
                for (pos, &obj) in order.iter().enumerate() {
                    rank[obj] = pos;
                }
                rank
            }
        };
        let usable = (self.page_size as f64 * self.fill_factor.clamp(0.01, 1.0)) as u64;
        let per_page = (usable / object_size.max(1)).max(1) as usize;
        // Invert the rank: storage position → logical row.
        let mut storage = vec![0usize; n];
        for (obj, &pos) in rank.iter().enumerate() {
            storage[pos] = obj;
        }
        let mut builder = HeapBuilder::new(pool.clone(), Some(per_page));
        let mut rids = vec![Rid { page: 0, slot: 0 }; n];
        for (pos, &row) in storage.iter().enumerate() {
            let rid = builder.append(&encode_tuple(&self.tuples[row]))?;
            // Every record must land on its *modelled* page: a byte
            // spill can leave the total page count intact while moving
            // the boundaries, which would silently break placement
            // equivalence with the simulated store.
            if rid.page as usize != pos / per_page {
                return Err(DiscoError::Source(format!(
                    "store: record at storage position {pos} spilled to \
                     page {} (modelled page {}) — object_size smaller \
                     than the encoded rows",
                    rid.page,
                    pos / per_page
                )));
            }
            rids[row] = rid;
        }
        let heap = builder.finish();
        let mut indexes = BTreeMap::new();
        for attr in &self.indexes {
            let idx = self.schema.index_of(attr).ok_or_else(|| {
                DiscoError::Source(format!("cannot index unknown attribute `{attr}`"))
            })?;
            let tree = DiskBTree::build(
                pool.clone(),
                self.tuples
                    .iter()
                    .enumerate()
                    .map(|(row, t)| (t.get(idx).cloned().unwrap_or(Value::Null), rids[row])),
            )?;
            indexes.insert(attr.clone(), tree);
        }
        let row_of = rids
            .iter()
            .enumerate()
            .map(|(row, &rid)| (rid, row as u32))
            .collect();
        Ok(DiskCollection {
            schema: self.schema,
            heap,
            indexes,
            clustered_on: self.cluster_on,
            object_size,
            rids,
            row_of,
        })
    }
}

/// Builder for a [`DiskStore`].
#[derive(Debug, Clone)]
pub struct DiskStoreBuilder {
    name: String,
    buffer_capacity: usize,
    seed: u64,
    collections: Vec<(String, DiskCollectionBuilder)>,
}

impl DiskStoreBuilder {
    /// Start a store. Default pool: 2048 frames, same as the simulated
    /// store (each distinct page faults once per cold query — the regime
    /// Yao models).
    pub fn new(name: impl Into<String>) -> Self {
        DiskStoreBuilder {
            name: name.into(),
            buffer_capacity: 2_048,
            seed: rng::DEFAULT_SEED,
            collections: Vec::new(),
        }
    }

    /// Override the buffer pool capacity (frames).
    pub fn buffer_capacity(mut self, frames: usize) -> Self {
        self.buffer_capacity = frames;
        self
    }

    /// Override the placement seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a collection to load.
    pub fn collection(mut self, name: impl Into<String>, builder: DiskCollectionBuilder) -> Self {
        self.collections.push((name.into(), builder));
        self
    }

    /// Create the page file, bulk-load every collection, flush, and drop
    /// the cache so the first query runs cold.
    pub fn build(self) -> Result<DiskStore> {
        let file = PageFile::create_temp(&self.name)?;
        let pool = BufferPool::new(file, self.buffer_capacity);
        let mut collections = BTreeMap::new();
        for (name, builder) in self.collections {
            if collections.contains_key(&name) {
                return Err(DiscoError::Source(format!(
                    "collection `{name}` already loaded"
                )));
            }
            let mut r = rng::seeded(self.seed, &format!("{}::{name}", self.name));
            collections.insert(name, builder.build(&pool, &mut r)?);
        }
        pool.clear_cache()?;
        Ok(DiskStore {
            name: Arc::new(self.name),
            pool,
            collections: Arc::new(collections),
            query_lock: Arc::new(Mutex::new(())),
        })
    }
}

/// A read-only disk-backed store. Cheap to clone; clones share the page
/// file, buffer pool, and counters.
#[derive(Debug, Clone)]
pub struct DiskStore {
    name: Arc<String>,
    pool: BufferPool,
    collections: Arc<BTreeMap<String, DiskCollection>>,
    query_lock: Arc<Mutex<()>>,
}

impl DiskStore {
    /// Store name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Collection names and schemas, in name order.
    pub fn collections(&self) -> Vec<(String, Schema)> {
        self.collections
            .iter()
            .map(|(n, c)| (n.clone(), c.schema.clone()))
            .collect()
    }

    /// Look up one collection.
    pub fn collection(&self, name: &str) -> Result<&DiskCollection> {
        self.collections
            .get(name)
            .ok_or_else(|| DiscoError::Source(format!("unknown collection `{name}`")))
    }

    /// Heap pages of a collection.
    pub fn pages_of(&self, collection: &str) -> Result<u64> {
        Ok(self.collection(collection)?.pages())
    }

    /// Lifetime pool counters.
    pub fn counters(&self) -> PoolCounters {
        self.pool.counters()
    }

    /// Buffer pool frame capacity.
    pub fn buffer_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Flush and drop cached pages: the next query runs cold.
    pub fn clear_cache(&self) -> Result<()> {
        self.pool.clear_cache()
    }

    /// Open a metered session. Holds the store-wide query lock, so I/O
    /// deltas observed through it belong to this session alone.
    pub fn session(&self) -> StoreSession<'_> {
        let guard = self.query_lock.lock().expect("query lock");
        StoreSession {
            store: self,
            start: self.pool.counters(),
            _guard: guard,
        }
    }
}

/// One query's window onto the store.
pub struct StoreSession<'a> {
    store: &'a DiskStore,
    start: PoolCounters,
    _guard: MutexGuard<'a, ()>,
}

impl StoreSession<'_> {
    /// The underlying store.
    pub fn store(&self) -> &DiskStore {
        self.store
    }

    /// Pool activity since the session opened.
    pub fn io(&self) -> PoolCounters {
        self.store.pool.counters().delta(&self.start)
    }

    /// Full scan in logical (insertion) row order. Pages are read
    /// sequentially in storage order; rows are slotted back into
    /// insertion order so answers match the in-memory source exactly.
    pub fn scan(&self, collection: &str) -> Result<Vec<Tuple>> {
        let c = self.store.collection(collection)?;
        let mut out: Vec<Option<Tuple>> = vec![None; c.rids.len()];
        c.heap.scan(|rid, bytes| {
            let &row = c.row_of.get(&rid).ok_or_else(|| {
                DiscoError::Source(format!("store: unmapped rid {rid:?} in `{collection}`"))
            })?;
            out[row as usize] = Some(decode_tuple(bytes)?);
            Ok(())
        })?;
        out.into_iter()
            .enumerate()
            .map(|(row, t)| {
                t.ok_or_else(|| {
                    DiscoError::Source(format!("store: row {row} missing from `{collection}`"))
                })
            })
            .collect()
    }

    /// Fetch one row by rid (pins its heap page: one hit or fault).
    pub fn fetch(&self, collection: &str, rid: Rid) -> Result<Tuple> {
        decode_tuple(&self.store.collection(collection)?.heap.get(rid)?)
    }

    /// Rids matching `attr op value` via the index, in key order.
    /// `None` when the attribute has no index or the operator defeats
    /// one (`Ne`) — same contract as the in-memory tree.
    pub fn index_rids(
        &self,
        collection: &str,
        attr: &str,
        op: CompareOp,
        value: &Value,
    ) -> Result<Option<Vec<Rid>>> {
        let c = self.store.collection(collection)?;
        match c.indexes.get(attr) {
            Some(tree) => tree.scan(op, value),
            None => Ok(None),
        }
    }

    /// Rids with exactly `value` under `attr`'s index; `None` without an
    /// index.
    pub fn lookup_rids(
        &self,
        collection: &str,
        attr: &str,
        value: &Value,
    ) -> Result<Option<Vec<Rid>>> {
        let c = self.store.collection(collection)?;
        match c.indexes.get(attr) {
            Some(tree) => tree.lookup(value).map(Some),
            None => Ok(None),
        }
    }

    /// Distinct keys in `attr`'s index, if one exists.
    pub fn distinct_keys(&self, collection: &str, attr: &str) -> Result<Option<usize>> {
        let c = self.store.collection(collection)?;
        match c.indexes.get(attr) {
            Some(tree) => tree.distinct_keys().map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_common::{AttributeDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("label", DataType::Str),
        ])
    }

    fn store(n: i64, clustered: bool) -> DiskStore {
        let mut b = DiskCollectionBuilder::new(schema())
            .rows((0..n).map(|i| vec![Value::Long(i), Value::Str(format!("row-{i}"))]))
            .object_size(56)
            .index("id");
        if clustered {
            b = b.cluster_on("id");
        }
        DiskStoreBuilder::new("test-store")
            .collection("T", b)
            .build()
            .unwrap()
    }

    #[test]
    fn scan_returns_insertion_order() {
        let s = store(500, false);
        let session = s.session();
        let rows = session.scan("T").unwrap();
        assert_eq!(rows.len(), 500);
        for (i, t) in rows.iter().enumerate() {
            assert_eq!(t.get(0), Some(&Value::Long(i as i64)));
            assert_eq!(t.get(1), Some(&Value::Str(format!("row-{i}"))));
        }
    }

    #[test]
    fn layout_matches_simulated_formula() {
        // 500 objects × 56 B on 4096 B pages at 96 % fill → 70/page → 8.
        let s = store(500, false);
        assert_eq!(s.pages_of("T").unwrap(), 8);
    }

    #[test]
    fn cold_scan_faults_every_page_once() {
        let s = store(500, false);
        s.clear_cache().unwrap();
        let session = s.session();
        session.scan("T").unwrap();
        let io = session.io();
        assert_eq!(io.data_faults, 8);
        // Second scan in the same (warm) session: all hits.
        session.scan("T").unwrap();
        assert_eq!(session.io().data_faults, 8);
        assert!(session.io().hits >= 8);
    }

    #[test]
    fn index_lookup_touches_one_data_page() {
        let s = store(500, false);
        s.clear_cache().unwrap();
        let session = s.session();
        let rids = session
            .lookup_rids("T", "id", &Value::Long(123))
            .unwrap()
            .unwrap();
        assert_eq!(rids.len(), 1);
        let t = session.fetch("T", rids[0]).unwrap();
        assert_eq!(t.get(1), Some(&Value::Str("row-123".into())));
        assert_eq!(session.io().data_faults, 1);
    }

    #[test]
    fn clustered_range_scan_touches_few_pages() {
        let s = store(500, true);
        s.clear_cache().unwrap();
        let session = s.session();
        // 70 consecutive ids live on 1–2 pages when clustered.
        let rids = session
            .index_rids("T", "id", CompareOp::Lt, &Value::Long(70))
            .unwrap()
            .unwrap();
        assert_eq!(rids.len(), 70);
        for rid in rids {
            session.fetch("T", rid).unwrap();
        }
        assert!(session.io().data_faults <= 2, "{:?}", session.io());
    }

    #[test]
    fn random_range_scan_touches_many_pages() {
        let s = store(500, false);
        s.clear_cache().unwrap();
        let session = s.session();
        let rids = session
            .index_rids("T", "id", CompareOp::Lt, &Value::Long(70))
            .unwrap()
            .unwrap();
        let mut distinct = std::collections::HashSet::new();
        for rid in &rids {
            distinct.insert(rid.page);
        }
        for rid in rids {
            session.fetch("T", rid).unwrap();
        }
        // Uniform placement scatters 70 of 500 rows across most pages.
        assert!(session.io().data_faults >= 6, "{:?}", session.io());
        assert_eq!(session.io().data_faults, distinct.len() as u64);
    }

    #[test]
    fn unknown_collection_and_unindexed_attr() {
        let s = store(10, false);
        let session = s.session();
        assert!(session.scan("missing").is_err());
        assert_eq!(
            session
                .index_rids("T", "label", CompareOp::Eq, &Value::Str("row-3".into()))
                .unwrap(),
            None
        );
    }

    #[test]
    fn overflow_detected_when_rows_exceed_model() {
        // object_size 4000 → 1 per page cap, but rows are tiny: fine.
        // object_size 1 → 3932 per page cap, rows ~20 B: bytes overflow.
        let r = DiskStoreBuilder::new("overflow")
            .collection(
                "T",
                DiskCollectionBuilder::new(schema())
                    .rows((0..5000i64).map(|i| vec![Value::Long(i), Value::Str("x".into())]))
                    .object_size(1),
            )
            .build();
        assert!(r.is_err());
    }
}

//! Heap files: unordered record storage over slotted pages.
//!
//! A [`HeapFile`] owns an ordered list of page ids; records are addressed
//! by [`Rid`] (page index within the file + slot). Bulk loads append in
//! storage order with an optional per-page record cap, which lets callers
//! reproduce a target fill factor (e.g. OO7's 96 %) even when the encoded
//! records are smaller than the modelled object size.

use std::sync::Arc;

use disco_common::{DiscoError, Result};

use crate::buffer::BufferPool;
use crate::page::{PageId, PageKind};

/// A record id: which page of the heap file, which slot on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    /// Index into the heap file's page list (not a raw [`PageId`]).
    pub page: u32,
    /// Slot on that page.
    pub slot: u16,
}

impl Rid {
    /// Pack into 8 bytes for index cells.
    pub fn to_bytes(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.page.to_le_bytes());
        out[4..6].copy_from_slice(&self.slot.to_le_bytes());
        out
    }

    /// Unpack from index-cell bytes.
    pub fn from_bytes(b: &[u8]) -> Result<Rid> {
        if b.len() < 8 {
            return Err(DiscoError::Source("store: truncated rid".into()));
        }
        Ok(Rid {
            page: u32::from_le_bytes(b[..4].try_into().expect("4 bytes")),
            slot: u16::from_le_bytes(b[4..6].try_into().expect("2 bytes")),
        })
    }
}

/// An unordered record file over the shared buffer pool.
#[derive(Debug, Clone)]
pub struct HeapFile {
    pool: BufferPool,
    pages: Arc<Vec<PageId>>,
}

/// Builder that appends records in storage order.
#[derive(Debug)]
pub struct HeapBuilder {
    pool: BufferPool,
    pages: Vec<PageId>,
    /// Cap on records per page; `None` packs to byte capacity.
    per_page: Option<usize>,
    on_current: usize,
}

impl HeapBuilder {
    /// Start a heap file. `per_page` caps records per page to model a
    /// fill factor; pass `None` to pack pages full.
    pub fn new(pool: BufferPool, per_page: Option<usize>) -> HeapBuilder {
        HeapBuilder {
            pool,
            pages: Vec::new(),
            per_page: per_page.map(|p| p.max(1)),
            on_current: 0,
        }
    }

    fn fresh_page(&mut self) -> Result<PageId> {
        let id = self.pool.allocate(PageKind::Heap)?;
        if let Some(&prev) = self.pages.last() {
            self.pool.with_page_mut(prev, |pg| pg.set_next(Some(id)))?;
        }
        self.pages.push(id);
        self.on_current = 0;
        Ok(id)
    }

    /// Append one record, returning where it landed.
    pub fn append(&mut self, record: &[u8]) -> Result<Rid> {
        let full_by_count = self.per_page.is_some_and(|cap| self.on_current >= cap);
        if self.pages.is_empty() || full_by_count {
            self.fresh_page()?;
        }
        let mut pid = *self.pages.last().expect("page exists");
        let mut slot = self.pool.with_page_mut(pid, |pg| pg.insert(record))?;
        if slot.is_none() {
            // Out of bytes before the count cap: spill to a new page.
            pid = self.fresh_page()?;
            slot = self.pool.with_page_mut(pid, |pg| pg.insert(record))?;
        }
        let Some(slot) = slot else {
            return Err(DiscoError::Source(format!(
                "store: record of {} bytes does not fit an empty page",
                record.len()
            )));
        };
        self.on_current += 1;
        Ok(Rid {
            page: (self.pages.len() - 1) as u32,
            slot: slot as u16,
        })
    }

    /// Finish, returning the immutable heap file.
    pub fn finish(self) -> HeapFile {
        HeapFile {
            pool: self.pool,
            pages: Arc::new(self.pages),
        }
    }
}

impl HeapFile {
    /// Number of pages.
    pub fn pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Raw page id for a heap-file page index.
    pub fn page_id(&self, index: u32) -> Option<PageId> {
        self.pages.get(index as usize).copied()
    }

    /// Fetch one record by rid.
    pub fn get(&self, rid: Rid) -> Result<Vec<u8>> {
        let Some(&pid) = self.pages.get(rid.page as usize) else {
            return Err(DiscoError::Source(format!(
                "store: rid page {} out of range ({} pages)",
                rid.page,
                self.pages.len()
            )));
        };
        let page = self.pool.pin(pid)?;
        page.record(rid.slot as usize)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| {
                DiscoError::Source(format!(
                    "store: rid slot {} missing on page {}",
                    rid.slot, rid.page
                ))
            })
    }

    /// Visit every live record in storage order (page by page, slot by
    /// slot). Each page is pinned once per visit.
    pub fn scan(&self, mut visit: impl FnMut(Rid, &[u8]) -> Result<()>) -> Result<()> {
        for (idx, &pid) in self.pages.iter().enumerate() {
            let page = self.pool.pin(pid)?;
            debug_assert_eq!(
                page.next(),
                self.pages.get(idx + 1).copied(),
                "heap chain matches page list"
            );
            for (slot, bytes) in page.records() {
                visit(
                    Rid {
                        page: idx as u32,
                        slot: slot as u16,
                    },
                    bytes,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::PageFile;

    fn pool() -> BufferPool {
        BufferPool::new(PageFile::create_temp("heap").unwrap(), 64)
    }

    #[test]
    fn append_scan_round_trip() {
        let mut b = HeapBuilder::new(pool(), None);
        let rids: Vec<Rid> = (0..100)
            .map(|i| b.append(format!("record number {i}").as_bytes()).unwrap())
            .collect();
        let heap = b.finish();
        let mut seen = Vec::new();
        heap.scan(|rid, bytes| {
            seen.push((rid, bytes.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 100);
        for (i, (rid, bytes)) in seen.iter().enumerate() {
            assert_eq!(*rid, rids[i]);
            assert_eq!(bytes, format!("record number {i}").as_bytes());
        }
    }

    #[test]
    fn per_page_cap_controls_page_count() {
        let mut b = HeapBuilder::new(pool(), Some(7));
        for i in 0..70 {
            b.append(format!("r{i}").as_bytes()).unwrap();
        }
        let heap = b.finish();
        assert_eq!(heap.pages(), 10);
    }

    #[test]
    fn byte_overflow_spills_to_new_page() {
        let mut b = HeapBuilder::new(pool(), None);
        let big = vec![0xCD; 1500];
        for _ in 0..5 {
            b.append(&big).unwrap();
        }
        let heap = b.finish();
        // 2 × 1500 B (+ slots) per 4 KB page → 3 pages for 5 records.
        assert_eq!(heap.pages(), 3);
    }

    #[test]
    fn get_by_rid() {
        let mut b = HeapBuilder::new(pool(), Some(3));
        let rids: Vec<Rid> = (0..10)
            .map(|i| b.append(format!("v{i}").as_bytes()).unwrap())
            .collect();
        let heap = b.finish();
        assert_eq!(heap.get(rids[7]).unwrap(), b"v7");
        assert_eq!(rids[7].page, 2);
        assert!(heap.get(Rid { page: 99, slot: 0 }).is_err());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut b = HeapBuilder::new(pool(), None);
        assert!(b.append(&vec![0u8; 5000]).is_err());
    }

    #[test]
    fn rid_pack_round_trip() {
        let rid = Rid {
            page: 0xDEAD_BEEF,
            slot: 0x1234,
        };
        assert_eq!(Rid::from_bytes(&rid.to_bytes()).unwrap(), rid);
        assert!(Rid::from_bytes(&[0; 4]).is_err());
    }
}

//! Abstract syntax of the cost communication language.

use std::fmt;

use disco_algebra::{CompareOp, OperatorKind};
use disco_common::{DataType, Value};

/// The five result variables a cost formula may compute (paper §2.3, §3).
///
/// `TimeFirst`/`TimeNext`/`TotalTime` are the time estimates; `CountObject`
/// and `TotalSize` are the size rules "integrated within the cost rules".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostVar {
    TimeFirst,
    TimeNext,
    TotalTime,
    CountObject,
    TotalSize,
}

impl CostVar {
    /// All result variables.
    pub const ALL: [CostVar; 5] = [
        CostVar::TimeFirst,
        CostVar::TimeNext,
        CostVar::TotalTime,
        CostVar::CountObject,
        CostVar::TotalSize,
    ];

    /// Canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            CostVar::TimeFirst => "TimeFirst",
            CostVar::TimeNext => "TimeNext",
            CostVar::TotalTime => "TotalTime",
            CostVar::CountObject => "CountObject",
            CostVar::TotalSize => "TotalSize",
        }
    }

    /// Parse the canonical spelling.
    pub fn parse(s: &str) -> Option<CostVar> {
        Some(match s {
            "TimeFirst" => CostVar::TimeFirst,
            "TimeNext" => CostVar::TimeNext,
            "TotalTime" => CostVar::TotalTime,
            "CountObject" => CostVar::CountObject,
            "TotalSize" => CostVar::TotalSize,
            _ => return None,
        })
    }

    /// `true` for the statistics-like results (`CountObject`, `TotalSize`)
    /// that other formulas commonly consume; the estimator computes these
    /// before the time variables.
    pub fn is_size(self) -> bool {
        matches!(self, CostVar::CountObject | CostVar::TotalSize)
    }
}

impl fmt::Display for CostVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed registration document: interfaces, wrapper-level parameter
/// and function definitions, and wrapper-scope rules, in source order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    pub interfaces: Vec<InterfaceDef>,
    pub lets: Vec<LetDef>,
    /// Wrapper-defined helper functions (`let f($x) = …;`).
    pub funcs: Vec<FuncDef>,
    /// Wrapper-scope rules (rules outside any interface body).
    pub rules: Vec<RuleDef>,
}

/// A wrapper-defined helper function, e.g.
/// `let pages($bytes) = ceil($bytes / PageSize);` — the paper lets
/// implementors "define their own local variables or functions to
/// parameterize their formulas" (§3.3.1).
///
/// Functions are expanded inline at compile time; they may call earlier
/// definitions but not themselves (no recursion).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub name: String,
    /// Parameter names (referenced as `$name` in the body).
    pub params: Vec<String>,
    pub body: Expr,
}

/// One `interface Name { … }` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceDef {
    pub name: String,
    /// `attribute <type> <name>;` declarations, in order.
    pub attributes: Vec<(String, DataType)>,
    /// The `cardinality extent(...)` record, if exported.
    pub extent: Option<CardExtent>,
    /// The `cardinality attribute(...)` records.
    pub attribute_cards: Vec<CardAttribute>,
    /// Collection-scope rules declared inside the interface body.
    pub rules: Vec<RuleDef>,
}

/// Exported extent statistics: the values the mediator obtains by calling
/// the paper's `extent` cardinality method (Figure 6).
#[derive(Debug, Clone, PartialEq)]
pub struct CardExtent {
    pub count_object: u64,
    pub total_size: u64,
    pub object_size: u64,
}

/// Exported per-attribute statistics (`attribute` cardinality method).
#[derive(Debug, Clone, PartialEq)]
pub struct CardAttribute {
    pub attribute: String,
    pub indexed: bool,
    pub count_distinct: u64,
    pub min: Value,
    pub max: Value,
}

/// A wrapper-level parameter definition, e.g. `let PageSize = 4096;`.
///
/// The paper lets implementors "define their own local variables or
/// functions to parameterize their formulas".
#[derive(Debug, Clone, PartialEq)]
pub struct LetDef {
    pub name: String,
    pub expr: Expr,
}

/// One cost rule: a head pattern and a body of formulas (Figure 8).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDef {
    pub head: RuleHead,
    pub body: Vec<Stmt>,
}

/// The operator pattern a rule applies to.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleHead {
    pub op: OperatorKind,
    pub args: Vec<HeadArg>,
}

/// A collection term in a rule head or body path: a literal collection
/// name or a free variable.
#[derive(Debug, Clone, PartialEq)]
pub enum CollTerm {
    Named(String),
    Var(String),
}

/// An attribute term: literal name or free variable.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrTerm {
    Named(String),
    Var(String),
}

/// Right-hand side of a head predicate.
///
/// In a `select` pattern a bare identifier or literal is the compared
/// constant and a variable binds to it; in a `join` pattern the right-hand
/// side names an attribute of the right input.
#[derive(Debug, Clone, PartialEq)]
pub enum PredRhs {
    Const(Value),
    Ident(String),
    Var(String),
}

/// One argument of a rule head.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadArg {
    /// A collection term (`scan($C)`, `select(employee, …)`).
    Coll(CollTerm),
    /// A comparison predicate (`salary = $V`, `$A1 = $A2`).
    Pred {
        left: AttrTerm,
        op: CompareOp,
        right: PredRhs,
    },
    /// A free predicate variable matching any predicate (`select($C, $P)`).
    AnyPred(String),
    /// A literal attribute list (`project($C, [a, b])`).
    AttrList(Vec<String>),
    /// A single attribute term (`sort($C, $A)`).
    Attr(AttrTerm),
}

/// A statement in a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;` — rule-local intermediate value.
    Let { name: String, expr: Expr },
    /// `ResultVar = expr;` — output formula.
    Assign { var: CostVar, expr: Expr },
}

/// Binary arithmetic operators of the formula grammar (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// Operator symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Base of a dotted path expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PathBase {
    /// Literal identifier: a collection name, or the reserved child
    /// references `input` / `left` / `right`.
    Ident(String),
    /// Head-bound variable (`$C`).
    Var(String),
}

/// One segment after the base of a path.
#[derive(Debug, Clone, PartialEq)]
pub enum PathSeg {
    Ident(String),
    Var(String),
}

/// A formula expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Num(f64),
    Str(String),
    /// Bare identifier: rule-local, wrapper parameter, or a bare result
    /// variable — disambiguated by the compiler.
    Ident(String),
    /// Head-bound variable used as a value (`$V`).
    Var(String),
    /// Dotted path (`Employee.TotalSize`, `$C.salary.Min`, `input.TotalTime`).
    Path {
        base: PathBase,
        segs: Vec<PathSeg>,
    },
    Neg(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
}

/// Leaf of a compiled path: either a catalog statistic or a cost variable
/// of a child node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathLeaf {
    Stat(disco_catalog::StatName),
    Cost(CostVar),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_var_round_trip() {
        for v in CostVar::ALL {
            assert_eq!(CostVar::parse(v.name()), Some(v));
        }
        assert_eq!(CostVar::parse("totaltime"), None);
    }

    #[test]
    fn size_partition() {
        assert!(CostVar::CountObject.is_size());
        assert!(CostVar::TotalSize.is_size());
        assert!(!CostVar::TotalTime.is_size());
        assert!(!CostVar::TimeFirst.is_size());
    }
}

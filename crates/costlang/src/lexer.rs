//! Hand-written lexer for the cost communication language.
//!
//! Supports `//` line comments and `/* */` block comments. Never panics on
//! arbitrary input — malformed text yields a [`DiscoError::Parse`] with a
//! position.

use disco_common::{DiscoError, Result};

use crate::token::{Pos, Tok, Token};

/// Tokenize a whole document.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> DiscoError {
        DiscoError::Parse(format!("{} at {}", msg.into(), self.pos()))
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = match c {
                '{' => self.single(Tok::LBrace),
                '}' => self.single(Tok::RBrace),
                '(' => self.single(Tok::LParen),
                ')' => self.single(Tok::RParen),
                '[' => self.single(Tok::LBracket),
                ']' => self.single(Tok::RBracket),
                ',' => self.single(Tok::Comma),
                ';' => self.single(Tok::Semi),
                '.' => self.single(Tok::Dot),
                '+' => self.single(Tok::Plus),
                '-' => self.single(Tok::Minus),
                '*' => self.single(Tok::Star),
                '/' => self.single(Tok::Slash),
                '=' => self.single(Tok::Eq),
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        return Err(self.err("expected `=` after `!`"));
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                '"' => self.string()?,
                '$' => {
                    self.bump();
                    match self.ident_text() {
                        Some(name) => Tok::Var(name),
                        None => return Err(self.err("expected identifier after `$`")),
                    }
                }
                c if c.is_ascii_digit() => self.number()?,
                c if is_ident_start(c) => {
                    let name = self.ident_text().expect("ident start checked");
                    Tok::Ident(name)
                }
                c => return Err(self.err(format!("unexpected character `{c}`"))),
            };
            out.push(Token { tok, pos });
        }
    }

    fn single(&mut self, t: Tok) -> Tok {
        self.bump();
        t
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(DiscoError::Parse(format!(
                                    "unterminated block comment starting at {start}"
                                )));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn string(&mut self) -> Result<Tok> {
        let start = self.pos();
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Tok::Str(s)),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some(c) => {
                        return Err(self.err(format!("unknown escape `\\{c}`")));
                    }
                    None => {
                        return Err(DiscoError::Parse(format!(
                            "unterminated string starting at {start}"
                        )))
                    }
                },
                Some(c) => s.push(c),
                None => {
                    return Err(DiscoError::Parse(format!(
                        "unterminated string starting at {start}"
                    )))
                }
            }
        }
    }

    fn number(&mut self) -> Result<Tok> {
        let start_i = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            // Exponent must be followed by digits (with optional sign).
            let save = (self.i, self.line, self.col);
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. `12e` then identifier).
                (self.i, self.line, self.col) = save;
            }
        }
        let text: String = self.chars[start_i..self.i].iter().collect();
        text.parse::<f64>()
            .map(Tok::Number)
            .map_err(|_| self.err(format!("invalid number literal `{text}`")))
    }

    fn ident_text(&mut self) -> Option<String> {
        let c = self.peek()?;
        if !is_ident_start(c) {
            return None;
        }
        let start_i = self.i;
        while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        let _ = self.src; // keep the borrow alive for potential future slicing
        Some(self.chars[start_i..self.i].iter().collect())
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            toks("rule scan($C) { }"),
            vec![
                Tok::Ident("rule".into()),
                Tok::Ident("scan".into()),
                Tok::LParen,
                Tok::Var("C".into()),
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("12"), vec![Tok::Number(12.0), Tok::Eof]);
        assert_eq!(toks("12.5"), vec![Tok::Number(12.5), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Number(1000.0), Tok::Eof]);
        assert_eq!(toks("2.5e-2"), vec![Tok::Number(0.025), Tok::Eof]);
    }

    #[test]
    fn number_then_dot_path_is_not_a_float() {
        // `Employee.TotalSize / 4096.CountPage` style is illegal, but
        // `12.foo` must lex as number, dot, ident (error surfaced later).
        assert_eq!(
            toks("12.foo"),
            vec![
                Tok::Number(12.0),
                Tok::Dot,
                Tok::Ident("foo".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= != < <= > >="),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""Adiba" "a\"b""#),
            vec![Tok::Str("Adiba".into()), Tok::Str("a\"b".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let src = "a // line comment\n /* block\n comment */ b";
        assert_eq!(
            toks(src),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let e = lex("a\n  #").unwrap_err();
        assert_eq!(e.kind(), "parse");
        assert!(e.message().contains("2:3"), "{}", e.message());
    }

    #[test]
    fn unterminated_string_fails() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("$ ").is_err());
        assert!(lex("!x").is_err());
    }

    #[test]
    fn trailing_exponent_is_backtracked() {
        assert_eq!(
            toks("12e x"),
            vec![
                Tok::Number(12.0),
                Tok::Ident("e".into()),
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }
}

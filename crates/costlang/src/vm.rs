//! The bytecode VM that evaluates shipped cost formulas inside the
//! mediator during query optimization.
//!
//! Evaluation is fail-soft by design: a formula that references an
//! unavailable statistic or mixes types yields an [`EvalError`]; the
//! estimator then falls back to a less specific rule, so a badly written
//! wrapper rule degrades accuracy, never correctness.

use std::fmt;

use disco_common::Value;

use crate::ast::{CostVar, PathLeaf};
use crate::bytecode::{AttrSpec, CollSpec, Instr, Program};

/// Failure modes of formula evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A path reference could not be resolved by the environment.
    UnresolvedPath(String),
    /// A head binding or parameter was unavailable.
    Unresolved(String),
    /// Arithmetic over non-numeric values.
    Type(String),
    /// An environment function call failed or is unknown.
    Call(String),
    /// Internal stack underflow — indicates a compiler bug, surfaced as an
    /// error instead of a panic so optimization can continue.
    Stack,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnresolvedPath(p) => write!(f, "unresolved path `{p}`"),
            EvalError::Unresolved(n) => write!(f, "unresolved name `{n}`"),
            EvalError::Type(m) => write!(f, "type error: {m}"),
            EvalError::Call(m) => write!(f, "call error: {m}"),
            EvalError::Stack => f.write_str("stack underflow"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluation environment a [`Program`] runs against.
///
/// The estimator in `disco-core` implements this over the plan node being
/// costed: head bindings from rule matching, statistics from the catalog,
/// child variables from already-estimated subtrees.
pub trait EvalEnv {
    /// Resolve a path reference (`$C.TotalTime`, `Employee.salary.Min`, …).
    fn path(&self, coll: &CollSpec, attr: Option<&AttrSpec>, leaf: PathLeaf) -> Option<Value>;

    /// Value of a head binding (`$V` → the matched constant, `$A` → the
    /// matched attribute name as a string).
    fn binding(&self, name: &str) -> Option<Value>;

    /// Wrapper-level or mediator-level parameter (`PageSize`, `IO`, …).
    fn param(&self, name: &str) -> Option<Value>;

    /// Already-computed result variable of the *current* node (used when a
    /// rule contributes only some variables and reads the others).
    fn self_var(&self, var: CostVar) -> Option<f64>;

    /// Ad-hoc function call (e.g. `selectivity`).
    fn call(&self, func: &str, args: &[Value]) -> Option<Value>;
}

/// Run a program, returning the final local slots.
///
/// The caller reads outputs via [`crate::bytecode::CompiledBody::output_slot`].
pub fn eval_program(program: &Program, env: &dyn EvalEnv) -> Result<Vec<Value>, EvalError> {
    let mut locals = vec![Value::Null; program.n_locals as usize];
    let mut stack: Vec<Value> = Vec::with_capacity(8);

    fn popn(stack: &mut Vec<Value>) -> Result<f64, EvalError> {
        let v = stack.pop().ok_or(EvalError::Stack)?;
        v.as_f64()
            .ok_or_else(|| EvalError::Type(format!("expected number, found {v}")))
    }

    for instr in &program.instrs {
        match instr {
            Instr::Const(i) => {
                stack.push(program.consts[*i as usize].clone());
            }
            Instr::LoadLocal(s) => {
                stack.push(locals[*s as usize].clone());
            }
            Instr::StoreLocal(s) => {
                let v = stack.pop().ok_or(EvalError::Stack)?;
                locals[*s as usize] = v;
            }
            Instr::LoadBinding(i) => {
                let name = &program.names[*i as usize];
                let v = env
                    .binding(name)
                    .ok_or_else(|| EvalError::Unresolved(format!("${name}")))?;
                stack.push(v);
            }
            Instr::LoadParam(i) => {
                let name = &program.names[*i as usize];
                let v = env
                    .param(name)
                    .ok_or_else(|| EvalError::Unresolved(name.clone()))?;
                stack.push(v);
            }
            Instr::LoadSelfVar(var) => {
                let v = env
                    .self_var(*var)
                    .ok_or_else(|| EvalError::Unresolved(var.name().to_owned()))?;
                stack.push(Value::Double(v));
            }
            Instr::LoadPath(i) => {
                let p = &program.paths[*i as usize];
                let v = env.path(&p.coll, p.attr.as_ref(), p.leaf).ok_or_else(|| {
                    EvalError::UnresolvedPath(format!("{:?}.{:?}.{:?}", p.coll, p.attr, p.leaf))
                })?;
                stack.push(v);
            }
            Instr::Add => {
                let (b, a) = (popn(&mut stack)?, popn(&mut stack)?);
                stack.push(Value::Double(a + b));
            }
            Instr::Sub => {
                let (b, a) = (popn(&mut stack)?, popn(&mut stack)?);
                stack.push(Value::Double(a - b));
            }
            Instr::Mul => {
                let (b, a) = (popn(&mut stack)?, popn(&mut stack)?);
                stack.push(Value::Double(a * b));
            }
            Instr::Div => {
                let (b, a) = (popn(&mut stack)?, popn(&mut stack)?);
                if b == 0.0 {
                    return Err(EvalError::Type("division by zero".into()));
                }
                stack.push(Value::Double(a / b));
            }
            Instr::Neg => {
                let a = popn(&mut stack)?;
                stack.push(Value::Double(-a));
            }
            Instr::CallBuiltin(b) => {
                let arity = b.arity();
                let mut args = [0.0f64; 2];
                for k in (0..arity).rev() {
                    args[k] = popn(&mut stack)?;
                }
                stack.push(Value::Double(b.apply(&args[..arity])));
            }
            Instr::CallEnv(i, argc) => {
                let name = &program.names[*i as usize];
                let n = *argc as usize;
                if stack.len() < n {
                    return Err(EvalError::Stack);
                }
                let args: Vec<Value> = stack.split_off(stack.len() - n);
                let v = env
                    .call(name, &args)
                    .ok_or_else(|| EvalError::Call(format!("`{name}` failed or unknown")))?;
                stack.push(v);
            }
        }
    }
    Ok(locals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    /// Test environment backed by closures-as-tables.
    #[derive(Default)]
    struct TestEnv {
        params: Vec<(String, f64)>,
        bindings: Vec<(String, Value)>,
        self_vars: Vec<(CostVar, f64)>,
        paths: Vec<(PathLeaf, f64)>,
    }

    impl EvalEnv for TestEnv {
        fn path(&self, _c: &CollSpec, _a: Option<&AttrSpec>, leaf: PathLeaf) -> Option<Value> {
            self.paths
                .iter()
                .find(|(l, _)| *l == leaf)
                .map(|(_, v)| Value::Double(*v))
        }
        fn binding(&self, name: &str) -> Option<Value> {
            self.bindings
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        }
        fn param(&self, name: &str) -> Option<Value> {
            self.params
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| Value::Double(*v))
        }
        fn self_var(&self, var: CostVar) -> Option<f64> {
            self.self_vars
                .iter()
                .find(|(v, _)| *v == var)
                .map(|(_, x)| *x)
        }
        fn call(&self, func: &str, args: &[Value]) -> Option<Value> {
            match func {
                "selectivity" => {
                    let _ = args;
                    Some(Value::Double(0.5))
                }
                _ => None,
            }
        }
    }

    fn body_of(src: &str) -> crate::bytecode::CompiledBody {
        let doc = parse_document(src).unwrap();
        crate::compile::compile_rule(&doc.rules[0], None)
            .unwrap()
            .body
    }

    fn run(src: &str, env: &TestEnv) -> Vec<(CostVar, f64)> {
        let body = body_of(src);
        let locals = eval_program(&body.program, env).unwrap();
        body.outputs
            .iter()
            .map(|(v, s)| (*v, locals[*s as usize].as_f64().unwrap()))
            .collect()
    }

    #[test]
    fn arithmetic_and_precedence() {
        let out = run(
            "rule scan($C) { TotalTime = 1 + 2 * 3 - 10 / 4; }",
            &TestEnv::default(),
        );
        assert_eq!(out, vec![(CostVar::TotalTime, 4.5)]);
    }

    #[test]
    fn locals_thread_between_statements() {
        let out = run(
            "rule scan($C) { let x = 7; let y = x * 2; TotalTime = y + x; }",
            &TestEnv::default(),
        );
        assert_eq!(out, vec![(CostVar::TotalTime, 21.0)]);
    }

    #[test]
    fn outputs_feed_later_formulas() {
        let out = run(
            "rule scan($C) { CountObject = 10; TotalSize = CountObject * 56; }",
            &TestEnv::default(),
        );
        assert_eq!(
            out,
            vec![(CostVar::CountObject, 10.0), (CostVar::TotalSize, 560.0)]
        );
    }

    #[test]
    fn bindings_and_params() {
        let env = TestEnv {
            params: vec![("PageSize".into(), 4096.0)],
            bindings: vec![("V".into(), Value::Long(100))],
            ..Default::default()
        };
        let out = run(
            "rule select($C, $A = $V) { TotalTime = $V / PageSize; }",
            &env,
        );
        assert!((out[0].1 - 100.0 / 4096.0).abs() < 1e-12);
    }

    #[test]
    fn env_call_dispatch() {
        let env = TestEnv {
            bindings: vec![
                ("A".into(), Value::Str("salary".into())),
                ("V".into(), Value::Long(7)),
            ],
            ..Default::default()
        };
        let out = run(
            "rule select($C, $A = $V) { CountObject = 100 * selectivity($A, $V); }",
            &env,
        );
        assert_eq!(out[0].1, 50.0);
    }

    #[test]
    fn self_var_fallback() {
        let env = TestEnv {
            self_vars: vec![(CostVar::CountObject, 42.0)],
            ..Default::default()
        };
        let out = run("rule select($C, $P) { TotalTime = CountObject * 2; }", &env);
        assert_eq!(out[0].1, 84.0);
    }

    #[test]
    fn paths_resolve_via_env() {
        let env = TestEnv {
            paths: vec![(PathLeaf::Cost(CostVar::TotalTime), 120.0)],
            ..Default::default()
        };
        let out = run(
            "rule select($C, $P) { TotalTime = $C.TotalTime + 5; }",
            &env,
        );
        assert_eq!(out[0].1, 125.0);
    }

    #[test]
    fn missing_binding_is_an_error_not_a_panic() {
        let body = body_of("rule select($C, $A = $V) { TotalTime = $V; }");
        let err = eval_program(&body.program, &TestEnv::default()).unwrap_err();
        assert!(matches!(err, EvalError::Unresolved(_)));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let body = body_of("rule scan($C) { TotalTime = 1 / 0; }");
        let err = eval_program(&body.program, &TestEnv::default()).unwrap_err();
        assert!(matches!(err, EvalError::Type(_)));
    }

    #[test]
    fn string_arithmetic_is_an_error() {
        let body = body_of("rule scan($C) { TotalTime = \"abc\" + 1; }");
        let err = eval_program(&body.program, &TestEnv::default()).unwrap_err();
        assert!(matches!(err, EvalError::Type(_)));
    }

    #[test]
    fn builtins_evaluate() {
        let out = run(
            "rule scan($C) { TotalTime = min(3, max(1, 2)) + exp(0) + pow(2, 3); }",
            &TestEnv::default(),
        );
        assert_eq!(out[0].1, 2.0 + 1.0 + 8.0);
    }

    #[test]
    fn yao_style_formula_evaluates() {
        // The Figure 13 shape with inline numbers:
        // IO*CP*(1 - exp(-k/CP)) + k*Output, IO=0.025s→25ms, k=7000, CP=1000.
        let out = run(
            "rule scan($C) { TotalTime = 25 * 1000 * (1 - exp(0 - 7000 / 1000)) + 7000 * 9; }",
            &TestEnv::default(),
        );
        let expected = 25.0 * 1000.0 * (1.0 - (-7.0f64).exp()) + 63000.0;
        assert!((out[0].1 - expected).abs() < 1e-6);
    }
}

//! Recursive-descent parser for registration documents.
//!
//! Implements the grammar of Figure 9 (cost rules) extended with the
//! interface/cardinality syntax of Figures 3–5 and `let` parameter
//! definitions. See the crate docs for the concrete surface syntax.

use disco_algebra::{CompareOp, OperatorKind};
use disco_common::{DataType, DiscoError, Result, Value};

use crate::ast::{
    AttrTerm, BinOp, CardAttribute, CardExtent, CollTerm, CostVar, Document, Expr, HeadArg,
    InterfaceDef, LetDef, PathBase, PathSeg, PredRhs, RuleDef, RuleHead, Stmt,
};
use crate::lexer::lex;
use crate::token::{Pos, Tok, Token};

/// Parse a whole registration document.
pub fn parse_document(src: &str) -> Result<Document> {
    let tokens = lex(src)?;
    Parser { tokens, i: 0 }.document()
}

/// Convert a numeric literal to a [`Value`], preserving integrality.
fn num_to_value(n: f64) -> Value {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        Value::Long(n as i64)
    } else {
        Value::Double(n)
    }
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.i.min(self.tokens.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i.min(self.tokens.len() - 1)].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i.min(self.tokens.len() - 1)].tok.clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DiscoError {
        DiscoError::Parse(format!("{} at {}", msg.into(), self.pos()))
    }

    fn expect(&mut self, want: Tok) -> Result<()> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {}, found {}", want, self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Tok::Ident(_) => match self.bump() {
                Tok::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        let neg = if *self.peek() == Tok::Minus {
            self.bump();
            true
        } else {
            false
        };
        match self.peek() {
            Tok::Number(_) => match self.bump() {
                Tok::Number(n) => Ok(if neg { -n } else { n }),
                _ => unreachable!(),
            },
            other => Err(self.err(format!("expected number, found {other}"))),
        }
    }

    fn document(mut self) -> Result<Document> {
        let mut doc = Document::default();
        loop {
            match self.peek() {
                Tok::Eof => return Ok(doc),
                Tok::Ident(kw) if kw == "interface" => {
                    doc.interfaces.push(self.interface()?);
                }
                Tok::Ident(kw) if kw == "let" => match self.let_def()? {
                    LetItem::Param(l) => doc.lets.push(l),
                    LetItem::Func(f) => doc.funcs.push(f),
                },
                Tok::Ident(kw) if kw == "rule" => {
                    doc.rules.push(self.rule()?);
                }
                other => {
                    return Err(self.err(format!(
                        "expected `interface`, `let` or `rule`, found {other}"
                    )))
                }
            }
        }
    }

    fn interface(&mut self) -> Result<InterfaceDef> {
        self.expect(Tok::Ident("interface".into()))?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut def = InterfaceDef {
            name,
            attributes: Vec::new(),
            extent: None,
            attribute_cards: Vec::new(),
            rules: Vec::new(),
        };
        loop {
            match self.peek() {
                Tok::RBrace => {
                    self.bump();
                    return Ok(def);
                }
                Tok::Ident(kw) if kw == "attribute" => {
                    self.bump();
                    let ty_name = self.ident()?;
                    let ty = parse_type(&ty_name)
                        .ok_or_else(|| self.err(format!("unknown type `{ty_name}`")))?;
                    let attr = self.ident()?;
                    self.expect(Tok::Semi)?;
                    def.attributes.push((attr, ty));
                }
                Tok::Ident(kw) if kw == "cardinality" => {
                    self.bump();
                    self.cardinality(&mut def)?;
                }
                Tok::Ident(kw) if kw == "rule" => {
                    def.rules.push(self.rule()?);
                }
                other => {
                    return Err(self.err(format!(
                        "expected `attribute`, `cardinality`, `rule` or `}}`, found {other}"
                    )))
                }
            }
        }
    }

    fn cardinality(&mut self, def: &mut InterfaceDef) -> Result<()> {
        let kind = self.ident()?;
        self.expect(Tok::LParen)?;
        match kind.as_str() {
            "extent" => {
                let count_object = self.number()? as u64;
                self.expect(Tok::Comma)?;
                let total_size = self.number()? as u64;
                self.expect(Tok::Comma)?;
                let object_size = self.number()? as u64;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                if def.extent.is_some() {
                    return Err(self.err(format!(
                        "duplicate `cardinality extent` in interface `{}`",
                        def.name
                    )));
                }
                def.extent = Some(CardExtent {
                    count_object,
                    total_size,
                    object_size,
                });
            }
            "attribute" => {
                let attribute = self.ident()?;
                self.expect(Tok::Comma)?;
                let flag = self.ident()?;
                let indexed = match flag.as_str() {
                    "indexed" => true,
                    "unindexed" => false,
                    other => {
                        return Err(self.err(format!(
                            "expected `indexed` or `unindexed`, found `{other}`"
                        )))
                    }
                };
                self.expect(Tok::Comma)?;
                let count_distinct = self.number()? as u64;
                self.expect(Tok::Comma)?;
                let min = self.constant()?;
                self.expect(Tok::Comma)?;
                let max = self.constant()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                def.attribute_cards.push(CardAttribute {
                    attribute,
                    indexed,
                    count_distinct,
                    min,
                    max,
                });
            }
            other => {
                return Err(self.err(format!(
                    "expected `extent` or `attribute` after `cardinality`, found `{other}`"
                )))
            }
        }
        Ok(())
    }

    fn constant(&mut self) -> Result<Value> {
        match self.peek() {
            Tok::Number(_) | Tok::Minus => Ok(num_to_value(self.number()?)),
            Tok::Str(_) => match self.bump() {
                Tok::Str(s) => Ok(Value::Str(s)),
                _ => unreachable!(),
            },
            Tok::Ident(kw) if kw == "null" => {
                self.bump();
                Ok(Value::Null)
            }
            Tok::Ident(kw) if kw == "true" => {
                self.bump();
                Ok(Value::Bool(true))
            }
            Tok::Ident(kw) if kw == "false" => {
                self.bump();
                Ok(Value::Bool(false))
            }
            other => Err(self.err(format!("expected constant, found {other}"))),
        }
    }

    /// `let name = expr;` (parameter) or `let name($a, $b) = expr;`
    /// (helper function).
    fn let_def(&mut self) -> Result<LetItem> {
        self.expect(Tok::Ident("let".into()))?;
        let name = self.ident()?;
        if *self.peek() == Tok::LParen {
            self.bump();
            let mut params = Vec::new();
            if *self.peek() != Tok::RParen {
                loop {
                    match self.bump() {
                        Tok::Var(v) => params.push(v),
                        other => {
                            return Err(self.err(format!(
                                "function parameters are `$`-variables, found {other}"
                            )))
                        }
                    }
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen)?;
            self.expect(Tok::Eq)?;
            let body = self.expr()?;
            self.expect(Tok::Semi)?;
            return Ok(LetItem::Func(crate::ast::FuncDef { name, params, body }));
        }
        self.expect(Tok::Eq)?;
        let expr = self.expr()?;
        self.expect(Tok::Semi)?;
        Ok(LetItem::Param(LetDef { name, expr }))
    }

    fn rule(&mut self) -> Result<RuleDef> {
        self.expect(Tok::Ident("rule".into()))?;
        let head = self.head()?;
        self.expect(Tok::LBrace)?;
        let mut body = Vec::new();
        loop {
            match self.peek() {
                Tok::RBrace => {
                    self.bump();
                    return Ok(RuleDef { head, body });
                }
                _ => body.push(self.stmt()?),
            }
        }
    }

    fn head(&mut self) -> Result<RuleHead> {
        let op_name = self.ident()?;
        let op = OperatorKind::parse(&op_name)
            .ok_or_else(|| self.err(format!("unknown operator `{op_name}` in rule head")))?;
        self.expect(Tok::LParen)?;
        let mut raw: Vec<HeadArg> = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                raw.push(self.head_arg()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.classify_head(op, raw)
    }

    /// Parse one head argument without positional context.
    fn head_arg(&mut self) -> Result<HeadArg> {
        if *self.peek() == Tok::LBracket {
            self.bump();
            let mut attrs = Vec::new();
            if *self.peek() != Tok::RBracket {
                loop {
                    attrs.push(self.ident()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RBracket)?;
            return Ok(HeadArg::AttrList(attrs));
        }
        // Parse a term; a comparison operator promotes it to a predicate.
        let left = match self.bump() {
            Tok::Ident(s) => TermTok::Ident(s),
            Tok::Var(s) => TermTok::Var(s),
            Tok::Number(n) => TermTok::Const(num_to_value(n)),
            Tok::Str(s) => TermTok::Const(Value::Str(s)),
            other => return Err(self.err(format!("unexpected {other} in rule head"))),
        };
        let cmp = match self.peek() {
            Tok::Eq => Some(CompareOp::Eq),
            Tok::Ne => Some(CompareOp::Ne),
            Tok::Lt => Some(CompareOp::Lt),
            Tok::Le => Some(CompareOp::Le),
            Tok::Gt => Some(CompareOp::Gt),
            Tok::Ge => Some(CompareOp::Ge),
            _ => None,
        };
        let Some(op) = cmp else {
            return Ok(match left {
                TermTok::Ident(s) => HeadArg::Coll(CollTerm::Named(s)),
                TermTok::Var(s) => HeadArg::Coll(CollTerm::Var(s)),
                TermTok::Const(v) => {
                    return Err(self.err(format!("unexpected constant {v} in rule head")))
                }
            });
        };
        self.bump();
        let lattr = match left {
            TermTok::Ident(s) => AttrTerm::Named(s),
            TermTok::Var(s) => AttrTerm::Var(s),
            TermTok::Const(v) => {
                return Err(self.err(format!("predicate left side cannot be constant {v}")))
            }
        };
        let right = match self.bump() {
            Tok::Ident(s) => PredRhs::Ident(s),
            Tok::Var(s) => PredRhs::Var(s),
            Tok::Number(n) => PredRhs::Const(num_to_value(n)),
            Tok::Str(s) => PredRhs::Const(Value::Str(s)),
            Tok::Minus => PredRhs::Const(num_to_value(-self.number()?)),
            other => return Err(self.err(format!("unexpected {other} after comparison"))),
        };
        Ok(HeadArg::Pred {
            left: lattr,
            op,
            right,
        })
    }

    /// Re-classify positionally: collection slots stay collections; the
    /// trailing slot of `select`/`project`/`join` may be a free predicate
    /// variable; `sort`'s second slot is an attribute.
    fn classify_head(&self, op: OperatorKind, mut raw: Vec<HeadArg>) -> Result<RuleHead> {
        let arity = match op {
            OperatorKind::Scan
            | OperatorKind::Dedup
            | OperatorKind::Aggregate
            | OperatorKind::Submit => 1,
            OperatorKind::Select
            | OperatorKind::Project
            | OperatorKind::Sort
            | OperatorKind::Union => 2,
            OperatorKind::Join => 3,
        };
        if raw.len() != arity {
            return Err(self.err(format!(
                "operator `{op}` takes {arity} argument(s), found {}",
                raw.len()
            )));
        }
        // Positions holding collections: 0 always; 1 for join/union.
        let coll_slots: &[usize] = match op {
            OperatorKind::Join | OperatorKind::Union => &[0, 1],
            _ => &[0],
        };
        for (idx, arg) in raw.iter_mut().enumerate() {
            if coll_slots.contains(&idx) {
                if !matches!(arg, HeadArg::Coll(_)) {
                    return Err(self.err(format!(
                        "argument {} of `{op}` must be a collection term",
                        idx + 1
                    )));
                }
                continue;
            }
            // Trailing argument.
            match op {
                OperatorKind::Sort => {
                    // A collection-parsed term here is really an attribute.
                    if let HeadArg::Coll(c) = arg {
                        *arg = HeadArg::Attr(match c {
                            CollTerm::Named(s) => AttrTerm::Named(std::mem::take(s)),
                            CollTerm::Var(s) => AttrTerm::Var(std::mem::take(s)),
                        });
                    } else {
                        return Err(self.err("sort takes an attribute as second argument"));
                    }
                }
                OperatorKind::Select | OperatorKind::Join | OperatorKind::Project => match arg {
                    HeadArg::Pred { .. } | HeadArg::AttrList(_) => {}
                    HeadArg::Coll(CollTerm::Var(v)) => {
                        *arg = HeadArg::AnyPred(std::mem::take(v));
                    }
                    _ => {
                        return Err(self.err(format!(
                            "last argument of `{op}` must be a predicate, attribute list \
                                 or free variable"
                        )))
                    }
                },
                _ => {
                    return Err(self.err(format!("operator `{op}` takes no trailing argument")));
                }
            }
        }
        Ok(RuleHead { op, args: raw })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        if *self.peek() == Tok::Ident("let".into()) {
            self.bump();
            let name = self.ident()?;
            self.expect(Tok::Eq)?;
            let expr = self.expr()?;
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Let { name, expr });
        }
        let name = self.ident()?;
        let var = CostVar::parse(&name).ok_or_else(|| {
            self.err(format!(
                "`{name}` is not a result variable (expected one of TimeFirst, TimeNext, \
                 TotalTime, CountObject, TotalSize) — use `let {name} = …;` for locals"
            ))
        })?;
        self.expect(Tok::Eq)?;
        let expr = self.expr()?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::Assign { var, expr })
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if *self.peek() == Tok::Minus {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Tok::Number(n) => Ok(Expr::Num(n)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Var(v) => {
                if *self.peek() == Tok::Dot {
                    let segs = self.path_segs()?;
                    Ok(Expr::Path {
                        base: PathBase::Var(v),
                        segs,
                    })
                } else {
                    Ok(Expr::Var(v))
                }
            }
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::Call(name, args));
                }
                if *self.peek() == Tok::Dot {
                    let segs = self.path_segs()?;
                    return Ok(Expr::Path {
                        base: PathBase::Ident(name),
                        segs,
                    });
                }
                Ok(Expr::Ident(name))
            }
            other => Err(self.err(format!("unexpected {other} in expression"))),
        }
    }

    fn path_segs(&mut self) -> Result<Vec<PathSeg>> {
        let mut segs = Vec::new();
        while *self.peek() == Tok::Dot {
            self.bump();
            match self.bump() {
                Tok::Ident(s) => segs.push(PathSeg::Ident(s)),
                Tok::Var(s) => segs.push(PathSeg::Var(s)),
                other => return Err(self.err(format!("expected path segment, found {other}"))),
            }
        }
        if segs.is_empty() || segs.len() > 2 {
            return Err(self.err(format!(
                "path expressions have 1 or 2 segments, found {}",
                segs.len()
            )));
        }
        Ok(segs)
    }
}

enum TermTok {
    Ident(String),
    Var(String),
    Const(Value),
}

/// A `let` item: plain parameter or helper function.
enum LetItem {
    Param(LetDef),
    Func(crate::ast::FuncDef),
}

/// Map IDL elementary type keywords to [`DataType`].
fn parse_type(s: &str) -> Option<DataType> {
    Some(match s {
        "long" | "short" | "int" => DataType::Long,
        "double" | "float" => DataType::Double,
        "string" | "String" => DataType::Str,
        "boolean" | "bool" => DataType::Bool,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure_4_style_interface() {
        let doc = parse_document(
            r#"
            interface Employee {
                attribute long salary;
                attribute string name;
                cardinality extent(10000, 1200000, 120);
                cardinality attribute(salary, indexed, 10000, 1000, 30000);
                cardinality attribute(name, indexed, 10000, "Adiba", "Valduriez");
            }
            "#,
        )
        .unwrap();
        assert_eq!(doc.interfaces.len(), 1);
        let i = &doc.interfaces[0];
        assert_eq!(i.name, "Employee");
        assert_eq!(i.attributes.len(), 2);
        assert_eq!(i.attributes[0], ("salary".into(), DataType::Long));
        let e = i.extent.as_ref().unwrap();
        assert_eq!(
            (e.count_object, e.total_size, e.object_size),
            (10000, 1200000, 120)
        );
        assert_eq!(i.attribute_cards[1].min, Value::Str("Adiba".into()));
        assert!(i.attribute_cards[0].indexed);
    }

    #[test]
    fn parses_figure_8_rules() {
        let doc = parse_document(
            r#"
            rule scan(employee) {
                TotalTime = 120 + employee.TotalSize * 12
                          + employee.CountObject / employee.salary.CountDistinct;
            }
            rule select($C, $A = $V) {
                CountObject = $C.CountObject * selectivity($A, $V);
                TotalSize = CountObject * $C.ObjectSize;
                TotalTime = $C.TotalTime + $C.TotalSize * 25;
            }
            "#,
        )
        .unwrap();
        assert_eq!(doc.rules.len(), 2);
        let scan = &doc.rules[0];
        assert_eq!(scan.head.op, OperatorKind::Scan);
        assert_eq!(
            scan.head.args,
            vec![HeadArg::Coll(CollTerm::Named("employee".into()))]
        );
        assert_eq!(scan.body.len(), 1);

        let select = &doc.rules[1];
        assert_eq!(select.head.op, OperatorKind::Select);
        assert!(matches!(
            &select.head.args[1],
            HeadArg::Pred { left: AttrTerm::Var(a), op: CompareOp::Eq, right: PredRhs::Var(v) }
                if a == "A" && v == "V"
        ));
        assert_eq!(select.body.len(), 3);
        match &select.body[0] {
            Stmt::Assign { var, expr } => {
                assert_eq!(*var, CostVar::CountObject);
                assert!(matches!(expr, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_predicate_scope_heads() {
        let doc = parse_document(
            r#"
            rule select(Employee, salary = 77) { TotalTime = 1; }
            rule select(Employee, salary = $V) { TotalTime = 2; }
            rule select($C, $P) { TotalTime = 3; }
            rule join($R1, $R2, $A1 = $A2) { TotalTime = 4; }
            rule join(Employee, Book, id = id) { TotalTime = 5; }
            "#,
        )
        .unwrap();
        assert_eq!(doc.rules.len(), 5);
        assert!(matches!(
            &doc.rules[0].head.args[1],
            HeadArg::Pred {
                right: PredRhs::Const(Value::Long(77)),
                ..
            }
        ));
        assert!(matches!(&doc.rules[2].head.args[1], HeadArg::AnyPred(p) if p == "P"));
        assert!(matches!(
            &doc.rules[3].head.args[2],
            HeadArg::Pred {
                left: AttrTerm::Var(_),
                right: PredRhs::Var(_),
                ..
            }
        ));
        assert!(matches!(
            &doc.rules[4].head.args[2],
            HeadArg::Pred { left: AttrTerm::Named(a), right: PredRhs::Ident(b), .. }
                if a == "id" && b == "id"
        ));
    }

    #[test]
    fn parses_lets_and_locals() {
        let doc = parse_document(
            r#"
            let PageSize = 4096;
            let IO = 25.0;
            rule select($C, Id = $V) {
                let CountPage = $C.TotalSize / PageSize;
                CountObject = $C.CountObject * ($V - $C.Id.Min) / ($C.Id.Max - $C.Id.Min);
                TotalSize = CountObject * $C.ObjectSize;
                TotalTime = IO * CountPage * (1 - exp(0 - CountObject / CountPage))
                          + CountObject * 0.009;
            }
            "#,
        )
        .unwrap();
        assert_eq!(doc.lets.len(), 2);
        assert_eq!(doc.rules[0].body.len(), 4);
        assert!(matches!(&doc.rules[0].body[0], Stmt::Let { name, .. } if name == "CountPage"));
    }

    #[test]
    fn project_and_sort_heads() {
        let doc = parse_document(
            r#"
            rule project($C, [id, name]) { TotalTime = 1; }
            rule sort($C, $A) { TotalTime = 2; }
            rule sort($C, salary) { TotalTime = 3; }
            "#,
        )
        .unwrap();
        assert!(matches!(&doc.rules[0].head.args[1], HeadArg::AttrList(l) if l.len() == 2));
        assert!(matches!(
            &doc.rules[1].head.args[1],
            HeadArg::Attr(AttrTerm::Var(_))
        ));
        assert!(matches!(
            &doc.rules[2].head.args[1],
            HeadArg::Attr(AttrTerm::Named(_))
        ));
    }

    #[test]
    fn collection_scope_rules_nest_in_interfaces() {
        let doc = parse_document(
            r#"
            interface AtomicParts {
                attribute long Id;
                cardinality extent(70000, 3920000, 56);
                rule scan(AtomicParts) { TotalTime = 120; }
            }
            "#,
        )
        .unwrap();
        assert_eq!(doc.interfaces[0].rules.len(), 1);
    }

    #[test]
    fn arity_errors() {
        assert!(parse_document("rule scan($C, $D) { }").is_err());
        assert!(parse_document("rule join($A, $B) { }").is_err());
        assert!(parse_document("rule select($C) { }").is_err());
    }

    #[test]
    fn non_result_assignment_rejected() {
        let e = parse_document("rule scan($C) { Total = 1; }").unwrap_err();
        assert!(
            e.message().contains("not a result variable"),
            "{}",
            e.message()
        );
    }

    #[test]
    fn unknown_operator_rejected() {
        assert!(parse_document("rule frobnicate($C) { }").is_err());
    }

    #[test]
    fn deep_paths_rejected() {
        assert!(parse_document("rule scan($C) { TotalTime = a.b.c.d; }").is_err());
    }

    #[test]
    fn precedence_and_negation() {
        let doc = parse_document("rule scan($C) { TotalTime = 1 + 2 * 3 - -4; }").unwrap();
        let Stmt::Assign { expr, .. } = &doc.rules[0].body[0] else {
            panic!()
        };
        // ((1 + (2*3)) - (-4))
        let Expr::Bin(BinOp::Sub, l, r) = expr else {
            panic!("{expr:?}")
        };
        assert!(matches!(**r, Expr::Neg(_)));
        let Expr::Bin(BinOp::Add, _, mul) = &**l else {
            panic!()
        };
        assert!(matches!(**mul, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn empty_document_ok() {
        let doc = parse_document("  // nothing\n").unwrap();
        assert_eq!(doc, Document::default());
    }

    #[test]
    fn negative_min_in_cardinality() {
        let doc = parse_document(
            "interface T { attribute long x; cardinality attribute(x, unindexed, 5, -10, 10); }",
        )
        .unwrap();
        assert_eq!(doc.interfaces[0].attribute_cards[0].min, Value::Long(-10));
    }
}

//! Compiler from cost-rule ASTs to stack bytecode.
//!
//! "In compiling a rule, the head of each rule is converted into an
//! internal structure that represents the operator pattern … The rule body
//! is converted into object code. This compilation speeds up both the
//! subsequent matching between query tree operators and rule heads and the
//! evaluation for cost formula." (§4.1)

use std::collections::HashMap;

use disco_catalog::{AttributeStats, CollectionStats, ExtentStats, StatName};
use disco_common::{AttributeDef, DiscoError, Result, Schema, Value};

use crate::ast::{
    AttrTerm, BinOp, CostVar, Document, Expr, FuncDef, HeadArg, InterfaceDef, PathBase, PathLeaf,
    PathSeg, RuleDef, RuleHead, Stmt,
};
use crate::builtins::Builtin;
use crate::bytecode::{AttrSpec, ChildRef, CollSpec, CompiledBody, Instr, PathSpec, Program};
use crate::vm::{eval_program, EvalEnv};

/// A rule ready for registration in the mediator: its (unchanged) head
/// pattern plus the compiled body.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRule {
    pub head: RuleHead,
    pub body: CompiledBody,
    /// Collection the rule was declared under, when it came from inside an
    /// interface body (collection-oriented rules, §3.3).
    pub declared_in: Option<String>,
}

/// The full compilation result of a registration document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledDocument {
    /// `(collection name, schema, statistics)` for each interface.
    pub interfaces: Vec<(String, Schema, CollectionStats)>,
    /// Wrapper-level parameters, evaluated at compile time in order.
    pub params: Vec<(String, Value)>,
    /// All rules (wrapper-scope first, then per-interface), in source
    /// order — the paper breaks specificity ties by declaration order.
    pub rules: Vec<CompiledRule>,
}

/// Compile a parsed document: expand helper functions, evaluate `let`
/// parameters, convert interfaces to catalog records, compile every rule
/// body.
pub fn compile_document(doc: &Document) -> Result<CompiledDocument> {
    let mut out = CompiledDocument::default();

    // Expand helper functions: each body sees the previously defined
    // functions fully expanded, so rule compilation needs one pass.
    let mut funcs: HashMap<String, FuncDef> = HashMap::new();
    for f in &doc.funcs {
        if Builtin::parse(&f.name).is_some() {
            return Err(DiscoError::Parse(format!(
                "`{}` shadows a builtin function",
                f.name
            )));
        }
        if references_call(&f.body, &f.name) {
            return Err(DiscoError::Parse(format!(
                "function `{}` may not call itself",
                f.name
            )));
        }
        let expanded = FuncDef {
            name: f.name.clone(),
            params: f.params.clone(),
            body: expand_expr(&f.body, &funcs)?,
        };
        funcs.insert(f.name.clone(), expanded);
    }

    // Evaluate wrapper parameters eagerly, each seeing the previous ones.
    for l in &doc.lets {
        let expr = expand_expr(&l.expr, &funcs)?;
        let body = compile_body(
            &[Stmt::Let {
                name: "__value".into(),
                expr,
            }],
            &HeadVars::default(),
        )?;
        let env = ParamOnlyEnv {
            params: &out.params,
        };
        let locals = eval_program(&body.program, &env)
            .map_err(|e| DiscoError::Parse(format!("evaluating `let {}`: {e}", l.name)))?;
        let value = locals
            .first()
            .cloned()
            .ok_or_else(|| DiscoError::Parse(format!("`let {}` produced no value", l.name)))?;
        out.params.push((l.name.clone(), value));
    }

    for rule in &doc.rules {
        out.rules
            .push(compile_rule(&expand_rule(rule, &funcs)?, None)?);
    }
    for iface in &doc.interfaces {
        let (schema, stats) = interface_to_catalog(iface);
        for rule in &iface.rules {
            out.rules.push(compile_rule(
                &expand_rule(rule, &funcs)?,
                Some(iface.name.clone()),
            )?);
        }
        out.interfaces.push((iface.name.clone(), schema, stats));
    }
    Ok(out)
}

/// Does `e` contain a call to `name`?
fn references_call(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Call(f, args) => f == name || args.iter().any(|a| references_call(a, name)),
        Expr::Bin(_, l, r) => references_call(l, name) || references_call(r, name),
        Expr::Neg(inner) => references_call(inner, name),
        _ => false,
    }
}

/// Expand user-function calls in an expression.
fn expand_expr(e: &Expr, funcs: &HashMap<String, FuncDef>) -> Result<Expr> {
    Ok(match e {
        Expr::Call(name, args) => {
            let args: Vec<Expr> = args
                .iter()
                .map(|a| expand_expr(a, funcs))
                .collect::<Result<_>>()?;
            match funcs.get(name) {
                Some(f) => {
                    if args.len() != f.params.len() {
                        return Err(DiscoError::Parse(format!(
                            "`{name}` takes {} argument(s), found {}",
                            f.params.len(),
                            args.len()
                        )));
                    }
                    substitute(&f.body, &f.params, &args)?
                }
                None => Expr::Call(name.clone(), args),
            }
        }
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(expand_expr(l, funcs)?),
            Box::new(expand_expr(r, funcs)?),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(expand_expr(inner, funcs)?)),
        other => other.clone(),
    })
}

/// Replace function parameters (`$p`) by the call arguments.
fn substitute(body: &Expr, params: &[String], args: &[Expr]) -> Result<Expr> {
    Ok(match body {
        Expr::Var(v) => match params.iter().position(|p| p == v) {
            Some(i) => args[i].clone(),
            None => body.clone(),
        },
        Expr::Path {
            base: PathBase::Var(v),
            ..
        } if params.iter().any(|p| p == v) => {
            return Err(DiscoError::Parse(format!(
                "function parameter `${v}` is a value and cannot be used as a collection"
            )))
        }
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(substitute(l, params, args)?),
            Box::new(substitute(r, params, args)?),
        ),
        Expr::Neg(inner) => Expr::Neg(Box::new(substitute(inner, params, args)?)),
        Expr::Call(f, call_args) => Expr::Call(
            f.clone(),
            call_args
                .iter()
                .map(|a| substitute(a, params, args))
                .collect::<Result<_>>()?,
        ),
        other => other.clone(),
    })
}

/// Expand all function calls inside a rule body.
fn expand_rule(rule: &RuleDef, funcs: &HashMap<String, FuncDef>) -> Result<RuleDef> {
    let body = rule
        .body
        .iter()
        .map(|s| {
            Ok(match s {
                Stmt::Let { name, expr } => Stmt::Let {
                    name: name.clone(),
                    expr: expand_expr(expr, funcs)?,
                },
                Stmt::Assign { var, expr } => Stmt::Assign {
                    var: *var,
                    expr: expand_expr(expr, funcs)?,
                },
            })
        })
        .collect::<Result<_>>()?;
    Ok(RuleDef {
        head: rule.head.clone(),
        body,
    })
}

/// Convert an interface definition to catalog schema + statistics.
pub fn interface_to_catalog(iface: &InterfaceDef) -> (Schema, CollectionStats) {
    let schema = Schema::new(
        iface
            .attributes
            .iter()
            .map(|(n, t)| AttributeDef::new(n.clone(), *t))
            .collect(),
    );
    let extent = iface
        .extent
        .as_ref()
        .map(|e| ExtentStats {
            count_object: e.count_object,
            total_size: e.total_size,
            object_size: e.object_size,
            count_page: None,
        })
        .unwrap_or_else(|| {
            // Standard values, "as usual" (§6).
            ExtentStats::of(
                disco_catalog::stats::DEFAULT_COUNT_OBJECT,
                disco_catalog::stats::DEFAULT_OBJECT_SIZE,
            )
        });
    let mut stats = CollectionStats::new(extent);
    for card in &iface.attribute_cards {
        let mut a = AttributeStats::new(card.count_distinct, card.min.clone(), card.max.clone());
        a.indexed = card.indexed;
        stats = stats.with_attribute(card.attribute.clone(), a);
    }
    (schema, stats)
}

/// Compile one rule.
pub fn compile_rule(rule: &RuleDef, declared_in: Option<String>) -> Result<CompiledRule> {
    let head_vars = HeadVars::from_head(&rule.head);
    let body = compile_body(&rule.body, &head_vars)?;
    Ok(CompiledRule {
        head: rule.head.clone(),
        body,
        declared_in,
    })
}

/// The variables a head binds, used to validate body references.
#[derive(Debug, Default)]
pub struct HeadVars {
    names: Vec<String>,
}

impl HeadVars {
    /// Declare head variables explicitly — for compiling synthetic bodies
    /// outside a full rule (tests, recorded constants).
    pub fn of(names: &[&str]) -> Self {
        HeadVars {
            names: names.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    fn from_head(head: &RuleHead) -> Self {
        let mut names = Vec::new();
        let mut push = |s: &str| {
            if !names.iter().any(|n| n == s) {
                names.push(s.to_owned());
            }
        };
        for arg in &head.args {
            match arg {
                HeadArg::Coll(crate::ast::CollTerm::Var(v)) => push(v),
                HeadArg::Coll(_) => {}
                HeadArg::Pred { left, right, .. } => {
                    if let AttrTerm::Var(v) = left {
                        push(v);
                    }
                    if let crate::ast::PredRhs::Var(v) = right {
                        push(v);
                    }
                }
                HeadArg::AnyPred(v) => push(v),
                HeadArg::Attr(AttrTerm::Var(v)) => push(v),
                HeadArg::Attr(_) | HeadArg::AttrList(_) => {}
            }
        }
        HeadVars { names }
    }

    fn contains(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }
}

/// Compile a rule body to a program plus its output map.
pub fn compile_body(body: &[Stmt], head_vars: &HeadVars) -> Result<CompiledBody> {
    let mut c = Compiler {
        program: Program::default(),
        locals: HashMap::new(),
        head_vars,
    };
    let mut outputs = Vec::new();
    for stmt in body {
        match stmt {
            Stmt::Let { name, expr } => {
                c.expr(expr)?;
                let slot = c.local_slot(name);
                c.program.instrs.push(Instr::StoreLocal(slot));
            }
            Stmt::Assign { var, expr } => {
                c.expr(expr)?;
                let slot = c.local_slot(var.name());
                c.program.instrs.push(Instr::StoreLocal(slot));
                outputs.push((*var, slot));
            }
        }
    }
    c.program.n_locals = c.locals.len() as u16;
    Ok(CompiledBody {
        program: c.program,
        outputs,
    })
}

struct Compiler<'a> {
    program: Program,
    locals: HashMap<String, u16>,
    head_vars: &'a HeadVars,
}

impl Compiler<'_> {
    fn local_slot(&mut self, name: &str) -> u16 {
        if let Some(&s) = self.locals.get(name) {
            return s;
        }
        let s = self.locals.len() as u16;
        self.locals.insert(name.to_owned(), s);
        s
    }

    fn name_idx(&mut self, name: &str) -> u16 {
        if let Some(i) = self.program.names.iter().position(|n| n == name) {
            return i as u16;
        }
        self.program.names.push(name.to_owned());
        (self.program.names.len() - 1) as u16
    }

    fn const_idx(&mut self, v: Value) -> u16 {
        if let Some(i) = self.program.consts.iter().position(|c| *c == v) {
            return i as u16;
        }
        self.program.consts.push(v);
        (self.program.consts.len() - 1) as u16
    }

    fn path_idx(&mut self, p: PathSpec) -> u16 {
        if let Some(i) = self.program.paths.iter().position(|q| *q == p) {
            return i as u16;
        }
        self.program.paths.push(p);
        (self.program.paths.len() - 1) as u16
    }

    fn expr(&mut self, e: &Expr) -> Result<()> {
        match e {
            Expr::Num(n) => {
                let idx = self.const_idx(Value::Double(*n));
                self.program.instrs.push(Instr::Const(idx));
            }
            Expr::Str(s) => {
                let idx = self.const_idx(Value::Str(s.clone()));
                self.program.instrs.push(Instr::Const(idx));
            }
            Expr::Ident(name) => {
                // Resolution order: rule-local (including previously
                // assigned result variables), bare result variable of the
                // current node, wrapper parameter.
                if let Some(&slot) = self.locals.get(name) {
                    self.program.instrs.push(Instr::LoadLocal(slot));
                } else if let Some(var) = CostVar::parse(name) {
                    self.program.instrs.push(Instr::LoadSelfVar(var));
                } else {
                    let idx = self.name_idx(name);
                    self.program.instrs.push(Instr::LoadParam(idx));
                }
            }
            Expr::Var(v) => {
                if !self.head_vars.contains(v) {
                    return Err(DiscoError::Parse(format!(
                        "`${v}` is not bound by the rule head"
                    )));
                }
                let idx = self.name_idx(v);
                self.program.instrs.push(Instr::LoadBinding(idx));
            }
            Expr::Path { base, segs } => {
                let spec = self.path_spec(base, segs)?;
                let idx = self.path_idx(spec);
                self.program.instrs.push(Instr::LoadPath(idx));
            }
            Expr::Neg(inner) => {
                self.expr(inner)?;
                self.program.instrs.push(Instr::Neg);
            }
            Expr::Bin(op, l, r) => {
                self.expr(l)?;
                self.expr(r)?;
                self.program.instrs.push(match op {
                    BinOp::Add => Instr::Add,
                    BinOp::Sub => Instr::Sub,
                    BinOp::Mul => Instr::Mul,
                    BinOp::Div => Instr::Div,
                });
            }
            Expr::Call(name, args) => {
                if let Some(b) = Builtin::parse(name) {
                    if args.len() != b.arity() {
                        return Err(DiscoError::Parse(format!(
                            "`{name}` takes {} argument(s), found {}",
                            b.arity(),
                            args.len()
                        )));
                    }
                    for a in args {
                        self.expr(a)?;
                    }
                    self.program.instrs.push(Instr::CallBuiltin(b));
                } else {
                    if args.len() > u8::MAX as usize {
                        return Err(DiscoError::Parse(format!("too many arguments to `{name}`")));
                    }
                    for a in args {
                        self.expr(a)?;
                    }
                    let idx = self.name_idx(name);
                    self.program
                        .instrs
                        .push(Instr::CallEnv(idx, args.len() as u8));
                }
            }
        }
        Ok(())
    }

    fn path_spec(&mut self, base: &PathBase, segs: &[PathSeg]) -> Result<PathSpec> {
        let coll = match base {
            PathBase::Var(v) => {
                if !self.head_vars.contains(v) {
                    return Err(DiscoError::Parse(format!(
                        "`${v}` is not bound by the rule head"
                    )));
                }
                CollSpec::Binding(v.clone())
            }
            PathBase::Ident(name) => match ChildRef::parse(name) {
                Some(c) => CollSpec::Child(c),
                None => CollSpec::Named(name.clone()),
            },
        };
        let (attr, leaf_name) = match segs {
            [leaf] => (None, leaf),
            [attr, leaf] => {
                let a = match attr {
                    PathSeg::Ident(s) => AttrSpec::Named(s.clone()),
                    PathSeg::Var(v) => {
                        if !self.head_vars.contains(v) {
                            return Err(DiscoError::Parse(format!(
                                "`${v}` is not bound by the rule head"
                            )));
                        }
                        AttrSpec::Binding(v.clone())
                    }
                };
                (Some(a), leaf)
            }
            _ => return Err(DiscoError::Parse("invalid path arity".into())),
        };
        let leaf_str = match leaf_name {
            PathSeg::Ident(s) => s.as_str(),
            PathSeg::Var(_) => {
                return Err(DiscoError::Parse(
                    "the final path segment must be a statistic or result name, not a variable"
                        .into(),
                ))
            }
        };
        // `CountObject`/`TotalSize` name both a statistic and a result
        // variable; compiled as Cost, the environment falls back to the
        // statistic when no child value is available.
        let leaf = if attr.is_none() {
            if let Some(var) = CostVar::parse(leaf_str) {
                PathLeaf::Cost(var)
            } else if let Some(stat) = StatName::parse(leaf_str) {
                PathLeaf::Stat(stat)
            } else {
                return Err(DiscoError::Parse(format!(
                    "`{leaf_str}` is not a statistic or result variable"
                )));
            }
        } else {
            match StatName::parse(leaf_str) {
                Some(stat) if stat.is_attribute_stat() => PathLeaf::Stat(stat),
                Some(_) => {
                    return Err(DiscoError::Parse(format!(
                        "`{leaf_str}` is an extent statistic and takes no attribute"
                    )))
                }
                None => {
                    return Err(DiscoError::Parse(format!(
                        "`{leaf_str}` is not an attribute statistic"
                    )))
                }
            }
        };
        Ok(PathSpec { coll, attr, leaf })
    }
}

/// Environment exposing only already-evaluated parameters; used while
/// evaluating `let` definitions at compile time.
struct ParamOnlyEnv<'a> {
    params: &'a [(String, Value)],
}

impl EvalEnv for ParamOnlyEnv<'_> {
    fn path(&self, _coll: &CollSpec, _attr: Option<&AttrSpec>, _leaf: PathLeaf) -> Option<Value> {
        None
    }

    fn binding(&self, _name: &str) -> Option<Value> {
        None
    }

    fn param(&self, name: &str) -> Option<Value> {
        self.params
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }

    fn self_var(&self, _var: CostVar) -> Option<f64> {
        None
    }

    fn call(&self, _func: &str, _args: &[Value]) -> Option<Value> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn compile(src: &str) -> CompiledDocument {
        compile_document(&parse_document(src).unwrap()).unwrap()
    }

    #[test]
    fn lets_evaluate_in_order() {
        let doc = compile("let PageSize = 4096; let Half = PageSize / 2;");
        assert_eq!(doc.params[0], ("PageSize".into(), Value::Double(4096.0)));
        assert_eq!(doc.params[1], ("Half".into(), Value::Double(2048.0)));
    }

    #[test]
    fn let_referencing_unknown_param_fails() {
        let doc = parse_document("let X = Nope * 2;").unwrap();
        assert!(compile_document(&doc).is_err());
    }

    #[test]
    fn interface_statistics_convert() {
        let doc = compile(
            r#"interface Employee {
                attribute long salary;
                cardinality extent(10000, 1200000, 120);
                cardinality attribute(salary, indexed, 100, 1000, 30000);
            }"#,
        );
        let (name, schema, stats) = &doc.interfaces[0];
        assert_eq!(name, "Employee");
        assert_eq!(schema.arity(), 1);
        assert_eq!(stats.extent.count_object, 10_000);
        let a = stats.attribute("salary");
        assert!(a.indexed);
        assert_eq!(a.max, Value::Long(30_000));
    }

    #[test]
    fn interface_without_extent_gets_defaults() {
        let doc = compile("interface T { attribute long x; }");
        let (_, _, stats) = &doc.interfaces[0];
        assert_eq!(
            stats.extent.count_object,
            disco_catalog::stats::DEFAULT_COUNT_OBJECT
        );
    }

    #[test]
    fn rule_bodies_compile_with_outputs() {
        let doc = compile(
            r#"rule select($C, $A = $V) {
                CountObject = $C.CountObject * selectivity($A, $V);
                TotalTime = $C.TotalTime + CountObject * 2;
            }"#,
        );
        let rule = &doc.rules[0];
        assert_eq!(rule.body.outputs.len(), 2);
        assert!(rule.body.output_slot(CostVar::CountObject).is_some());
        // The bare CountObject in the second formula must load the local,
        // not LoadSelfVar.
        assert!(rule
            .body
            .program
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::LoadLocal(_))));
        // selectivity is an env call.
        assert!(rule
            .body
            .program
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::CallEnv(_, 2))));
    }

    #[test]
    fn bare_result_var_without_prior_assignment_loads_self() {
        let doc = compile("rule select($C, $P) { TotalTime = CountObject * 2; }");
        assert!(doc.rules[0]
            .body
            .program
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::LoadSelfVar(CostVar::CountObject))));
    }

    #[test]
    fn unbound_variable_rejected() {
        let doc = parse_document("rule scan($C) { TotalTime = $V; }").unwrap();
        let e = compile_document(&doc).unwrap_err();
        assert!(e.message().contains("not bound"), "{}", e.message());
    }

    #[test]
    fn builtin_arity_checked() {
        let doc = parse_document("rule scan($C) { TotalTime = min(1); }").unwrap();
        assert!(compile_document(&doc).is_err());
    }

    #[test]
    fn attribute_stat_paths() {
        let doc = compile("rule select($C, $A = $V) { TotalTime = $C.$A.CountDistinct; }");
        let p = &doc.rules[0].body.program.paths[0];
        assert_eq!(p.attr, Some(AttrSpec::Binding("A".into())));
        assert_eq!(p.leaf, PathLeaf::Stat(StatName::CountDistinct));
    }

    #[test]
    fn extent_stat_with_attribute_rejected() {
        let doc = parse_document("rule scan($C) { TotalTime = $C.salary.TotalSize; }").unwrap();
        assert!(compile_document(&doc).is_err());
    }

    #[test]
    fn time_leaf_on_named_collection_compiles_as_cost() {
        // Figure 8: `C.TotalTime` — the child's computed time.
        let doc = compile("rule select(employee, $P) { TotalTime = input.TotalTime + 1; }");
        let p = &doc.rules[0].body.program.paths[0];
        assert_eq!(p.coll, CollSpec::Child(ChildRef::Input));
        assert_eq!(p.leaf, PathLeaf::Cost(CostVar::TotalTime));
    }

    #[test]
    fn collection_scope_rules_remember_their_interface() {
        let doc = compile(
            r#"interface AtomicParts {
                attribute long Id;
                rule scan(AtomicParts) { TotalTime = 1; }
            }
            rule scan($C) { TotalTime = 2; }"#,
        );
        assert_eq!(doc.rules.len(), 2);
        // Wrapper-scope rules come first, then interface rules.
        assert_eq!(doc.rules[0].declared_in, None);
        assert_eq!(doc.rules[1].declared_in, Some("AtomicParts".into()));
    }

    #[test]
    fn unknown_leaf_rejected() {
        let doc = parse_document("rule scan($C) { TotalTime = $C.Bogus; }").unwrap();
        assert!(compile_document(&doc).is_err());
    }
}

#[cfg(test)]
mod func_tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn functions_expand_inline() {
        let doc = parse_document(
            "let PageSize = 4096;
             let pages($bytes) = ceil($bytes / PageSize);
             rule scan($C) { TotalTime = pages(10000) * 25; }",
        )
        .unwrap();
        let compiled = compile_document(&doc).unwrap();
        // The call is gone: only builtins and params remain.
        let rule = &compiled.rules[0];
        assert!(!rule
            .body
            .program
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::CallEnv(..))));
        assert!(rule
            .body
            .program
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::CallBuiltin(_))));
    }

    #[test]
    fn functions_compose() {
        let doc = parse_document(
            "let double($x) = $x * 2;
             let quad($x) = double(double($x));
             rule scan($C) { TotalTime = quad(10); }",
        )
        .unwrap();
        let compiled = compile_document(&doc).unwrap();
        // Evaluate the constant-only body.
        struct NoEnv;
        impl crate::vm::EvalEnv for NoEnv {
            fn path(
                &self,
                _: &crate::bytecode::CollSpec,
                _: Option<&crate::bytecode::AttrSpec>,
                _: PathLeaf,
            ) -> Option<Value> {
                None
            }
            fn binding(&self, _: &str) -> Option<Value> {
                None
            }
            fn param(&self, _: &str) -> Option<Value> {
                None
            }
            fn self_var(&self, _: CostVar) -> Option<f64> {
                None
            }
            fn call(&self, _: &str, _: &[Value]) -> Option<Value> {
                None
            }
        }
        let body = &compiled.rules[0].body;
        let locals = eval_program(&body.program, &NoEnv).unwrap();
        let slot = body.output_slot(CostVar::TotalTime).unwrap();
        assert_eq!(locals[slot as usize].as_f64(), Some(40.0));
    }

    #[test]
    fn recursion_rejected() {
        let doc =
            parse_document("let f($x) = f($x) + 1; rule scan($C) { TotalTime = f(1); }").unwrap();
        let e = compile_document(&doc).unwrap_err();
        assert!(e.message().contains("itself"), "{}", e.message());
    }

    #[test]
    fn arity_checked_for_user_functions() {
        let doc =
            parse_document("let f($x, $y) = $x + $y; rule scan($C) { TotalTime = f(1); }").unwrap();
        assert!(compile_document(&doc).is_err());
    }

    #[test]
    fn params_are_values_not_collections() {
        let doc = parse_document("let f($c) = $c.TotalSize; rule scan($C) { TotalTime = f(1); }")
            .unwrap();
        let e = compile_document(&doc).unwrap_err();
        assert!(e.message().contains("collection"), "{}", e.message());
    }

    #[test]
    fn builtin_shadowing_rejected() {
        let doc = parse_document("let min($x) = $x;").unwrap();
        assert!(compile_document(&doc).is_err());
    }

    #[test]
    fn unknown_calls_still_go_to_env() {
        let doc = parse_document(
            "let half($x) = $x / 2;
             rule select($C, $A = $V) { CountObject = half(selectivity($A, $V)); }",
        )
        .unwrap();
        let compiled = compile_document(&doc).unwrap();
        assert!(compiled.rules[0]
            .body
            .program
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::CallEnv(..))));
    }

    #[test]
    fn functions_print_and_round_trip() {
        let src = "let pages($b) = ceil(($b / 4096));\n";
        let doc = parse_document(src).unwrap();
        let printed = crate::print::print_document(&doc);
        assert_eq!(parse_document(&printed).unwrap(), doc);
        assert!(printed.contains("let pages($b)"));
    }
}

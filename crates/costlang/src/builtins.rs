//! Builtin functions available in cost formulas.
//!
//! The paper lets formulas "invoke functions from the standard Java
//! library"; our VM ships the numeric subset relevant to cost modelling.
//! Anything else (notably the ad-hoc `selectivity(A, V)` of Figure 8) is
//! dispatched to the evaluation environment.

/// Builtin functions compiled to direct opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    Min,
    Max,
    Exp,
    Ln,
    Log2,
    Log10,
    Sqrt,
    Pow,
    Ceil,
    Floor,
    Abs,
}

impl Builtin {
    /// Look up a builtin by its source name.
    pub fn parse(name: &str) -> Option<Builtin> {
        Some(match name {
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "exp" => Builtin::Exp,
            "ln" => Builtin::Ln,
            "log2" => Builtin::Log2,
            "log10" => Builtin::Log10,
            "sqrt" => Builtin::Sqrt,
            "pow" => Builtin::Pow,
            "ceil" => Builtin::Ceil,
            "floor" => Builtin::Floor,
            "abs" => Builtin::Abs,
            _ => return None,
        })
    }

    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Min | Builtin::Max | Builtin::Pow => 2,
            _ => 1,
        }
    }

    /// Apply to numeric arguments (already checked for arity).
    pub fn apply(self, args: &[f64]) -> f64 {
        match self {
            Builtin::Min => args[0].min(args[1]),
            Builtin::Max => args[0].max(args[1]),
            Builtin::Exp => args[0].exp(),
            Builtin::Ln => args[0].ln(),
            Builtin::Log2 => args[0].log2(),
            Builtin::Log10 => args[0].log10(),
            Builtin::Sqrt => args[0].sqrt(),
            Builtin::Pow => args[0].powf(args[1]),
            Builtin::Ceil => args[0].ceil(),
            Builtin::Floor => args[0].floor(),
            Builtin::Abs => args[0].abs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_arity() {
        assert_eq!(Builtin::parse("min"), Some(Builtin::Min));
        assert_eq!(Builtin::parse("selectivity"), None);
        assert_eq!(Builtin::Min.arity(), 2);
        assert_eq!(Builtin::Exp.arity(), 1);
    }

    #[test]
    fn numeric_semantics() {
        assert_eq!(Builtin::Min.apply(&[3.0, 5.0]), 3.0);
        assert_eq!(Builtin::Max.apply(&[3.0, 5.0]), 5.0);
        assert!((Builtin::Exp.apply(&[1.0]) - std::f64::consts::E).abs() < 1e-12);
        assert_eq!(Builtin::Ln.apply(&[1.0]), 0.0);
        assert_eq!(Builtin::Log2.apply(&[8.0]), 3.0);
        assert_eq!(Builtin::Pow.apply(&[2.0, 10.0]), 1024.0);
        assert_eq!(Builtin::Ceil.apply(&[1.2]), 2.0);
        assert_eq!(Builtin::Floor.apply(&[1.8]), 1.0);
        assert_eq!(Builtin::Abs.apply(&[-4.5]), 4.5);
        assert_eq!(Builtin::Sqrt.apply(&[49.0]), 7.0);
        assert_eq!(Builtin::Log10.apply(&[100.0]), 2.0);
    }
}

//! Tokens of the cost communication language.

use std::fmt;

/// A source position (1-based line and column) for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare identifier or keyword (`interface`, `rule`, `scan`, names…).
    Ident(String),
    /// `$`-prefixed free variable (without the `$`).
    Var(String),
    /// Numeric literal.
    Number(f64),
    /// Double-quoted string literal (unescaped content).
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    /// `=` — both assignment and the equality comparison in rule heads.
    Eq,
    /// `!=`
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Var(s) => write!(f, "`${s}`"),
            Tok::Number(n) => write!(f, "number {n}"),
            Tok::Str(s) => write!(f, "string \"{s}\""),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::Ne => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub pos: Pos,
}

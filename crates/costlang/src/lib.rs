//! The cost communication language (paper §3).
//!
//! Wrappers describe their data and their costs in an extended IDL
//! document. The paper extends the CORBA-IDL interface body with a
//! `cardinality` section (exported statistics, Figures 4–5) and a cost
//! formula section (rules binding formulas to operators, Figures 8–9, 13).
//! This crate implements the whole pipeline:
//!
//! ```text
//! source text ──lexer──► tokens ──parser──► AST ──compiler──► bytecode
//!                                                   (shipped to mediator,
//!                                                    evaluated by the VM)
//! ```
//!
//! The paper semi-compiles formulas to Java bytecode shipped at
//! registration time; we compile to a compact stack bytecode interpreted by
//! [`vm::eval_program`], preserving the architecture (compile once at registration,
//! evaluate fast during optimization).
//!
//! ## Surface syntax
//!
//! ```text
//! // wrapper-level parameters usable in every rule
//! let PageSize = 4096;
//! let IO = 25.0;                      // ms per page fault
//!
//! interface Employee {
//!     attribute long salary;
//!     attribute string name;
//!
//!     // the values the mediator would obtain by calling the paper's
//!     // `cardinality extent/attribute` methods at registration time
//!     cardinality extent(10000, 1200000, 120);
//!     cardinality attribute(salary, indexed, 100, 1000, 30000);
//!     cardinality attribute(name, unindexed, 10000, "Adiba", "Valduriez");
//!
//!     // collection-scope rule (inside the interface)
//!     rule scan(Employee) {
//!         TotalTime = 120 + Employee.TotalSize * 12
//!                   + Employee.CountObject / Employee.salary.CountDistinct;
//!     }
//! }
//!
//! // wrapper-scope rule with free variables ($-prefixed)
//! rule select($C, $A = $V) {
//!     CountObject = $C.CountObject * selectivity($A, $V);
//!     TotalSize   = CountObject * $C.ObjectSize;
//!     TotalTime   = $C.TotalTime + $C.TotalSize * 25;
//! }
//! ```
//!
//! Free variables carry a `$` prefix — the paper distinguishes variables
//! from names typographically (Prolog-style capitalization, applied
//! inconsistently: compare `C` in Figure 8 with `value` in Figure 13); the
//! marker makes the distinction syntactic.
//!
//! A collection term bound to the node's input (e.g. `$C` above) exposes
//! *both* the child node's computed cost variables (`$C.TotalTime`) and the
//! base collection's statistics (`$C.salary.CountDistinct`) — matching the
//! paper's reading of Figure 8 where "`c` represents the result of the
//! scan and matches `C`".

pub mod ast;
pub mod builtins;
pub mod bytecode;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod token;
pub mod vm;

pub use ast::{
    AttrTerm, CardAttribute, CardExtent, CollTerm, CostVar, Document, Expr, HeadArg, InterfaceDef,
    LetDef, PathLeaf, RuleDef, RuleHead, Stmt,
};
pub use bytecode::{CompiledBody, Instr, Program};
pub use compile::{
    compile_body, compile_document, interface_to_catalog, CompiledDocument, CompiledRule,
};
pub use parser::parse_document;
pub use print::{print_document, print_expr, print_head, print_rule};
pub use vm::{eval_program, EvalEnv, EvalError};

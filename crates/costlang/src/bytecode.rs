//! The compiled form of cost formulas.
//!
//! The paper ships semi-compiled cost formulas from wrapper to mediator at
//! registration time so that evaluation during optimization is fast (§2.4,
//! §7). [`Program`] is that shipped form: a flat stack-machine instruction
//! sequence plus constant/name/path pools.

use disco_common::Value;

use crate::ast::{CostVar, PathLeaf};
use crate::builtins::Builtin;

/// How a compiled path addresses its collection.
#[derive(Debug, Clone, PartialEq)]
pub enum CollSpec {
    /// Literal collection name (`Employee.TotalSize`).
    Named(String),
    /// Head-bound collection variable (`$C.…`); the environment resolves
    /// the binding to a child node and/or base collection.
    Binding(String),
    /// Reserved child references: `input` (unary), `left`/`right` (binary).
    Child(ChildRef),
}

/// Which child of the current node a path refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildRef {
    Input,
    Left,
    Right,
}

impl ChildRef {
    /// Parse the reserved identifier, if it is one.
    pub fn parse(s: &str) -> Option<ChildRef> {
        Some(match s {
            "input" => ChildRef::Input,
            "left" => ChildRef::Left,
            "right" => ChildRef::Right,
            _ => return None,
        })
    }
}

/// How a compiled path addresses its attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrSpec {
    Named(String),
    /// Head-bound attribute variable (`$C.$A.Min`).
    Binding(String),
}

/// A fully resolved path reference: collection, optional attribute, leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSpec {
    pub coll: CollSpec,
    pub attr: Option<AttrSpec>,
    pub leaf: PathLeaf,
}

/// One stack-machine instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push constant pool entry.
    Const(u16),
    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// Push a head binding by name-pool index (`$V`).
    LoadBinding(u16),
    /// Push a wrapper/mediator parameter by name-pool index.
    LoadParam(u16),
    /// Push the current node's already-computed result variable.
    LoadSelfVar(CostVar),
    /// Push the value of a path-pool entry.
    LoadPath(u16),
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    /// Apply a builtin to the top `arity` stack values.
    CallBuiltin(Builtin),
    /// Call an environment function (name-pool index, arg count).
    CallEnv(u16, u8),
}

/// A compiled formula body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub instrs: Vec<Instr>,
    pub consts: Vec<Value>,
    pub names: Vec<String>,
    pub paths: Vec<PathSpec>,
    pub n_locals: u16,
}

impl Program {
    /// Rough shipped size in bytes — used by tests/benches to show the
    /// "semi-compiled" form is compact.
    pub fn encoded_len(&self) -> usize {
        self.instrs.len() * 4
            + self
                .consts
                .iter()
                .map(|c| c.width() as usize + 1)
                .sum::<usize>()
            + self.names.iter().map(|n| n.len() + 1).sum::<usize>()
            + self.paths.len() * 8
    }
}

/// A compiled rule body: the program plus the mapping from result variable
/// to the local slot holding its final value.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledBody {
    pub program: Program,
    /// `(variable, slot)` pairs, in assignment order (last assignment wins
    /// per variable).
    pub outputs: Vec<(CostVar, u16)>,
}

impl CompiledBody {
    /// The result variables this body computes.
    pub fn output_vars(&self) -> impl Iterator<Item = CostVar> + '_ {
        self.outputs.iter().map(|(v, _)| *v)
    }

    /// Slot of a given output variable.
    pub fn output_slot(&self, var: CostVar) -> Option<u16> {
        self.outputs
            .iter()
            .rev()
            .find(|(v, _)| *v == var)
            .map(|(_, s)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_ref_parsing() {
        assert_eq!(ChildRef::parse("input"), Some(ChildRef::Input));
        assert_eq!(ChildRef::parse("left"), Some(ChildRef::Left));
        assert_eq!(ChildRef::parse("right"), Some(ChildRef::Right));
        assert_eq!(ChildRef::parse("Input"), None);
    }

    #[test]
    fn output_slot_takes_last_assignment() {
        let body = CompiledBody {
            program: Program::default(),
            outputs: vec![(CostVar::TotalTime, 0), (CostVar::TotalTime, 3)],
        };
        assert_eq!(body.output_slot(CostVar::TotalTime), Some(3));
        assert_eq!(body.output_slot(CostVar::TimeNext), None);
    }
}

//! Pretty-printing of cost documents.
//!
//! Renders an AST back to canonical source text. Used for diagnostics
//! (showing the mediator administrator what a wrapper registered), for
//! re-exporting adjusted documents, and — in tests — to establish the
//! parse ↔ print round-trip property.

use std::fmt::Write as _;

use disco_common::Value;

use crate::ast::{
    AttrTerm, BinOp, CollTerm, Document, Expr, HeadArg, InterfaceDef, PathBase, PathSeg, PredRhs,
    RuleDef, RuleHead, Stmt,
};

/// Render a whole document.
pub fn print_document(doc: &Document) -> String {
    let mut out = String::new();
    for l in &doc.lets {
        let _ = writeln!(out, "let {} = {};", l.name, print_expr(&l.expr));
    }
    for f in &doc.funcs {
        let params: Vec<String> = f.params.iter().map(|p| format!("${p}")).collect();
        let _ = writeln!(
            out,
            "let {}({}) = {};",
            f.name,
            params.join(", "),
            print_expr(&f.body)
        );
    }
    for r in &doc.rules {
        out.push_str(&print_rule(r, 0));
    }
    for i in &doc.interfaces {
        out.push_str(&print_interface(i));
    }
    out
}

fn print_interface(i: &InterfaceDef) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "interface {} {{", i.name);
    for (name, ty) in &i.attributes {
        let _ = writeln!(out, "    attribute {ty} {name};");
    }
    if let Some(e) = &i.extent {
        let _ = writeln!(
            out,
            "    cardinality extent({}, {}, {});",
            e.count_object, e.total_size, e.object_size
        );
    }
    for c in &i.attribute_cards {
        let _ = writeln!(
            out,
            "    cardinality attribute({}, {}, {}, {}, {});",
            c.attribute,
            if c.indexed { "indexed" } else { "unindexed" },
            c.count_distinct,
            print_value(&c.min),
            print_value(&c.max)
        );
    }
    for r in &i.rules {
        out.push_str(&print_rule(r, 1));
    }
    out.push_str("}\n");
    out
}

/// Render one rule at the given indent level.
pub fn print_rule(r: &RuleDef, indent: usize) -> String {
    let pad = "    ".repeat(indent);
    let mut out = String::new();
    let _ = writeln!(out, "{pad}rule {} {{", print_head(&r.head));
    for s in &r.body {
        match s {
            Stmt::Let { name, expr } => {
                let _ = writeln!(out, "{pad}    let {name} = {};", print_expr(expr));
            }
            Stmt::Assign { var, expr } => {
                let _ = writeln!(out, "{pad}    {var} = {};", print_expr(expr));
            }
        }
    }
    let _ = writeln!(out, "{pad}}}");
    out
}

/// Render a rule head.
pub fn print_head(h: &RuleHead) -> String {
    let args: Vec<String> = h.args.iter().map(print_head_arg).collect();
    format!("{}({})", h.op, args.join(", "))
}

fn print_head_arg(a: &HeadArg) -> String {
    match a {
        HeadArg::Coll(CollTerm::Named(n)) => n.clone(),
        HeadArg::Coll(CollTerm::Var(v)) => format!("${v}"),
        HeadArg::Pred { left, op, right } => {
            let l = match left {
                AttrTerm::Named(n) => n.clone(),
                AttrTerm::Var(v) => format!("${v}"),
            };
            let r = match right {
                PredRhs::Const(v) => print_value(v),
                PredRhs::Ident(s) => s.clone(),
                PredRhs::Var(v) => format!("${v}"),
            };
            format!("{l} {} {r}", op.symbol())
        }
        HeadArg::AnyPred(v) => format!("${v}"),
        HeadArg::AttrList(list) => format!("[{}]", list.join(", ")),
        HeadArg::Attr(AttrTerm::Named(n)) => n.clone(),
        HeadArg::Attr(AttrTerm::Var(v)) => format!("${v}"),
    }
}

fn print_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Value::Null => "null".into(),
        other => other.to_string(),
    }
}

/// Render an expression with minimal parentheses (fully parenthesized
/// binary operations, which re-parse identically).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Expr::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Expr::Ident(s) => s.clone(),
        Expr::Var(v) => format!("${v}"),
        Expr::Path { base, segs } => {
            let mut out = match base {
                PathBase::Ident(s) => s.clone(),
                PathBase::Var(v) => format!("${v}"),
            };
            for s in segs {
                out.push('.');
                match s {
                    PathSeg::Ident(i) => out.push_str(i),
                    PathSeg::Var(v) => {
                        out.push('$');
                        out.push_str(v);
                    }
                }
            }
            out
        }
        Expr::Neg(inner) => format!("(-{})", print_expr(inner)),
        Expr::Bin(op, l, r) => format!(
            "({} {} {})",
            print_expr(l),
            match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            },
            print_expr(r)
        ),
        Expr::Call(f, args) => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            format!("{f}({})", a.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn round_trip(src: &str) {
        let doc = parse_document(src).unwrap();
        let printed = print_document(&doc);
        let reparsed = parse_document(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(doc, reparsed, "--- printed ---\n{printed}");
    }

    #[test]
    fn round_trips_figure_8() {
        round_trip(
            "rule scan(employee) {
                TotalTime = 120 + employee.TotalSize * 12
                          + employee.CountObject / employee.salary.CountDistinct;
            }
            rule select($C, $A = $V) {
                CountObject = $C.CountObject * selectivity($A, $V);
                TotalSize = CountObject * $C.ObjectSize;
                TotalTime = $C.TotalTime + $C.TotalSize * 25;
            }",
        );
    }

    #[test]
    fn round_trips_interfaces() {
        round_trip(
            r#"interface Employee {
                attribute long salary;
                attribute string name;
                cardinality extent(10000, 1200000, 120);
                cardinality attribute(salary, indexed, 100, 1000, 30000);
                cardinality attribute(name, unindexed, 10000, "Adiba", "Valduriez");
                rule scan(Employee) { TotalTime = 1; }
            }"#,
        );
    }

    #[test]
    fn round_trips_negation_and_strings() {
        round_trip(
            r#"let X = -4.5;
            rule select($C, name = "O\"Brien") { TotalTime = 0 - X; }"#,
        );
    }

    #[test]
    fn round_trips_all_head_shapes() {
        round_trip(
            "rule project($C, [a, b]) { TotalTime = 1; }
             rule project($C, $P) { TotalTime = 1; }
             rule sort($C, $A) { TotalTime = 1; }
             rule sort($C, salary) { TotalTime = 1; }
             rule join($R1, $R2, $A1 = $A2) { TotalTime = 1; }
             rule join(Employee, Book, id = id) { TotalTime = 1; }
             rule union($A, $B) { TotalTime = 1; }
             rule dedup($C) { TotalTime = 1; }
             rule aggregate($C) { TotalTime = 1; }
             rule submit($C) { TotalTime = 1; }
             rule select(Employee, salary >= 77) { TotalTime = 1; }",
        );
    }
}

// Gated: requires the `proptest` cargo feature (and the proptest
// dev-dependency, removed so offline builds succeed — see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property test: every syntactically valid document survives a
//! print → parse round trip unchanged.

use proptest::prelude::*;

use disco_algebra::{CompareOp, OperatorKind};
use disco_common::Value;
use disco_costlang::ast::{
    AttrTerm, BinOp, CardAttribute, CardExtent, CollTerm, CostVar, Document, Expr, FuncDef,
    HeadArg, InterfaceDef, LetDef, PathBase, PathSeg, PredRhs, RuleDef, RuleHead, Stmt,
};
use disco_costlang::{parse_document, print_document};

/// Identifiers that cannot collide with keywords or reserved result names.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("keyword", |s| {
        !matches!(
            s.as_str(),
            "rule"
                | "let"
                | "interface"
                | "attribute"
                | "cardinality"
                | "extent"
                | "indexed"
                | "unindexed"
                | "null"
                | "true"
                | "false"
                | "scan"
                | "select"
                | "project"
                | "sort"
                | "join"
                | "union"
                | "dedup"
                | "aggregate"
                | "submit"
                | "input"
                | "left"
                | "right"
                | "min"
                | "max"
                | "exp"
                | "ln"
                | "log2"
                | "log10"
                | "sqrt"
                | "pow"
                | "ceil"
                | "floor"
                | "abs"
        )
    })
}

fn upper_ident() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,6}".prop_filter("reserved", |s| {
        CostVar::parse(s).is_none() && !matches!(s.as_str(), "String")
    })
}

fn num() -> impl Strategy<Value = f64> {
    prop_oneof![
        (0u32..1_000_000).prop_map(f64::from),
        (0.0f64..1e6).prop_map(|x| (x * 1e3).round() / 1e3),
    ]
}

fn string_lit() -> impl Strategy<Value = String> {
    "[ -~]{0,12}".prop_map(|s| s.replace('\\', "x")) // printable ASCII, printer escapes quotes
}

fn compare_op() -> impl Strategy<Value = CompareOp> {
    prop_oneof![
        Just(CompareOp::Eq),
        Just(CompareOp::Ne),
        Just(CompareOp::Lt),
        Just(CompareOp::Le),
        Just(CompareOp::Gt),
        Just(CompareOp::Ge),
    ]
}

fn cost_var() -> impl Strategy<Value = CostVar> {
    prop::sample::select(CostVar::ALL.to_vec())
}

fn path_seg() -> impl Strategy<Value = PathSeg> {
    prop_oneof![
        ident().prop_map(PathSeg::Ident),
        upper_ident().prop_map(PathSeg::Var),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        num().prop_map(Expr::Num),
        string_lit().prop_map(Expr::Str),
        ident().prop_map(Expr::Ident),
        upper_ident().prop_map(Expr::Var),
        (
            prop_oneof![
                ident().prop_map(PathBase::Ident),
                upper_ident().prop_map(PathBase::Var)
            ],
            prop::collection::vec(path_seg(), 1..=2)
        )
            .prop_map(|(base, segs)| Expr::Path { base, segs }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (
                prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
            (ident(), prop::collection::vec(inner, 0..3)).prop_map(|(f, args)| Expr::Call(f, args)),
        ]
    })
}

fn coll_term() -> impl Strategy<Value = CollTerm> {
    prop_oneof![
        ident().prop_map(CollTerm::Named),
        upper_ident().prop_map(CollTerm::Var),
    ]
}

fn attr_term() -> impl Strategy<Value = AttrTerm> {
    prop_oneof![
        ident().prop_map(AttrTerm::Named),
        upper_ident().prop_map(AttrTerm::Var),
    ]
}

fn select_pred() -> impl Strategy<Value = HeadArg> {
    (
        attr_term(),
        compare_op(),
        prop_oneof![
            num().prop_map(|n| PredRhs::Const(if n.fract() == 0.0 {
                Value::Long(n as i64)
            } else {
                Value::Double(n)
            })),
            string_lit().prop_map(|s| PredRhs::Const(Value::Str(s))),
            upper_ident().prop_map(PredRhs::Var),
        ],
    )
        .prop_map(|(left, op, right)| HeadArg::Pred { left, op, right })
}

fn join_pred() -> impl Strategy<Value = HeadArg> {
    (
        attr_term(),
        compare_op(),
        prop_oneof![
            ident().prop_map(PredRhs::Ident),
            upper_ident().prop_map(PredRhs::Var)
        ],
    )
        .prop_map(|(left, op, right)| HeadArg::Pred { left, op, right })
}

fn head() -> impl Strategy<Value = RuleHead> {
    prop_oneof![
        coll_term().prop_map(|c| RuleHead {
            op: OperatorKind::Scan,
            args: vec![HeadArg::Coll(c)]
        }),
        (
            coll_term(),
            prop_oneof![select_pred(), upper_ident().prop_map(HeadArg::AnyPred),]
        )
            .prop_map(|(c, p)| RuleHead {
                op: OperatorKind::Select,
                args: vec![HeadArg::Coll(c), p],
            }),
        (
            coll_term(),
            prop_oneof![
                prop::collection::vec(ident(), 1..4).prop_map(HeadArg::AttrList),
                upper_ident().prop_map(HeadArg::AnyPred),
            ]
        )
            .prop_map(|(c, p)| RuleHead {
                op: OperatorKind::Project,
                args: vec![HeadArg::Coll(c), p],
            }),
        (coll_term(), attr_term()).prop_map(|(c, a)| RuleHead {
            op: OperatorKind::Sort,
            args: vec![HeadArg::Coll(c), HeadArg::Attr(a)],
        }),
        (
            coll_term(),
            coll_term(),
            prop_oneof![join_pred(), upper_ident().prop_map(HeadArg::AnyPred),]
        )
            .prop_map(|(a, b, p)| RuleHead {
                op: OperatorKind::Join,
                args: vec![HeadArg::Coll(a), HeadArg::Coll(b), p],
            }),
        (coll_term(), coll_term()).prop_map(|(a, b)| RuleHead {
            op: OperatorKind::Union,
            args: vec![HeadArg::Coll(a), HeadArg::Coll(b)],
        }),
        coll_term().prop_map(|c| RuleHead {
            op: OperatorKind::Dedup,
            args: vec![HeadArg::Coll(c)]
        }),
        coll_term().prop_map(|c| RuleHead {
            op: OperatorKind::Aggregate,
            args: vec![HeadArg::Coll(c)],
        }),
        coll_term().prop_map(|c| RuleHead {
            op: OperatorKind::Submit,
            args: vec![HeadArg::Coll(c)]
        }),
    ]
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (ident(), expr()).prop_map(|(name, expr)| Stmt::Let { name, expr }),
        (cost_var(), expr()).prop_map(|(var, expr)| Stmt::Assign { var, expr }),
    ]
}

fn rule() -> impl Strategy<Value = RuleDef> {
    (head(), prop::collection::vec(stmt(), 0..5)).prop_map(|(head, body)| RuleDef { head, body })
}

fn interface() -> impl Strategy<Value = InterfaceDef> {
    (
        upper_ident(),
        prop::collection::vec(
            (
                ident(),
                prop::sample::select(vec![
                    disco_common::DataType::Long,
                    disco_common::DataType::Double,
                    disco_common::DataType::Str,
                    disco_common::DataType::Bool,
                ]),
            ),
            0..4,
        ),
        prop::option::of((0u64..1_000_000, 0u64..100_000_000, 1u64..10_000).prop_map(
            |(count_object, total_size, object_size)| CardExtent {
                count_object,
                total_size,
                object_size,
            },
        )),
        prop::collection::vec(
            (
                ident(),
                any::<bool>(),
                1u64..100_000,
                -1_000i64..1_000,
                0i64..1_000_000,
            )
                .prop_map(|(attribute, indexed, count_distinct, min, max)| {
                    CardAttribute {
                        attribute,
                        indexed,
                        count_distinct,
                        min: Value::Long(min),
                        max: Value::Long(max),
                    }
                }),
            0..3,
        ),
        prop::collection::vec(rule(), 0..2),
    )
        .prop_map(
            |(name, attributes, extent, attribute_cards, rules)| InterfaceDef {
                name,
                attributes,
                extent,
                attribute_cards,
                rules,
            },
        )
}

fn document() -> impl Strategy<Value = Document> {
    (
        prop::collection::vec(
            (ident(), expr()).prop_map(|(name, expr)| LetDef { name, expr }),
            0..3,
        ),
        prop::collection::vec(
            (ident(), prop::collection::vec(upper_ident(), 0..3), expr())
                .prop_map(|(name, params, body)| FuncDef { name, params, body }),
            0..2,
        ),
        prop::collection::vec(rule(), 0..4),
        prop::collection::vec(interface(), 0..2),
    )
        .prop_map(|(lets, funcs, rules, interfaces)| Document {
            interfaces,
            lets,
            funcs,
            rules,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn print_parse_round_trip(doc in document()) {
        let printed = print_document(&doc);
        let reparsed = parse_document(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        prop_assert_eq!(doc, reparsed, "--- printed ---\n{}", printed);
    }
}

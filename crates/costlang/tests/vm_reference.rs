// Gated: requires the `proptest` cargo feature (and the proptest
// dev-dependency, removed so offline builds succeed — see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property test: the bytecode VM computes exactly what a direct AST
//! interpreter computes, for arbitrary generated rule bodies.

use std::collections::HashMap;

use proptest::prelude::*;

use disco_common::Value;
use disco_costlang::ast::{BinOp, CostVar, Expr, PathLeaf, Stmt};
use disco_costlang::bytecode::{AttrSpec, CollSpec};
use disco_costlang::{compile_body, eval_program, EvalEnv};

/// Fixed environment both evaluators see.
struct FixedEnv;

const PARAMS: [(&str, f64); 3] = [("p0", 4096.0), ("p1", 25.0), ("p2", 0.5)];
const BINDINGS: [(&str, f64); 2] = [("V", 77.0), ("W", -3.0)];
const SELF_VARS: [(CostVar, f64); 5] = [
    (CostVar::TimeFirst, 1.0),
    (CostVar::TimeNext, 2.0),
    (CostVar::TotalTime, 3.0),
    (CostVar::CountObject, 40.0),
    (CostVar::TotalSize, 500.0),
];

impl EvalEnv for FixedEnv {
    fn path(&self, _c: &CollSpec, _a: Option<&AttrSpec>, leaf: PathLeaf) -> Option<Value> {
        // Deterministic per-leaf values.
        let v = match leaf {
            PathLeaf::Stat(s) => 100.0 + format!("{s:?}").len() as f64,
            PathLeaf::Cost(c) => 200.0 + c.name().len() as f64,
        };
        Some(Value::Double(v))
    }
    fn binding(&self, name: &str) -> Option<Value> {
        BINDINGS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| Value::Double(*v))
    }
    fn param(&self, name: &str) -> Option<Value> {
        PARAMS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| Value::Double(*v))
    }
    fn self_var(&self, var: CostVar) -> Option<f64> {
        SELF_VARS.iter().find(|(v, _)| *v == var).map(|(_, x)| *x)
    }
    fn call(&self, func: &str, args: &[Value]) -> Option<Value> {
        if func == "extfn" {
            let sum: f64 = args.iter().filter_map(Value::as_f64).sum();
            Some(Value::Double(sum + 1.0))
        } else {
            None
        }
    }
}

/// Reference AST interpreter mirroring the VM's semantics.
fn eval_ref(
    e: &Expr,
    locals: &HashMap<String, f64>,
    assigned: &HashMap<CostVar, f64>,
) -> Option<f64> {
    match e {
        Expr::Num(n) => Some(*n),
        Expr::Str(_) => None, // strings in arithmetic are errors either way
        Expr::Ident(name) => {
            if let Some(v) = locals.get(name) {
                return Some(*v);
            }
            if let Some(var) = CostVar::parse(name) {
                // Locals shadow; otherwise the node's self variable.
                if let Some(v) = assigned.get(&var) {
                    return Some(*v);
                }
                return FixedEnv.self_var(var);
            }
            FixedEnv.param(name).and_then(|v| v.as_f64())
        }
        Expr::Var(v) => FixedEnv.binding(v).and_then(|v| v.as_f64()),
        Expr::Path { .. } => None, // handled only via fixed leaf table; skipped in strategy
        Expr::Neg(inner) => Some(-eval_ref(inner, locals, assigned)?),
        Expr::Bin(op, l, r) => {
            let (a, b) = (
                eval_ref(l, locals, assigned)?,
                eval_ref(r, locals, assigned)?,
            );
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return None;
                    }
                    a / b
                }
            })
        }
        Expr::Call(f, args) => {
            let vals: Vec<f64> = args
                .iter()
                .map(|a| eval_ref(a, locals, assigned))
                .collect::<Option<_>>()?;
            match f.as_str() {
                "min" => Some(vals[0].min(vals[1])),
                "max" => Some(vals[0].max(vals[1])),
                "exp" => Some(vals[0].exp()),
                "ln" => Some(vals[0].ln()),
                "sqrt" => Some(vals[0].sqrt()),
                "abs" => Some(vals[0].abs()),
                "ceil" => Some(vals[0].ceil()),
                "floor" => Some(vals[0].floor()),
                "extfn" => Some(vals.iter().sum::<f64>() + 1.0),
                _ => None,
            }
        }
    }
}

/// Run a body through the reference interpreter.
fn run_ref(body: &[Stmt]) -> Option<Vec<(CostVar, f64)>> {
    let mut locals: HashMap<String, f64> = HashMap::new();
    let mut assigned: HashMap<CostVar, f64> = HashMap::new();
    let mut outputs = Vec::new();
    for s in body {
        match s {
            Stmt::Let { name, expr } => {
                let v = eval_ref(expr, &locals, &assigned)?;
                locals.insert(name.clone(), v);
            }
            Stmt::Assign { var, expr } => {
                let v = eval_ref(expr, &locals, &assigned)?;
                // VM stores assigned vars as locals named after the var.
                locals.insert(var.name().to_owned(), v);
                assigned.insert(*var, v);
                outputs.push((*var, v));
            }
        }
    }
    Some(outputs)
}

fn ident() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["x".to_string(), "y".to_string(), "z".to_string()])
}

fn expr(defined: Vec<String>) -> impl Strategy<Value = Expr> {
    let mut leaves = vec![
        (0.0f64..1000.0).prop_map(Expr::Num).boxed(),
        prop::sample::select(vec!["p0", "p1", "p2"])
            .prop_map(|s| Expr::Ident(s.to_string()))
            .boxed(),
        prop::sample::select(vec!["V", "W"])
            .prop_map(|s| Expr::Var(s.to_string()))
            .boxed(),
        prop::sample::select(CostVar::ALL.to_vec())
            .prop_map(|v| Expr::Ident(v.name().to_string()))
            .boxed(),
    ];
    if !defined.is_empty() {
        leaves.push(prop::sample::select(defined).prop_map(Expr::Ident).boxed());
    }
    let leaf = prop::strategy::Union::new(leaves);
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (
                prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
            (
                prop::sample::select(vec!["min", "max"]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(f, a, b)| Expr::Call(f.to_string(), vec![a, b])),
            (
                prop::sample::select(vec!["exp", "abs", "ceil", "floor"]),
                inner.clone()
            )
                .prop_map(|(f, a)| Expr::Call(f.to_string(), vec![a])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Call("extfn".to_string(), vec![a, b])),
        ]
    })
}

fn body() -> impl Strategy<Value = Vec<Stmt>> {
    // Build statements sequentially so later expressions may reference
    // earlier locals.
    (ident(), ident(), ident()).prop_flat_map(|(n1, n2, n3)| {
        (
            expr(vec![]),
            expr(vec![n1.clone()]),
            expr(vec![n1.clone(), n2.clone()]),
            prop::sample::select(CostVar::ALL.to_vec()),
            prop::sample::select(CostVar::ALL.to_vec()),
        )
            .prop_map(move |(e1, e2, e3, v1, v2)| {
                vec![
                    Stmt::Let {
                        name: n1.clone(),
                        expr: e1,
                    },
                    Stmt::Assign { var: v1, expr: e2 },
                    Stmt::Let {
                        name: n2.clone(),
                        expr: e3.clone(),
                    },
                    Stmt::Assign { var: v2, expr: e3 },
                    Stmt::Let {
                        name: n3.clone(),
                        expr: Expr::Num(1.0),
                    },
                ]
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn vm_matches_reference_interpreter(body in body()) {
        let compiled =
            compile_body(&body, &disco_costlang::compile::HeadVars::of(&["V", "W"])).unwrap();
        let vm = eval_program(&compiled.program, &FixedEnv);
        let reference = run_ref(&body);
        match (vm, reference) {
            (Ok(locals), Some(expected)) => {
                // Last assignment per variable wins (matches output_slot).
                let mut last: HashMap<CostVar, f64> = HashMap::new();
                for (var, v) in expected {
                    last.insert(var, v);
                }
                for (var, want) in last {
                    let slot = compiled.output_slot(var).unwrap();
                    let got = locals[slot as usize].as_f64().unwrap();
                    // NaN == NaN for this comparison; exact bits otherwise.
                    prop_assert!(
                        got == want || (got.is_nan() && want.is_nan()),
                        "{var}: vm {got} != ref {want}"
                    );
                }
            }
            (Err(_), None) => {} // both fail (division by zero)
            (vm, reference) => {
                prop_assert!(false, "divergence: vm {vm:?} vs ref {reference:?}");
            }
        }
    }
}

//! Equi-width and equi-depth histograms over numeric attributes.
//!
//! The paper's cost-rule bodies may call an ad-hoc `selectivity(A, V)`
//! function "that could handle, for example, histogram statistics
//! \[IP95, PIHS96\]" (§3.3.2). This module provides those statistics: a
//! wrapper can build a histogram over a column and export a rule whose
//! selectivity estimates beat the uniform min/max interpolation of the
//! generic model.

use disco_algebra::CompareOp;

/// Construction discipline of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// Buckets of equal value-range width.
    EquiWidth,
    /// Buckets of (approximately) equal tuple count.
    EquiDepth,
}

/// One bucket: value range `[lo, hi)` (the last bucket is closed) with a
/// tuple count and a distinct-value estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    pub lo: f64,
    pub hi: f64,
    pub count: u64,
    pub distinct: u64,
}

/// A histogram over a numeric attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    kind: HistogramKind,
    buckets: Vec<Bucket>,
    total: u64,
}

impl Histogram {
    /// Build an equi-width histogram from raw values.
    ///
    /// Returns `None` for empty input or a non-positive bucket count.
    pub fn equi_width(values: &[f64], nbuckets: usize) -> Option<Histogram> {
        if values.is_empty() || nbuckets == 0 {
            return None;
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        let width = ((hi - lo) / nbuckets as f64).max(f64::MIN_POSITIVE);
        let mut buckets: Vec<Bucket> = (0..nbuckets)
            .map(|i| Bucket {
                lo: lo + width * i as f64,
                hi: if i + 1 == nbuckets {
                    hi
                } else {
                    lo + width * (i + 1) as f64
                },
                count: 0,
                distinct: 0,
            })
            .collect();
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        fill_distinct_counts(&sorted, &mut buckets);
        Some(Histogram {
            kind: HistogramKind::EquiWidth,
            total: values.len() as u64,
            buckets,
        })
    }

    /// Build an equi-depth histogram from raw values.
    pub fn equi_depth(values: &[f64], nbuckets: usize) -> Option<Histogram> {
        if values.is_empty() || nbuckets == 0 {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        if !sorted[0].is_finite() || !sorted[sorted.len() - 1].is_finite() {
            return None;
        }
        let n = sorted.len();
        let per = n.div_ceil(nbuckets);
        let mut buckets = Vec::with_capacity(nbuckets);
        let mut start = 0;
        while start < n {
            let end = (start + per).min(n);
            let slice = &sorted[start..end];
            let mut distinct = 1;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    distinct += 1;
                }
            }
            buckets.push(Bucket {
                lo: slice[0],
                hi: slice[slice.len() - 1],
                count: slice.len() as u64,
                distinct,
            });
            start = end;
        }
        Some(Histogram {
            kind: HistogramKind::EquiDepth,
            total: n as u64,
            buckets,
        })
    }

    /// Reassemble a histogram from its parts — the inverse of the accessors,
    /// used when statistics cross the serialized transport boundary.
    /// `total` is recomputed from the buckets so a malformed payload cannot
    /// produce inconsistent selectivities.
    pub fn from_parts(kind: HistogramKind, buckets: Vec<Bucket>) -> Histogram {
        let total = buckets.iter().map(|b| b.count).sum();
        Histogram {
            kind,
            buckets,
            total,
        }
    }

    /// Construction discipline.
    pub fn kind(&self) -> HistogramKind {
        self.kind
    }

    /// The buckets, ordered by range.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total tuple count summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Estimated selectivity of `attr op v` under this histogram,
    /// in `[0, 1]`.
    pub fn selectivity(&self, op: CompareOp, v: f64) -> f64 {
        let total = self.total as f64;
        if total == 0.0 {
            return 0.0;
        }
        let sel = match op {
            CompareOp::Eq => self.eq_fraction(v),
            CompareOp::Ne => 1.0 - self.eq_fraction(v),
            CompareOp::Lt => self.less_fraction(v, false),
            CompareOp::Le => self.less_fraction(v, true),
            CompareOp::Gt => 1.0 - self.less_fraction(v, true),
            CompareOp::Ge => 1.0 - self.less_fraction(v, false),
        };
        sel.clamp(0.0, 1.0)
    }

    /// Fraction of tuples equal to `v`: uniform within each containing
    /// bucket (`count / distinct`), summed over all buckets whose closed
    /// range covers `v` — equi-depth buckets of heavily duplicated values
    /// can share a degenerate range.
    fn eq_fraction(&self, v: f64) -> f64 {
        let total = self.total as f64;
        let mut acc = 0.0;
        for b in &self.buckets {
            if v >= b.lo && v <= b.hi {
                let d = b.distinct.max(1) as f64;
                acc += b.count as f64 / d;
            }
        }
        (acc / total).clamp(0.0, 1.0)
    }

    /// Fraction of tuples `< v` (or `<= v` with `inclusive`), interpolating
    /// linearly inside each bucket overlapping `v`.
    fn less_fraction(&self, v: f64, inclusive: bool) -> f64 {
        let total = self.total as f64;
        let mut acc = 0.0;
        for b in &self.buckets {
            if v > b.hi {
                acc += b.count as f64;
            } else if v >= b.lo {
                if b.hi > b.lo {
                    let frac = ((v - b.lo) / (b.hi - b.lo)).clamp(0.0, 1.0);
                    acc += b.count as f64 * frac;
                }
                if inclusive {
                    // Add the equal sliver estimated like eq_fraction.
                    let d = b.distinct.max(1) as f64;
                    acc += b.count as f64 / d;
                }
            }
        }
        (acc / total).clamp(0.0, 1.0)
    }
}

/// Fill `count`/`distinct` of each bucket from the sorted values.
fn fill_distinct_counts(sorted: &[f64], buckets: &mut [Bucket]) {
    let last = buckets.len() - 1;
    let mut bi = 0;
    let mut prev: Option<f64> = None;
    for &v in sorted {
        while bi < last && v >= buckets[bi].hi {
            bi += 1;
            prev = None;
        }
        buckets[bi].count += 1;
        if prev != Some(v) {
            buckets[bi].distinct += 1;
            prev = Some(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform() -> Vec<f64> {
        (0..1000).map(|i| i as f64).collect()
    }

    #[test]
    fn empty_input_rejected() {
        assert!(Histogram::equi_width(&[], 4).is_none());
        assert!(Histogram::equi_depth(&[], 4).is_none());
        assert!(Histogram::equi_width(&[1.0], 0).is_none());
    }

    #[test]
    fn from_parts_round_trips_accessors() {
        let h = Histogram::equi_width(&uniform(), 8).unwrap();
        let back = Histogram::from_parts(h.kind(), h.buckets().to_vec());
        assert_eq!(back, h);
        assert_eq!(back.total(), 1000);
    }

    #[test]
    fn equi_width_counts_sum_to_total() {
        let h = Histogram::equi_width(&uniform(), 10).unwrap();
        assert_eq!(h.total(), 1000);
        assert_eq!(h.buckets().iter().map(|b| b.count).sum::<u64>(), 1000);
        assert_eq!(h.buckets().len(), 10);
    }

    #[test]
    fn equi_depth_balances_counts() {
        let mut skew: Vec<f64> = (0..900).map(|_| 1.0).collect();
        skew.extend((0..100).map(|i| 10.0 + i as f64));
        let h = Histogram::equi_depth(&skew, 10).unwrap();
        for b in h.buckets() {
            assert!(b.count <= 150, "bucket count {} too large", b.count);
        }
    }

    #[test]
    fn uniform_range_selectivity_is_linear() {
        let h = Histogram::equi_width(&uniform(), 20).unwrap();
        let s = h.selectivity(CompareOp::Lt, 250.0);
        assert!((s - 0.25).abs() < 0.02, "got {s}");
        let s = h.selectivity(CompareOp::Ge, 900.0);
        assert!((s - 0.1).abs() < 0.02, "got {s}");
    }

    #[test]
    fn eq_selectivity_uniform() {
        let h = Histogram::equi_width(&uniform(), 10).unwrap();
        let s = h.selectivity(CompareOp::Eq, 123.0);
        assert!((s - 0.001).abs() < 1e-4, "got {s}");
    }

    #[test]
    fn selectivity_bounds() {
        let h = Histogram::equi_depth(&uniform(), 7).unwrap();
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            for v in [-5.0, 0.0, 500.5, 999.0, 2000.0] {
                let s = h.selectivity(op, v);
                assert!((0.0..=1.0).contains(&s), "{op:?} {v} -> {s}");
            }
        }
    }

    #[test]
    fn out_of_range_values() {
        let h = Histogram::equi_width(&uniform(), 10).unwrap();
        assert_eq!(h.selectivity(CompareOp::Lt, -1.0), 0.0);
        assert_eq!(h.selectivity(CompareOp::Gt, 5000.0), 0.0);
        assert!((h.selectivity(CompareOp::Ge, -1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_eq_beats_uniform_assumption() {
        // 90% of values are 42; histogram should estimate eq(42) >> 1/distinct.
        let mut vals: Vec<f64> = (0..900).map(|_| 42.0).collect();
        vals.extend((0..100).map(|i| 100.0 + i as f64));
        let h = Histogram::equi_depth(&vals, 10).unwrap();
        let s = h.selectivity(CompareOp::Eq, 42.0);
        assert!(s > 0.5, "skewed eq estimate too small: {s}");
    }
}

//! Deriving selectivities from exported statistics (paper §2.3, §6).
//!
//! The generic cost model "requires the selectivity of a selection that can
//! be derived from the minimum, maximum, and number of distinct values of
//! the restricted attributes". This module implements that derivation:
//!
//! * equality — `1 / CountDistinct`;
//! * range — linear interpolation between `Min` and `Max` for numeric
//!   attributes (uniformity assumption);
//! * fallbacks — the classical System-R defaults (`1/10` for equality,
//!   `1/3` for ranges) when the statistics are missing, "as usual" (§6);
//! * histograms — consulted first when present (the \[IP95\] refinement the
//!   paper's ad-hoc `selectivity(A, V)` functions may implement);
//! * joins — the paper estimates join selectivity as
//!   `1 / min(CountDistinct(A), CountDistinct(B))`. (System R uses `max`;
//!   we follow the paper's formula.)

use disco_algebra::{CompareOp, JoinPredicate, Predicate, SelectPredicate};
use disco_common::Value;

use crate::stats::CollectionStats;

/// Default equality selectivity when statistics are absent.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Default range selectivity when statistics are absent.
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Selectivity of one `attr op value` restriction against a collection.
pub fn restriction_selectivity(stats: &CollectionStats, pred: &SelectPredicate) -> f64 {
    let attr = stats.attribute(&pred.attribute);

    // Histogram first: the most specific information available.
    if let (Some(h), Some(v)) = (&attr.histogram, pred.value.as_f64()) {
        return h.selectivity(pred.op, v);
    }

    match pred.op {
        CompareOp::Eq => {
            if attr.count_distinct > 0 {
                (1.0 / attr.count_distinct as f64).min(1.0)
            } else {
                DEFAULT_EQ_SELECTIVITY
            }
        }
        CompareOp::Ne => {
            let eq = restriction_selectivity(
                stats,
                &SelectPredicate::new(pred.attribute.clone(), CompareOp::Eq, pred.value.clone()),
            );
            (1.0 - eq).clamp(0.0, 1.0)
        }
        CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => {
            range_selectivity(&attr.min, &attr.max, pred.op, &pred.value)
                .unwrap_or(DEFAULT_RANGE_SELECTIVITY)
        }
    }
}

/// Interpolated range selectivity, or `None` when the bounds are unusable.
fn range_selectivity(min: &Value, max: &Value, op: CompareOp, v: &Value) -> Option<f64> {
    let (lo, hi, x) = (min.as_f64()?, max.as_f64()?, v.as_f64()?);
    if !(lo.is_finite() && hi.is_finite() && x.is_finite()) || hi < lo {
        return None;
    }
    let width = hi - lo;
    // Point domain: every object holds the single value.
    let frac_below = if width == 0.0 {
        if x > lo {
            1.0
        } else {
            0.0
        }
    } else {
        ((x - lo) / width).clamp(0.0, 1.0)
    };
    let sel = match op {
        CompareOp::Lt | CompareOp::Le => frac_below,
        CompareOp::Gt | CompareOp::Ge => 1.0 - frac_below,
        _ => return None,
    };
    Some(sel.clamp(0.0, 1.0))
}

/// Selectivity of a conjunctive predicate (independence assumption).
pub fn predicate_selectivity(stats: &CollectionStats, pred: &Predicate) -> f64 {
    pred.conjuncts
        .iter()
        .map(|c| restriction_selectivity(stats, c))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

/// Join selectivity per the paper:
/// `1 / min(CountDistinct(left), CountDistinct(right))`.
///
/// The estimated join cardinality is then `|L| * |R| * selectivity`.
pub fn join_selectivity(
    left: &CollectionStats,
    right: &CollectionStats,
    pred: &JoinPredicate,
) -> f64 {
    let dl = left.attribute(&pred.left_attr).count_distinct.max(1);
    let dr = right.attribute(&pred.right_attr).count_distinct.max(1);
    1.0 / dl.min(dr) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::stats::{AttributeStats, ExtentStats};

    fn emp() -> CollectionStats {
        CollectionStats::new(ExtentStats::of(10_000, 120))
            .with_attribute(
                "salary",
                AttributeStats::indexed(100, Value::Long(1_000), Value::Long(31_000)),
            )
            .with_attribute(
                "name",
                AttributeStats::new(
                    10_000,
                    Value::Str("Adiba".into()),
                    Value::Str("Valduriez".into()),
                ),
            )
    }

    #[test]
    fn equality_uses_distinct_count() {
        let p = SelectPredicate::new("salary", CompareOp::Eq, Value::Long(2_000));
        assert!((restriction_selectivity(&emp(), &p) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn inequality_is_complement() {
        let p = SelectPredicate::new("salary", CompareOp::Ne, Value::Long(2_000));
        assert!((restriction_selectivity(&emp(), &p) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn range_interpolates_between_bounds() {
        // salary in [1000, 31000]; < 16000 is half the domain.
        let p = SelectPredicate::new("salary", CompareOp::Lt, Value::Long(16_000));
        assert!((restriction_selectivity(&emp(), &p) - 0.5).abs() < 1e-12);
        let p = SelectPredicate::new("salary", CompareOp::Ge, Value::Long(31_000));
        assert!(restriction_selectivity(&emp(), &p).abs() < 1e-12);
    }

    #[test]
    fn range_clamps_outside_domain() {
        let p = SelectPredicate::new("salary", CompareOp::Lt, Value::Long(-5));
        assert_eq!(restriction_selectivity(&emp(), &p), 0.0);
        let p = SelectPredicate::new("salary", CompareOp::Le, Value::Long(100_000));
        assert_eq!(restriction_selectivity(&emp(), &p), 1.0);
    }

    #[test]
    fn string_ranges_fall_back_to_default() {
        let p = SelectPredicate::new("name", CompareOp::Lt, Value::Str("M".into()));
        assert!((restriction_selectivity(&emp(), &p) - DEFAULT_RANGE_SELECTIVITY).abs() < 1e-12);
    }

    #[test]
    fn unknown_attribute_uses_derived_defaults() {
        // Default CountDistinct = CountObject/10 = 1000 -> eq sel 0.001.
        let p = SelectPredicate::new("ghost", CompareOp::Eq, Value::Long(1));
        assert!((restriction_selectivity(&emp(), &p) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn histogram_takes_precedence() {
        let vals: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let h = Histogram::equi_width(&vals, 10).unwrap();
        let stats = CollectionStats::new(ExtentStats::of(1000, 8)).with_attribute(
            "x",
            // Bogus distinct count: histogram must win over 1/2.
            AttributeStats::new(2, Value::Long(0), Value::Long(9)).with_histogram(h),
        );
        let p = SelectPredicate::new("x", CompareOp::Eq, Value::Long(3));
        let s = restriction_selectivity(&stats, &p);
        assert!((s - 0.1).abs() < 0.03, "got {s}");
    }

    #[test]
    fn conjunction_multiplies() {
        let pred = Predicate::all(vec![
            SelectPredicate::new("salary", CompareOp::Eq, Value::Long(2_000)),
            SelectPredicate::new("salary", CompareOp::Lt, Value::Long(16_000)),
        ]);
        let s = predicate_selectivity(&emp(), &pred);
        assert!((s - 0.005).abs() < 1e-12);
        assert_eq!(predicate_selectivity(&emp(), &Predicate::always()), 1.0);
    }

    #[test]
    fn join_selectivity_uses_min_distinct() {
        let l = emp(); // salary distinct = 100
        let r = CollectionStats::new(ExtentStats::of(500, 50)).with_attribute(
            "grade",
            AttributeStats::new(20, Value::Long(0), Value::Long(19)),
        );
        let p = JoinPredicate::equi("salary", "grade");
        assert!((join_selectivity(&l, &r, &p) - 1.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn point_domain_range() {
        let stats = CollectionStats::new(ExtentStats::of(10, 8))
            .with_attribute("k", AttributeStats::new(1, Value::Long(5), Value::Long(5)));
        let lt = SelectPredicate::new("k", CompareOp::Lt, Value::Long(5));
        assert_eq!(restriction_selectivity(&stats, &lt), 0.0);
        let gt5 = SelectPredicate::new("k", CompareOp::Gt, Value::Long(4));
        assert_eq!(restriction_selectivity(&stats, &gt5), 1.0);
    }
}

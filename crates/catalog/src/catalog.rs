//! The mediator catalog (paper §2.1, Figure 1).
//!
//! During the registration phase the mediator contacts each wrapper and
//! uploads "the schema of the wrapper …, capabilities of the wrapper (the
//! set of operations the wrapper can execute), and cost information.
//! Schema and cost information are stored in the mediator catalog." Cost
//! rules themselves live in `disco-core`'s rule registry; the catalog holds
//! everything else and is the single name-resolution authority.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use disco_algebra::OperatorKind;
use disco_common::{DiscoError, QualifiedName, Result, Schema, WrapperId};

use crate::stats::CollectionStats;

/// The set of algebraic operations a wrapper can execute (paper §2.1).
///
/// The paper assumes all wrappers execute all operations and defers
/// discrepancies to \[KTV97\]; we store real capability sets and let the
/// decomposer consult them, defaulting to "everything".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capabilities {
    ops: BTreeSet<OperatorKind>,
}

impl Capabilities {
    /// A wrapper that executes the full algebra (the paper's assumption).
    pub fn full() -> Self {
        Capabilities {
            ops: OperatorKind::ALL.into_iter().collect(),
        }
    }

    /// A wrapper that can only scan (e.g. a flat file with no predicate
    /// evaluation); the mediator must compensate locally.
    pub fn scan_only() -> Self {
        Capabilities {
            ops: [OperatorKind::Scan].into_iter().collect(),
        }
    }

    /// A wrapper executing exactly the given operations (scan is implied).
    pub fn of(ops: &[OperatorKind]) -> Self {
        let mut set: BTreeSet<OperatorKind> = ops.iter().copied().collect();
        set.insert(OperatorKind::Scan);
        Capabilities { ops: set }
    }

    /// Can the wrapper execute `op`?
    pub fn supports(&self, op: OperatorKind) -> bool {
        self.ops.contains(&op)
    }

    /// The supported operations.
    pub fn ops(&self) -> impl Iterator<Item = OperatorKind> + '_ {
        self.ops.iter().copied()
    }
}

impl Default for Capabilities {
    fn default() -> Self {
        Capabilities::full()
    }
}

/// A named capability profile — the declared shapes real sources come
/// in. Profiles are presets over [`Capabilities`]; the optimizer only
/// ever consults the capability *set*, so ad-hoc sets remain first
/// class (they classify as `Custom` for display).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapabilityProfile {
    /// Relationally complete: the full algebra (the paper's assumption).
    Relational,
    /// Evaluates predicates but ships whole tuples (no projection,
    /// no joins): e.g. a keyword-filter API.
    SelectPushdownOnly,
    /// Raw extent delivery only (a flat file): the mediator compensates
    /// for everything.
    ScanOnly,
    /// Everything except joins — single-collection engines.
    NoJoin,
    /// Select/project plus server-side aggregation, but no joins —
    /// a metrics-store shape.
    AggregateCapable,
}

impl CapabilityProfile {
    /// Every declared profile, in display order.
    pub const ALL: [CapabilityProfile; 5] = [
        CapabilityProfile::Relational,
        CapabilityProfile::SelectPushdownOnly,
        CapabilityProfile::ScanOnly,
        CapabilityProfile::NoJoin,
        CapabilityProfile::AggregateCapable,
    ];

    /// The capability set this profile declares.
    pub fn capabilities(&self) -> Capabilities {
        match self {
            CapabilityProfile::Relational => Capabilities::full(),
            CapabilityProfile::SelectPushdownOnly => Capabilities::of(&[OperatorKind::Select]),
            CapabilityProfile::ScanOnly => Capabilities::scan_only(),
            CapabilityProfile::NoJoin => Capabilities::of(&[
                OperatorKind::Select,
                OperatorKind::Project,
                OperatorKind::Sort,
                OperatorKind::Dedup,
                OperatorKind::Aggregate,
            ]),
            CapabilityProfile::AggregateCapable => Capabilities::of(&[
                OperatorKind::Select,
                OperatorKind::Project,
                OperatorKind::Aggregate,
            ]),
        }
    }

    /// Stable display name (also accepted by [`CapabilityProfile::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            CapabilityProfile::Relational => "relational",
            CapabilityProfile::SelectPushdownOnly => "select-pushdown-only",
            CapabilityProfile::ScanOnly => "scan-only",
            CapabilityProfile::NoJoin => "no-join",
            CapabilityProfile::AggregateCapable => "aggregate-capable",
        }
    }

    /// Parse a profile name (case-insensitive; `_` and `-` both accepted).
    pub fn parse(name: &str) -> Option<CapabilityProfile> {
        let norm = name.to_ascii_lowercase().replace('_', "-");
        CapabilityProfile::ALL
            .into_iter()
            .find(|p| p.name() == norm)
    }

    /// Classify a capability set back to its profile name, or `custom`.
    pub fn classify(caps: &Capabilities) -> &'static str {
        CapabilityProfile::ALL
            .into_iter()
            .find(|p| p.capabilities() == *caps)
            .map(|p| p.name())
            .unwrap_or("custom")
    }
}

/// One registered collection: schema plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogCollection {
    /// Fully qualified address.
    pub name: QualifiedName,
    /// Exported interface schema.
    pub schema: Schema,
    /// Exported (or defaulted) statistics.
    pub stats: CollectionStats,
}

/// Buffer-cache regime assumed when predicting a wrapper's page I/O.
///
/// Yao's formula counts *distinct pages touched*; how many of those
/// become faults depends on what the source's buffer pool already holds.
/// The catalog records the administrator's assumption per wrapper so the
/// estimator can scale page predictions without new cost rules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CacheRegime {
    /// Every distinct page touched is a fault (fresh pool — the paper's
    /// calibration setup, and the default).
    #[default]
    Cold,
    /// A fraction of page touches hit cache; faults scale by
    /// `1 - hit_rate`.
    Warm {
        /// Expected buffer-cache hit rate in `[0, 1]`.
        hit_rate: f64,
    },
}

impl CacheRegime {
    /// Multiplier applied to a cold-cache page prediction.
    pub fn miss_factor(&self) -> f64 {
        match *self {
            CacheRegime::Cold => 1.0,
            CacheRegime::Warm { hit_rate } => 1.0 - hit_rate.clamp(0.0, 1.0),
        }
    }
}

/// Everything the catalog knows about one wrapper.
#[derive(Debug, Clone, PartialEq)]
pub struct WrapperEntry {
    /// Mediator-assigned identifier.
    pub id: WrapperId,
    /// Registered name.
    pub name: String,
    /// Operations the wrapper executes.
    pub capabilities: Capabilities,
    /// Collections keyed by collection name.
    pub collections: BTreeMap<String, CatalogCollection>,
    /// Cache regime assumed for page-I/O predictions.
    pub cache_regime: CacheRegime,
}

/// The mediator catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    wrappers: BTreeMap<String, WrapperEntry>,
    /// Declared replica sets: collection name → wrappers serving
    /// identical copies, in declared (preference) order.
    replicas: BTreeMap<String, Vec<String>>,
    next_id: u32,
    /// Bumped whenever a wrapper's capability set changes after
    /// registration — plan caches key replayed decisions on it.
    capability_epoch: u64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a wrapper by name. Fails on duplicates — the paper's
    /// re-registration interface is [`Catalog::unregister_wrapper`] followed
    /// by a fresh registration.
    pub fn register_wrapper(
        &mut self,
        name: impl Into<String>,
        capabilities: Capabilities,
    ) -> Result<WrapperId> {
        let name = name.into();
        if self.wrappers.contains_key(&name) {
            return Err(DiscoError::Catalog(format!(
                "wrapper `{name}` is already registered"
            )));
        }
        let id = WrapperId(self.next_id);
        self.next_id += 1;
        self.wrappers.insert(
            name.clone(),
            WrapperEntry {
                id,
                name,
                capabilities,
                collections: BTreeMap::new(),
                cache_regime: CacheRegime::default(),
            },
        );
        Ok(id)
    }

    /// Replace a registered wrapper's capability set (the administrative
    /// path for declaring that a source gained or lost operations).
    /// Bumps the capability epoch so cached plan decisions negotiated
    /// against the old set are invalidated.
    pub fn set_wrapper_capabilities(
        &mut self,
        wrapper: &str,
        capabilities: Capabilities,
    ) -> Result<()> {
        let entry = self
            .wrappers
            .get_mut(wrapper)
            .ok_or_else(|| DiscoError::Catalog(format!("unknown wrapper `{wrapper}`")))?;
        if entry.capabilities != capabilities {
            entry.capabilities = capabilities;
            self.capability_epoch += 1;
        }
        Ok(())
    }

    /// Epoch counter incremented on every post-registration capability
    /// change ([`Catalog::set_wrapper_capabilities`]).
    pub fn capability_epoch(&self) -> u64 {
        self.capability_epoch
    }

    /// Set the cache regime assumed for a wrapper's page predictions.
    pub fn set_cache_regime(&mut self, wrapper: &str, regime: CacheRegime) -> Result<()> {
        let entry = self
            .wrappers
            .get_mut(wrapper)
            .ok_or_else(|| DiscoError::Catalog(format!("unknown wrapper `{wrapper}`")))?;
        entry.cache_regime = regime;
        Ok(())
    }

    /// Cache regime of a wrapper ([`CacheRegime::Cold`] when unknown).
    pub fn cache_regime(&self, wrapper: &str) -> CacheRegime {
        self.wrappers
            .get(wrapper)
            .map(|w| w.cache_regime)
            .unwrap_or_default()
    }

    /// Remove a wrapper and all its collections (the administrative
    /// re-registration path of §2.1). The wrapper also leaves any
    /// replica sets it was declared in.
    pub fn unregister_wrapper(&mut self, name: &str) -> Result<()> {
        self.wrappers
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DiscoError::Catalog(format!("wrapper `{name}` is not registered")))?;
        for set in self.replicas.values_mut() {
            set.retain(|w| w != name);
        }
        self.replicas.retain(|_, set| set.len() > 1);
        Ok(())
    }

    /// Register a collection under a wrapper.
    pub fn register_collection(
        &mut self,
        wrapper: &str,
        collection: impl Into<String>,
        schema: Schema,
        stats: CollectionStats,
    ) -> Result<()> {
        let collection = collection.into();
        let entry = self
            .wrappers
            .get_mut(wrapper)
            .ok_or_else(|| DiscoError::Catalog(format!("wrapper `{wrapper}` is not registered")))?;
        if entry.collections.contains_key(&collection) {
            return Err(DiscoError::Catalog(format!(
                "collection `{wrapper}.{collection}` is already registered"
            )));
        }
        let name = QualifiedName::new(wrapper, collection.clone());
        entry.collections.insert(
            collection,
            CatalogCollection {
                name,
                schema,
                stats,
            },
        );
        Ok(())
    }

    /// Wrapper entry by name.
    pub fn wrapper(&self, name: &str) -> Option<&WrapperEntry> {
        self.wrappers.get(name)
    }

    /// All wrapper entries, ordered by name.
    pub fn wrappers(&self) -> impl Iterator<Item = &WrapperEntry> {
        self.wrappers.values()
    }

    /// Collection by qualified name.
    pub fn collection(&self, name: &QualifiedName) -> Result<&CatalogCollection> {
        self.wrappers
            .get(&name.wrapper)
            .and_then(|w| w.collections.get(&name.collection))
            .ok_or_else(|| DiscoError::Catalog(format!("unknown collection `{name}`")))
    }

    /// Statistics of a collection.
    pub fn stats(&self, name: &QualifiedName) -> Result<&CollectionStats> {
        self.collection(name).map(|c| &c.stats)
    }

    /// Replace the statistics of a registered collection (statistics
    /// refresh without full re-registration).
    pub fn update_stats(&mut self, name: &QualifiedName, stats: CollectionStats) -> Result<()> {
        let entry = self
            .wrappers
            .get_mut(&name.wrapper)
            .and_then(|w| w.collections.get_mut(&name.collection))
            .ok_or_else(|| DiscoError::Catalog(format!("unknown collection `{name}`")))?;
        entry.stats = stats;
        Ok(())
    }

    /// Declare that `wrappers` all serve identical copies of
    /// `collection`, in preference order (the first is the default
    /// primary; the optimizer may reorder by cost and health). Every
    /// wrapper must already have the collection registered, and all
    /// copies must export the same schema.
    pub fn declare_replicas(&mut self, collection: &str, wrappers: &[&str]) -> Result<()> {
        if wrappers.len() < 2 {
            return Err(DiscoError::Catalog(format!(
                "replica set for `{collection}` needs at least two wrappers"
            )));
        }
        let mut seen: Vec<&str> = Vec::new();
        let mut schema: Option<&Schema> = None;
        for &w in wrappers {
            if seen.contains(&w) {
                return Err(DiscoError::Catalog(format!(
                    "wrapper `{w}` listed twice in the replica set for `{collection}`"
                )));
            }
            seen.push(w);
            let entry = self
                .wrappers
                .get(w)
                .ok_or_else(|| DiscoError::Catalog(format!("wrapper `{w}` is not registered")))?;
            let copy = entry.collections.get(collection).ok_or_else(|| {
                DiscoError::Catalog(format!(
                    "wrapper `{w}` does not serve collection `{collection}`"
                ))
            })?;
            match schema {
                None => schema = Some(&copy.schema),
                Some(first) if *first != copy.schema => {
                    return Err(DiscoError::Catalog(format!(
                        "replica schemas for `{collection}` disagree between \
                         `{}` and `{w}`",
                        wrappers[0]
                    )));
                }
                Some(_) => {}
            }
        }
        self.replicas.insert(
            collection.to_string(),
            wrappers.iter().map(|w| w.to_string()).collect(),
        );
        Ok(())
    }

    /// The declared replica set for a collection (preference order), if
    /// any.
    pub fn replicas(&self, collection: &str) -> Option<&[String]> {
        self.replicas.get(collection).map(|v| v.as_slice())
    }

    /// The other wrappers serving identical copies of `name`'s
    /// collection, in declared order. Empty when the collection is not
    /// replicated (or `name`'s wrapper is not in its declared set).
    pub fn replica_peers(&self, name: &QualifiedName) -> Vec<String> {
        match self.replicas.get(&name.collection) {
            Some(set) if set.contains(&name.wrapper) => set
                .iter()
                .filter(|w| **w != name.wrapper)
                .cloned()
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Resolve a bare collection name to qualified names across wrappers.
    ///
    /// Client queries may name collections unqualified; ambiguity is a
    /// catalog error surfaced to the user — unless the copies form one
    /// declared replica set, in which case the set's preferred wrapper
    /// wins (the optimizer will still consider every replica by cost).
    pub fn resolve(&self, collection: &str) -> Result<QualifiedName> {
        let matches: Vec<&CatalogCollection> = self
            .wrappers
            .values()
            .filter_map(|w| w.collections.get(collection))
            .collect();
        match matches.len() {
            0 => Err(DiscoError::Catalog(format!(
                "unknown collection `{collection}`"
            ))),
            1 => Ok(matches[0].name.clone()),
            n => {
                if let Some(set) = self.replicas.get(collection) {
                    let covered = matches.iter().all(|c| set.contains(&c.name.wrapper));
                    if covered {
                        return Ok(QualifiedName::new(set[0].clone(), collection));
                    }
                }
                Err(DiscoError::Catalog(format!(
                    "collection `{collection}` is ambiguous across {n} wrappers; qualify it"
                )))
            }
        }
    }

    /// Number of registered collections across all wrappers.
    pub fn collection_count(&self) -> usize {
        self.wrappers.values().map(|w| w.collections.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ExtentStats;
    use disco_common::{AttributeDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![AttributeDef::new("id", DataType::Long)])
    }

    fn catalog_with_two_wrappers() -> Catalog {
        let mut c = Catalog::new();
        c.register_wrapper("hr", Capabilities::full()).unwrap();
        c.register_wrapper("files", Capabilities::scan_only())
            .unwrap();
        c.register_collection(
            "hr",
            "Employee",
            schema(),
            CollectionStats::new(ExtentStats::of(10, 8)),
        )
        .unwrap();
        c.register_collection(
            "files",
            "Log",
            schema(),
            CollectionStats::new(ExtentStats::of(5, 8)),
        )
        .unwrap();
        c
    }

    #[test]
    fn register_and_lookup() {
        let c = catalog_with_two_wrappers();
        assert_eq!(c.collection_count(), 2);
        let q = QualifiedName::new("hr", "Employee");
        assert_eq!(c.collection(&q).unwrap().name, q);
        assert_eq!(c.stats(&q).unwrap().extent.count_object, 10);
    }

    #[test]
    fn wrapper_ids_are_unique() {
        let c = catalog_with_two_wrappers();
        assert_ne!(c.wrapper("hr").unwrap().id, c.wrapper("files").unwrap().id);
    }

    #[test]
    fn duplicate_wrapper_rejected() {
        let mut c = catalog_with_two_wrappers();
        let e = c.register_wrapper("hr", Capabilities::full()).unwrap_err();
        assert_eq!(e.kind(), "catalog");
    }

    #[test]
    fn duplicate_collection_rejected() {
        let mut c = catalog_with_two_wrappers();
        let e = c
            .register_collection("hr", "Employee", schema(), CollectionStats::defaults_for())
            .unwrap_err();
        assert_eq!(e.kind(), "catalog");
    }

    #[test]
    fn collection_on_unknown_wrapper_rejected() {
        let mut c = Catalog::new();
        let e = c
            .register_collection("ghost", "X", schema(), CollectionStats::defaults_for())
            .unwrap_err();
        assert_eq!(e.kind(), "catalog");
    }

    #[test]
    fn resolve_unqualified() {
        let c = catalog_with_two_wrappers();
        assert_eq!(
            c.resolve("Log").unwrap(),
            QualifiedName::new("files", "Log")
        );
        assert!(c.resolve("Nothing").is_err());
    }

    #[test]
    fn resolve_ambiguous_fails() {
        let mut c = catalog_with_two_wrappers();
        c.register_collection(
            "files",
            "Employee",
            schema(),
            CollectionStats::defaults_for(),
        )
        .unwrap();
        let e = c.resolve("Employee").unwrap_err();
        assert!(e.message().contains("ambiguous"));
    }

    #[test]
    fn replica_sets_resolve_to_the_preferred_wrapper() {
        let mut c = catalog_with_two_wrappers();
        c.register_collection(
            "files",
            "Employee",
            schema(),
            CollectionStats::defaults_for(),
        )
        .unwrap();
        // Ambiguous until declared as replicas…
        assert!(c.resolve("Employee").is_err());
        c.declare_replicas("Employee", &["hr", "files"]).unwrap();
        assert_eq!(
            c.resolve("Employee").unwrap(),
            QualifiedName::new("hr", "Employee")
        );
        assert_eq!(
            c.replica_peers(&QualifiedName::new("hr", "Employee")),
            vec!["files".to_string()]
        );
        assert_eq!(
            c.replica_peers(&QualifiedName::new("files", "Employee")),
            vec!["hr".to_string()]
        );
        // Non-replicated collections have no peers.
        assert!(c
            .replica_peers(&QualifiedName::new("files", "Log"))
            .is_empty());
    }

    #[test]
    fn replica_declaration_is_validated() {
        let mut c = catalog_with_two_wrappers();
        // files has no Employee copy yet.
        assert!(c.declare_replicas("Employee", &["hr", "files"]).is_err());
        // Singleton and duplicate sets are rejected.
        assert!(c.declare_replicas("Employee", &["hr"]).is_err());
        assert!(c.declare_replicas("Employee", &["hr", "hr"]).is_err());
        // Mismatched schemas are rejected.
        c.register_collection(
            "files",
            "Employee",
            Schema::new(vec![AttributeDef::new("other", DataType::Str)]),
            CollectionStats::defaults_for(),
        )
        .unwrap();
        let e = c
            .declare_replicas("Employee", &["hr", "files"])
            .unwrap_err();
        assert!(e.message().contains("disagree"));
    }

    #[test]
    fn unregister_prunes_replica_sets() {
        let mut c = catalog_with_two_wrappers();
        c.register_collection(
            "files",
            "Employee",
            schema(),
            CollectionStats::defaults_for(),
        )
        .unwrap();
        c.declare_replicas("Employee", &["hr", "files"]).unwrap();
        c.unregister_wrapper("files").unwrap();
        assert!(c.replicas("Employee").is_none());
        assert_eq!(
            c.resolve("Employee").unwrap(),
            QualifiedName::new("hr", "Employee")
        );
    }

    #[test]
    fn unregister_frees_name() {
        let mut c = catalog_with_two_wrappers();
        c.unregister_wrapper("hr").unwrap();
        assert!(c.wrapper("hr").is_none());
        assert!(c.register_wrapper("hr", Capabilities::full()).is_ok());
        assert!(c.unregister_wrapper("nope").is_err());
    }

    #[test]
    fn update_stats_replaces() {
        let mut c = catalog_with_two_wrappers();
        let q = QualifiedName::new("hr", "Employee");
        c.update_stats(&q, CollectionStats::new(ExtentStats::of(999, 8)))
            .unwrap();
        assert_eq!(c.stats(&q).unwrap().extent.count_object, 999);
    }

    #[test]
    fn capabilities() {
        let c = catalog_with_two_wrappers();
        assert!(c
            .wrapper("hr")
            .unwrap()
            .capabilities
            .supports(OperatorKind::Join));
        let f = &c.wrapper("files").unwrap().capabilities;
        assert!(f.supports(OperatorKind::Scan));
        assert!(!f.supports(OperatorKind::Select));
        let sel = Capabilities::of(&[OperatorKind::Select]);
        assert!(sel.supports(OperatorKind::Scan) && sel.supports(OperatorKind::Select));
    }

    #[test]
    fn capability_profiles_round_trip() {
        for p in CapabilityProfile::ALL {
            assert_eq!(CapabilityProfile::parse(p.name()), Some(p));
            assert_eq!(CapabilityProfile::classify(&p.capabilities()), p.name());
        }
        assert_eq!(
            CapabilityProfile::parse("Scan_Only"),
            Some(CapabilityProfile::ScanOnly)
        );
        assert_eq!(CapabilityProfile::parse("nonsense"), None);
        // Ad-hoc sets classify as custom.
        let odd = Capabilities::of(&[OperatorKind::Union]);
        assert_eq!(CapabilityProfile::classify(&odd), "custom");
        // Profile shapes make sense.
        let nj = CapabilityProfile::NoJoin.capabilities();
        assert!(nj.supports(OperatorKind::Aggregate) && !nj.supports(OperatorKind::Join));
        let ac = CapabilityProfile::AggregateCapable.capabilities();
        assert!(ac.supports(OperatorKind::Aggregate) && !ac.supports(OperatorKind::Sort));
    }

    #[test]
    fn capability_changes_bump_the_epoch() {
        let mut c = catalog_with_two_wrappers();
        assert_eq!(c.capability_epoch(), 0);
        c.set_wrapper_capabilities("files", CapabilityProfile::Relational.capabilities())
            .unwrap();
        assert_eq!(c.capability_epoch(), 1);
        assert!(c
            .wrapper("files")
            .unwrap()
            .capabilities
            .supports(OperatorKind::Join));
        // No-op changes don't churn the epoch; unknown wrappers error.
        c.set_wrapper_capabilities("files", CapabilityProfile::Relational.capabilities())
            .unwrap();
        assert_eq!(c.capability_epoch(), 1);
        assert!(c
            .set_wrapper_capabilities("ghost", Capabilities::full())
            .is_err());
    }

    #[test]
    fn cache_regime_defaults_cold_and_scales_misses() {
        let mut c = catalog_with_two_wrappers();
        assert_eq!(c.cache_regime("hr"), CacheRegime::Cold);
        assert_eq!(c.cache_regime("hr").miss_factor(), 1.0);
        c.set_cache_regime("hr", CacheRegime::Warm { hit_rate: 0.75 })
            .unwrap();
        assert_eq!(c.cache_regime("hr").miss_factor(), 0.25);
        // Unknown wrappers read as cold; setting on one errors.
        assert_eq!(c.cache_regime("nope"), CacheRegime::Cold);
        assert!(c.set_cache_regime("nope", CacheRegime::Cold).is_err());
    }

    #[test]
    fn measured_count_page_wins_over_derived() {
        let derived = ExtentStats::of(70_000, 56);
        assert_eq!(derived.count_pages(4_096), 958); // ceil(3 920 000 / 4096)
        let measured = derived.clone().with_count_page(1_000);
        assert_eq!(measured.count_pages(4_096), 1_000);
    }
}

//! Statistics and the mediator catalog (paper §3.2).
//!
//! Wrappers export, per collection, the triplet `(CountObject, TotalSize,
//! ObjectSize)` and per attribute the tuple `(Indexed, CountDistinct, Min,
//! Max)` through the `cardinality extent/attribute` methods of the extended
//! IDL interface. The mediator calls those methods at registration time and
//! stores the results in its catalog; cost formulas then reference them by
//! the Figure 7 name scheme (`C.CountObject`, `C.A.Min`, …).
//!
//! Modules:
//!
//! * [`stats`] — the statistic records and the Figure 7 addressing scheme,
//!   including the default values used when a source exports nothing;
//! * [`histogram`] — optional equi-width / equi-depth histograms, the kind
//!   of ad-hoc statistic the paper's `selectivity(A, V)` wrapper function
//!   can consult (\[IP95, PIHS96\]);
//! * [`selectivity`] — deriving restriction and join selectivities from
//!   statistics, per the generic model of §2.3;
//! * [`catalog`] — the mediator's registry of wrappers, collections,
//!   schemas, capabilities and statistics.

pub mod catalog;
pub mod histogram;
pub mod selectivity;
pub mod stats;

pub use catalog::{
    CacheRegime, Capabilities, CapabilityProfile, Catalog, CatalogCollection, WrapperEntry,
};
pub use histogram::{Histogram, HistogramKind};
pub use selectivity::{join_selectivity, predicate_selectivity, restriction_selectivity};
pub use stats::{AttributeStats, CollectionStats, ExtentStats, StatName};

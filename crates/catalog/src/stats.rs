//! Statistic records and the Figure 7 addressing scheme.
//!
//! The exported statistics mirror the paper exactly:
//!
//! * per extent — `CountObject`, `TotalSize` (bytes), `ObjectSize` (average
//!   bytes per object);
//! * per attribute — `Indexed`, `CountDistinct`, `Min`, `Max`.
//!
//! When a source exports nothing, "standard values are given, as usual"
//! (§6); [`CollectionStats::defaults_for`] supplies those.

use std::collections::BTreeMap;

use disco_common::Value;

use crate::histogram::Histogram;

/// Default extent cardinality assumed for sources that export nothing.
pub const DEFAULT_COUNT_OBJECT: u64 = 1_000;
/// Default average object size in bytes for silent sources.
pub const DEFAULT_OBJECT_SIZE: u64 = 100;
/// Default distinct-value fraction (`CountDistinct = CountObject / 10`).
pub const DEFAULT_DISTINCT_DIVISOR: u64 = 10;

/// The statistic names of the Figure 7 scheme, used both by the cost
/// language resolver and by the catalog's generic lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatName {
    /// `C.CountObject` — cardinality of the extent.
    CountObject,
    /// `C.TotalSize` — extent size in bytes.
    TotalSize,
    /// `C.ObjectSize` — average object size in bytes.
    ObjectSize,
    /// `C.CountPage` — derived page count (`TotalSize / PageSize`); the
    /// paper derives it inside formulas, we expose it for convenience too.
    CountPage,
    /// `C.A.Indexed` — whether an index exists on the attribute.
    Indexed,
    /// `C.A.CountDistinct` — distinct values of the attribute.
    CountDistinct,
    /// `C.A.Min` — minimum value of the attribute.
    Min,
    /// `C.A.Max` — maximum value of the attribute.
    Max,
}

impl StatName {
    /// Parse a Figure 7 statistic name (case-sensitive, as in the paper).
    pub fn parse(s: &str) -> Option<StatName> {
        Some(match s {
            "CountObject" => StatName::CountObject,
            "TotalSize" => StatName::TotalSize,
            "ObjectSize" => StatName::ObjectSize,
            "CountPage" => StatName::CountPage,
            "Indexed" => StatName::Indexed,
            "CountDistinct" => StatName::CountDistinct,
            "Min" => StatName::Min,
            "Max" => StatName::Max,
            _ => return None,
        })
    }

    /// `true` for statistics addressed through an attribute
    /// (`C.A.Stat` rather than `C.Stat`).
    pub fn is_attribute_stat(self) -> bool {
        matches!(
            self,
            StatName::Indexed | StatName::CountDistinct | StatName::Min | StatName::Max
        )
    }
}

/// The `extent` cardinality method's triplet (Figure 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtentStats {
    /// Number of objects in the extent.
    pub count_object: u64,
    /// Size of the extent in bytes.
    pub total_size: u64,
    /// Average size of one object in bytes.
    pub object_size: u64,
    /// Measured page count exported by the source, when its storage
    /// engine can report real pages (disk-backed stores can; simulated
    /// and flat-file sources cannot). `None` falls back to the derived
    /// `TotalSize / PageSize` estimate.
    pub count_page: Option<u64>,
}

impl ExtentStats {
    /// Build from a count and average object size (`total = count * size`).
    pub fn of(count_object: u64, object_size: u64) -> Self {
        ExtentStats {
            count_object,
            total_size: count_object * object_size,
            object_size,
            count_page: None,
        }
    }

    /// Attach a measured page count.
    pub fn with_count_page(mut self, pages: u64) -> Self {
        self.count_page = Some(pages);
        self
    }

    /// Page count for a given page size. A measured count from the
    /// source wins; otherwise derive from `TotalSize`, rounding up.
    pub fn count_pages(&self, page_size: u64) -> u64 {
        if let Some(measured) = self.count_page {
            return measured;
        }
        if self.total_size == 0 {
            0
        } else {
            self.total_size.div_ceil(page_size)
        }
    }
}

/// The `attribute` cardinality method's record (Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeStats {
    /// An index exists on this attribute.
    pub indexed: bool,
    /// Number of distinct values in the extent.
    pub count_distinct: u64,
    /// Minimum value (polymorphic `Constant`).
    pub min: Value,
    /// Maximum value.
    pub max: Value,
    /// Optional richer distribution summary — the kind of statistic an
    /// ad-hoc wrapper `selectivity(A, V)` function would consult.
    pub histogram: Option<Histogram>,
}

impl AttributeStats {
    /// Unindexed attribute with the given distinct count and bounds.
    pub fn new(count_distinct: u64, min: Value, max: Value) -> Self {
        AttributeStats {
            indexed: false,
            count_distinct,
            min,
            max,
            histogram: None,
        }
    }

    /// Same, with an index present.
    pub fn indexed(count_distinct: u64, min: Value, max: Value) -> Self {
        AttributeStats {
            indexed: true,
            count_distinct,
            min,
            max,
            histogram: None,
        }
    }

    /// Attach a histogram.
    pub fn with_histogram(mut self, h: Histogram) -> Self {
        self.histogram = Some(h);
        self
    }

    /// Default attribute statistics for a collection of `count_object`
    /// objects: unindexed, `CountDistinct = CountObject / 10`, unknown
    /// bounds.
    pub fn defaults_for(count_object: u64) -> Self {
        AttributeStats {
            indexed: false,
            count_distinct: (count_object / DEFAULT_DISTINCT_DIVISOR).max(1),
            min: Value::Null,
            max: Value::Null,
            histogram: None,
        }
    }
}

/// All statistics of one collection.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionStats {
    /// Extent triplet.
    pub extent: ExtentStats,
    /// Per-attribute records, keyed by attribute name.
    pub attributes: BTreeMap<String, AttributeStats>,
}

impl CollectionStats {
    /// Build with no attribute statistics yet.
    pub fn new(extent: ExtentStats) -> Self {
        CollectionStats {
            extent,
            attributes: BTreeMap::new(),
        }
    }

    /// The standard values assumed for a source that exports nothing.
    pub fn defaults_for() -> Self {
        CollectionStats::new(ExtentStats::of(DEFAULT_COUNT_OBJECT, DEFAULT_OBJECT_SIZE))
    }

    /// Add statistics for an attribute (builder style).
    pub fn with_attribute(mut self, name: impl Into<String>, stats: AttributeStats) -> Self {
        self.attributes.insert(name.into(), stats);
        self
    }

    /// Attribute statistics, falling back to defaults derived from the
    /// extent when the wrapper did not export this attribute.
    ///
    /// Plans qualify attributes by table alias (`b.k`) while wrappers
    /// export statistics under the bare attribute name (`k`); a qualified
    /// miss retries the suffix after the last dot before defaulting.
    pub fn attribute(&self, name: &str) -> AttributeStats {
        if let Some(a) = self.attributes.get(name) {
            return a.clone();
        }
        if let Some((_, bare)) = name.rsplit_once('.') {
            if let Some(a) = self.attributes.get(bare) {
                return a.clone();
            }
        }
        AttributeStats::defaults_for(self.extent.count_object)
    }

    /// Generic statistic lookup by the Figure 7 scheme.
    ///
    /// Attribute statistics require `attr`; extent statistics ignore it.
    /// `CountPage` is derived with the given `page_size`.
    pub fn stat(&self, stat: StatName, attr: Option<&str>, page_size: u64) -> Value {
        match stat {
            StatName::CountObject => Value::Long(self.extent.count_object as i64),
            StatName::TotalSize => Value::Long(self.extent.total_size as i64),
            StatName::ObjectSize => Value::Long(self.extent.object_size as i64),
            StatName::CountPage => Value::Long(self.extent.count_pages(page_size) as i64),
            StatName::Indexed | StatName::CountDistinct | StatName::Min | StatName::Max => {
                let Some(attr) = attr else {
                    return Value::Null;
                };
                let a = self.attribute(attr);
                match stat {
                    StatName::Indexed => Value::Bool(a.indexed),
                    StatName::CountDistinct => Value::Long(a.count_distinct as i64),
                    StatName::Min => a.min,
                    StatName::Max => a.max,
                    _ => unreachable!(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_name_round_trip() {
        for (s, n) in [
            ("CountObject", StatName::CountObject),
            ("TotalSize", StatName::TotalSize),
            ("ObjectSize", StatName::ObjectSize),
            ("CountPage", StatName::CountPage),
            ("Indexed", StatName::Indexed),
            ("CountDistinct", StatName::CountDistinct),
            ("Min", StatName::Min),
            ("Max", StatName::Max),
        ] {
            assert_eq!(StatName::parse(s), Some(n));
        }
        assert_eq!(StatName::parse("countobject"), None);
    }

    #[test]
    fn extent_page_count_rounds_up() {
        let e = ExtentStats::of(70_000, 56);
        assert_eq!(e.total_size, 3_920_000);
        assert_eq!(e.count_pages(4_096), 958); // ceil(3920000/4096)
        assert_eq!(ExtentStats::of(0, 56).count_pages(4_096), 0);
        assert_eq!(ExtentStats::of(1, 1).count_pages(4_096), 1);
    }

    #[test]
    fn attribute_defaults_derived_from_extent() {
        let s = CollectionStats::new(ExtentStats::of(500, 10));
        let a = s.attribute("anything");
        assert!(!a.indexed);
        assert_eq!(a.count_distinct, 50);
        assert!(a.min.is_null());
    }

    #[test]
    fn defaults_never_zero_distinct() {
        let a = AttributeStats::defaults_for(3);
        assert_eq!(a.count_distinct, 1);
    }

    #[test]
    fn generic_stat_lookup() {
        let s = CollectionStats::new(ExtentStats::of(100, 40)).with_attribute(
            "id",
            AttributeStats::indexed(100, Value::Long(0), Value::Long(99)),
        );
        assert_eq!(s.stat(StatName::CountObject, None, 4096), Value::Long(100));
        assert_eq!(s.stat(StatName::TotalSize, None, 4096), Value::Long(4000));
        assert_eq!(s.stat(StatName::CountPage, None, 4096), Value::Long(1));
        assert_eq!(
            s.stat(StatName::Indexed, Some("id"), 4096),
            Value::Bool(true)
        );
        assert_eq!(s.stat(StatName::Max, Some("id"), 4096), Value::Long(99));
        // Attribute stat without attribute name is Null.
        assert_eq!(s.stat(StatName::Min, None, 4096), Value::Null);
    }

    #[test]
    fn is_attribute_stat_partition() {
        assert!(StatName::Indexed.is_attribute_stat());
        assert!(!StatName::CountPage.is_attribute_stat());
        assert!(!StatName::TotalSize.is_attribute_stat());
    }
}

//! Federation scenario: three heterogeneous sources — an object database,
//! a relational store, and a scan-only flat file — queried together.
//!
//! This is the setting the paper's introduction motivates: each source
//! "performs operations in a unique way", with different capabilities and
//! radically different cost behaviour, and the mediator must plan across
//! them.
//!
//! ```text
//! cargo run --example federation
//! ```

use disco::catalog::Capabilities;
use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::Mediator;
use disco::sources::{CollectionBuilder, CostProfile, FlatFile, PagedStore};
use disco::wrapper::SourceWrapper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Object database: engineering parts, indexed by id.
    let mut parts_db = PagedStore::new("parts", CostProfile::object_store());
    parts_db.add_collection(
        "Part",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("part_id", DataType::Long),
            AttributeDef::new("kind", DataType::Str),
            AttributeDef::new("weight", DataType::Long),
        ]))
        .rows((0..2_000i64).map(|i| {
            vec![
                Value::Long(i),
                Value::Str(["bolt", "nut", "plate", "rod"][(i % 4) as usize].into()),
                Value::Long(5 + i % 95),
            ]
        }))
        .object_size(48)
        .index("part_id"),
    )?;

    // Relational store: suppliers and their offers (cheap I/O, cheap
    // tuple delivery — a different calibration class).
    let mut erp = PagedStore::new("erp", CostProfile::relational());
    erp.add_collection(
        "Supplier",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("sup_id", DataType::Long),
            AttributeDef::new("sup_name", DataType::Str),
            AttributeDef::new("country", DataType::Str),
        ]))
        .rows((0..100i64).map(|i| {
            vec![
                Value::Long(i),
                Value::Str(format!("Supplier {i}")),
                Value::Str(["FR", "DE", "US"][(i % 3) as usize].into()),
            ]
        }))
        .object_size(40)
        .index("sup_id"),
    )?;
    erp.add_collection(
        "Offer",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("offer_part", DataType::Long),
            AttributeDef::new("offer_sup", DataType::Long),
            AttributeDef::new("price", DataType::Long),
        ]))
        .rows((0..5_000i64).map(|i| {
            vec![
                Value::Long(i % 2_000),
                Value::Long(i % 100),
                Value::Long(10 + (i * 7) % 490),
            ]
        }))
        .object_size(24)
        .index("offer_part"),
    )?;

    // Flat file: a parts blacklist someone maintains by hand. Scan-only —
    // the mediator must compensate for selections itself.
    let blacklist = FlatFile::new(
        "docs",
        "Blacklist",
        Schema::new(vec![
            AttributeDef::new("bad_part", DataType::Long),
            AttributeDef::new("reason", DataType::Str),
        ]),
        (0..40i64).map(|i| {
            vec![
                Value::Long(i * 50),
                Value::Str(format!("defect report {i}")),
            ]
        }),
    );

    let mut mediator = Mediator::new();
    mediator.register(Box::new(SourceWrapper::new("parts", parts_db)))?;
    mediator.register(Box::new(SourceWrapper::new("erp", erp)))?;
    mediator.register(Box::new(
        SourceWrapper::new("docs", blacklist).with_capabilities(Capabilities::scan_only()),
    ))?;

    // A three-source query: blacklisted heavy parts with their offers.
    let sql = "SELECT p.part_id, p.kind, o.price, b.reason \
               FROM Part p, Offer o, Blacklist b \
               WHERE p.part_id = o.offer_part AND p.part_id = b.bad_part \
               AND p.weight > 50 ORDER BY o.price";
    println!("query: {sql}\n");
    println!("{}", mediator.explain(sql)?);

    let result = mediator.query(sql)?;
    println!("rows: {}", result.tuples.len());
    for t in result.tuples.iter().take(8) {
        println!("  {t}");
    }
    println!("\nper-wrapper work:");
    for s in &result.trace.submits {
        println!(
            "  {:>6}: {:>8.1} ms, {} tuples shipped, {} pages read",
            s.wrapper, s.stats.elapsed_ms, s.tuples, s.stats.pages_read
        );
    }
    println!(
        "total measured {:.1} ms (wrappers {:.1} + communication {:.1} + mediator {:.1})",
        result.measured_ms,
        result.trace.wrapper_ms,
        result.trace.communication_ms,
        result.trace.mediator_ms
    );
    Ok(())
}

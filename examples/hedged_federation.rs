//! Hedged federation: replicas absorb failures and stragglers, and the
//! cost model prices a sick wrapper out of the plan.
//!
//! `R` is served by two replica wrappers. The primary `ra` keeps
//! missing its predicted deadline, so: (1) each query still answers in
//! full, served by `rb` through hedged failover; (2) the health
//! tracker's wrapper-scope penalty makes the optimizer plan straight to
//! `rb`; (3) once `ra` heals and the penalty decays, the plan flips
//! back — all visible in EXPLAIN ANALYZE.
//!
//! ```text
//! cargo run --example hedged_federation
//! ```

use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::{Mediator, MediatorOptions, ResiliencePolicy};
use disco::sources::{CollectionBuilder, CostProfile, PagedStore};
use disco::transport::{ChannelTransport, FaultKind, FaultPlan, NetProfile, TransportClient};
use disco::wrapper::SourceWrapper;

fn replica_store(name: &str) -> PagedStore {
    let mut s = PagedStore::new(name, CostProfile::relational());
    s.add_collection(
        "R",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ]))
        .rows((0..200i64).map(|i| vec![Value::Long(i), Value::Long(i % 7)])),
    )
    .expect("collection registers");
    s
}

fn planned_wrapper(m: &Mediator, sql: &str) -> String {
    let plan = m.plan(sql).expect("plan");
    plan.physical.collections()[0].wrapper.clone()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two replicas of `R`. For its first twelve submits `ra` replies
    // with a huge (simulated) delay — long past any predicted deadline —
    // then it recovers.
    let mut transport = ChannelTransport::new();
    transport.add_wrapper_with(
        Box::new(SourceWrapper::new("ra", replica_store("ra"))),
        NetProfile::lan(),
        FaultPlan::first_n(FaultKind::Delay(1e6), 12),
    );
    transport.add_wrapper_with(
        Box::new(SourceWrapper::new("rb", replica_store("rb"))),
        NetProfile::lan(),
        FaultPlan::none(),
    );

    let mut mediator = Mediator::new().with_options(MediatorOptions {
        resilience: ResiliencePolicy {
            // Deadlines derived from predicted TotalTime, enforced in
            // simulated time so the delay fault is caught immediately.
            predicted_deadlines: true,
            sim_deadlines: true,
            ..ResiliencePolicy::default()
        },
        ..Default::default()
    });
    mediator.connect(TransportClient::new(Box::new(transport)))?;
    mediator.declare_replicas("R", &["ra", "rb"])?;

    let sql = "SELECT v FROM R WHERE id < 50";
    println!(
        "healthy start: plan targets `{}`",
        planned_wrapper(&mediator, sql)
    );

    // The delayed primary misses its predicted deadline; the declared
    // replica absorbs the submit and the answer stays complete.
    let report = mediator.explain_analyze(sql)?;
    let r = &report.result;
    assert!(!r.is_partial());
    println!(
        "\nfirst query: {} tuples, submit to `{}` served by `{}`",
        r.tuples.len(),
        r.trace.submits[0].wrapper,
        r.trace.submits[0].served_by,
    );
    println!("\n{}", report.render());

    // The recorded failures became a wrapper-scope penalty: the
    // optimizer now plans straight to the replica.
    println!(
        "after the failures: penalty(ra) = {:.2}, plan targets `{}`",
        mediator.health().penalty("ra"),
        planned_wrapper(&mediator, sql),
    );
    assert_eq!(planned_wrapper(&mediator, sql), "rb");

    // `ra` has recovered; queries flow to `rb` while the idle penalty
    // decays one tick per executed query, until `ra` wins the cost tie
    // back.
    let mut queries = 0usize;
    while planned_wrapper(&mediator, sql) != "ra" {
        mediator.query(sql)?;
        queries += 1;
        assert!(queries < 100, "penalty never decayed");
    }
    println!(
        "penalty decayed after {queries} healthy queries: plan is back on `ra` \
         (penalty {:.2})",
        mediator.health().penalty("ra"),
    );
    Ok(())
}

//! Historical cost learning (§4.3.1): the mediator records real
//! subquery costs as query-scope rules and adjusts wrapper parameters.
//!
//! ```text
//! cargo run --example historical_learning
//! ```

use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::{Mediator, MediatorOptions};
use disco::sources::{CollectionBuilder, CostProfile, PagedStore};
use disco::wrapper::SourceWrapper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut store = PagedStore::new("logs", CostProfile::object_store());
    store.add_collection(
        "Event",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("severity", DataType::Long),
        ]))
        .rows((0..5_000i64).map(|i| vec![Value::Long(i), Value::Long(i % 5)]))
        .object_size(56)
        .index("id"),
    )?;

    let mut mediator = Mediator::new().with_options(MediatorOptions {
        record_history: true,
        ..Default::default()
    });
    mediator.register(Box::new(SourceWrapper::new("logs", store)))?;

    let sql = "SELECT id FROM Event WHERE id < 500";

    // First run: the estimate comes from the generic model.
    let first_estimate = mediator.plan(sql)?.estimated.total_time;
    let first = mediator.query(sql)?;
    println!("first run:");
    println!("  estimate  {first_estimate:>10.1} ms");
    println!("  measured  {:>10.1} ms", first.measured_ms);
    println!(
        "  recorded  {} subquery cost(s) into the query scope",
        mediator.history_recorded()
    );

    // Second run of the identical query: the recorded real cost drives
    // the estimate.
    let second_estimate = mediator.plan(sql)?.estimated.total_time;
    println!("\nsecond run of the identical query:");
    println!("  estimate  {second_estimate:>10.1} ms  (from history)");
    let err_before = (first_estimate - first.measured_ms).abs() / first.measured_ms;
    let err_after = (second_estimate - first.measured_ms).abs() / first.measured_ms;
    println!(
        "\nestimate error vs measurement: {:.0}% before, {:.0}% after recording",
        err_before * 100.0,
        err_after * 100.0
    );

    // A similar-but-different query is NOT served by the cache — the
    // limitation §4.3.1 discusses.
    let other = "SELECT id FROM Event WHERE id < 600";
    println!(
        "\nperturbed query estimate: {:.1} ms (cache miss, generic model again)",
        mediator.plan(other)?.estimated.total_time
    );
    Ok(())
}

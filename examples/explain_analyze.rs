//! EXPLAIN ANALYZE over an OO7 federation: the paper's object store
//! joined against a hand-maintained scan-only defect list, with the
//! predicted cost of every plan node printed next to what execution
//! actually measured — plus the phase trace and the process metrics
//! the run left behind.
//!
//! ```text
//! cargo run --example explain_analyze
//! ```

use disco::catalog::Capabilities;
use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::Mediator;
use disco::obs::Tracer;
use disco::oo7::{build_store, Oo7Config};
use disco::sources::FlatFile;
use disco::wrapper::SourceWrapper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The OO7 object store (7 000 atomic parts, 350 composites) ...
    let store = build_store(&Oo7Config::small())?;

    // ... federated with a scan-only flat file of defect reports
    // somebody keeps by hand: every seventh composite part is flagged.
    let defects = FlatFile::new(
        "docs",
        "Defects",
        Schema::new(vec![
            AttributeDef::new("CompId", DataType::Long),
            AttributeDef::new("Note", DataType::Str),
        ]),
        (0..50i64).map(|i| vec![Value::Long(i * 7), Value::Str(format!("defect report {i}"))]),
    );

    let mut mediator = Mediator::new();
    mediator.register(Box::new(SourceWrapper::new("oo7", store)))?;
    mediator.register(Box::new(
        SourceWrapper::new("docs", defects).with_capabilities(Capabilities::scan_only()),
    ))?;

    // Trace the phases of this query.
    let tracer = Tracer::new();
    mediator.set_tracer(tracer.clone());

    // Three-way federated join: recently built atomic parts of defective
    // composite parts, with the defect note.
    let sql = "SELECT a.Id, c.Id AS comp, f.Note \
               FROM AtomicParts a, CompositeParts c, Defects f \
               WHERE a.PartOf = c.Id AND c.Id = f.CompId \
               AND a.BuildDate < 100";
    println!("query: {sql}\n");

    let report = mediator.explain_analyze(sql)?;
    println!("{}", report.render());
    println!("answer rows: {}\n", report.result.tuples.len());

    // Per-phase wall-clock spans (parse, analyze, optimize with its
    // enumeration sub-phases, execute with per-wrapper submits).
    println!("trace:");
    print!("{}", tracer.report().render());

    // The process-wide metrics the run updated, Prometheus-style.
    println!("\nmetrics:");
    print!(
        "{}",
        disco::obs::metrics::global().snapshot().to_prometheus()
    );
    Ok(())
}

//! Custom cost rules: how a wrapper implementor improves the mediator's
//! estimates — the paper's central workflow, shown on the OO7 database.
//!
//! Registers the same OO7 object store twice: once exporting nothing
//! (pure generic/calibration model) and once exporting the Figure 13 Yao
//! rule, then compares both estimates against real (simulated) execution.
//!
//! ```text
//! cargo run --release --example custom_cost_rules
//! ```

use disco::cost::Estimator;
use disco::oo7::{self, Oo7Config};
use disco::sources::DataSource;

use disco::catalog::Catalog;
use disco::cost::RuleRegistry;
use disco::wrapper::{SourceWrapper, Wrapper};

fn register(
    config: &Oo7Config,
    cost_document: &str,
) -> Result<(Catalog, RuleRegistry, disco::sources::PagedStore), Box<dyn std::error::Error>> {
    let store = oo7::build_store(config)?;
    let wrapper = SourceWrapper::new("oo7", store.clone()).with_cost_rules(cost_document);
    let payload = wrapper.registration()?;
    let mut catalog = Catalog::new();
    catalog.register_wrapper("oo7", payload.capabilities.clone())?;
    for (c, s, st) in &payload.collections {
        catalog.register_collection("oo7", c.clone(), s.clone(), st.clone())?;
    }
    let mut registry = RuleRegistry::with_default_model();
    registry.register_document("oo7", &payload.cost_rules)?;
    println!(
        "registered wrapper with {} cost rules ({} bytes of bytecode)",
        payload.rule_count(),
        payload.shipped_bytes()
    );
    Ok((catalog, registry, store))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Oo7Config::small();

    println!("-- wrapper A: exports statistics only (generic model prices everything)");
    let (cat_a, reg_a, store) = register(&config, "")?;

    println!("\n-- wrapper B: additionally exports the Figure 13 Yao rule:");
    let doc = oo7::rules::yao_rules();
    println!("{doc}");
    let (cat_b, reg_b, _) = register(&config, &doc)?;

    println!("\nindex scan on AtomicParts.Id — estimate vs measurement:");
    println!(
        "{:>12} {:>14} {:>16} {:>14}",
        "selectivity", "measured (s)", "generic est (s)", "Yao est (s)"
    );
    for sel in [0.02, 0.1, 0.3, 0.6] {
        let plan = oo7::index_scan_selectivity("oo7", &config, sel);
        let measured = store.execute(&plan)?.stats.elapsed_ms / 1e3;
        let generic = Estimator::new(&reg_a, &cat_a).estimate(&plan)?.total_time / 1e3;
        let yao = Estimator::new(&reg_b, &cat_b).estimate(&plan)?.total_time / 1e3;
        println!("{sel:>12.2} {measured:>14.2} {generic:>16.2} {yao:>14.2}");
    }
    println!(
        "\nThe generic model assumes one page fault per qualifying object; the\n\
         wrapper rule applies Yao's formula and tracks the measurement."
    );
    Ok(())
}

//! Interactive SQL shell over a demo federation.
//!
//! ```text
//! cargo run --example repl
//! disco> SELECT name, salary FROM Employee WHERE id < 5;
//! disco> explain SELECT * FROM Employee WHERE salary > 2500;
//! disco> costs SELECT name FROM Employee WHERE id < 10;
//! disco> \q
//! ```
//!
//! Also scriptable: `echo "SELECT COUNT(*) FROM Employee;" | cargo run --example repl`.

use std::io::{self, BufRead, Write};

use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::Mediator;
use disco::sources::{CollectionBuilder, CostProfile, PagedStore};
use disco::wrapper::SourceWrapper;

fn demo_mediator() -> Result<Mediator, Box<dyn std::error::Error>> {
    let mut hr = PagedStore::new("hr", CostProfile::object_store()).with_histograms(32);
    hr.add_collection(
        "Employee",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("name", DataType::Str),
            AttributeDef::new("salary", DataType::Long),
            AttributeDef::new("dept_id", DataType::Long),
        ]))
        .rows((0..2_000i64).map(|i| {
            vec![
                Value::Long(i),
                Value::Str(format!("employee {i}")),
                Value::Long(1_000 + (i * 53) % 3_000),
                Value::Long(i % 12),
            ]
        }))
        .object_size(64)
        .index("id"),
    )?;
    hr.add_collection(
        "Dept",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("dept_id", DataType::Long),
            AttributeDef::new("dept_name", DataType::Str),
        ]))
        .rows((0..12i64).map(|i| vec![Value::Long(i), Value::Str(format!("department {i}"))]))
        .object_size(32)
        .index("dept_id"),
    )?;
    let mut m = Mediator::new();
    m.register(Box::new(SourceWrapper::new("hr", hr)))?;
    Ok(m)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mediator = demo_mediator()?;
    println!("disco-rs shell — collections: hr.Employee, hr.Dept");
    println!("commands: <sql>;  explain <sql>;  costs <sql>;  \\q\n");

    let stdin = io::stdin();
    let mut out = io::stdout();
    let mut buffer = String::new();
    print!("disco> ");
    out.flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed == "\\q" || trimmed == "quit" || trimmed == "exit" {
            break;
        }
        buffer.push_str(&line);
        buffer.push(' ');
        if !buffer.trim_end().ends_with(';') {
            print!("   ..> ");
            out.flush()?;
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').trim().to_owned();
        buffer.clear();
        run_statement(&mut mediator, &stmt);
        print!("disco> ");
        out.flush()?;
    }
    Ok(())
}

fn run_statement(mediator: &mut Mediator, stmt: &str) {
    let lower = stmt.to_ascii_lowercase();
    let outcome = if let Some(sql) = lower.strip_prefix("explain ").map(|_| &stmt[8..]) {
        mediator.explain(sql).map(|text| println!("{text}"))
    } else if let Some(sql) = lower.strip_prefix("costs ").map(|_| &stmt[6..]) {
        mediator.explain_costs(sql).map(|text| println!("{text}"))
    } else if stmt.is_empty() {
        Ok(())
    } else {
        mediator.query(stmt).map(|result| {
            let names: Vec<&str> = result
                .schema
                .attributes()
                .iter()
                .map(|a| a.name.as_str())
                .collect();
            println!("{}", names.join(" | "));
            for t in result.tuples.iter().take(25) {
                let cells: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join(" | "));
            }
            if result.tuples.len() > 25 {
                println!("… {} more rows", result.tuples.len() - 25);
            }
            println!(
                "({} rows, estimated {:.1} ms, measured {:.1} ms)",
                result.tuples.len(),
                result.estimated.total_time,
                result.measured_ms
            );
        })
    };
    if let Err(e) = outcome {
        println!("error: {e}");
    }
}

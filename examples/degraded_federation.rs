//! Degraded federation: a query survives a wrapper that is down.
//!
//! Three sources sit behind the channel transport's simulated network.
//! The archive wrapper is permanently unavailable; the mediator retries,
//! its circuit breaker opens, and the query still answers — as a partial
//! answer that names exactly the collections it is missing, in the
//! spirit of the paper's mediator "continuing to function when sources
//! are unavailable".
//!
//! ```text
//! cargo run --example degraded_federation
//! ```

use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::{Mediator, MediatorOptions};
use disco::sources::{CollectionBuilder, CostProfile, PagedStore};
use disco::transport::{
    BreakerPolicy, ChannelTransport, FaultKind, FaultPlan, NetProfile, RetryPolicy, TransportClient,
};
use disco::wrapper::SourceWrapper;

fn store(name: &str, coll: &str, tag: &str, rows: i64) -> PagedStore {
    let mut s = PagedStore::new(name, CostProfile::relational());
    s.add_collection(
        coll,
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("label", DataType::Str),
        ]))
        .rows((0..rows).map(|i| vec![Value::Long(i), Value::Str(format!("{tag}{i}"))])),
    )
    .expect("collection registers");
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three wrappers behind simulated LAN links; `archive` never answers
    // a submitted subquery.
    let mut transport = ChannelTransport::new();
    transport.add_wrapper(Box::new(SourceWrapper::new(
        "orders",
        store("orders", "Shipment", "ord", 300),
    )));
    transport.add_wrapper(Box::new(SourceWrapper::new(
        "crm",
        store("crm", "Customer", "cust", 120),
    )));
    transport.add_wrapper_with(
        Box::new(SourceWrapper::new(
            "archive",
            store("archive", "Invoice", "inv", 500),
        )),
        NetProfile::lan(),
        FaultPlan::always(FaultKind::Unavailable),
    );

    let client = TransportClient::new(Box::new(transport))
        .with_retry(RetryPolicy {
            max_attempts: 3,
            deadline_ms: 200,
            backoff_base_ms: 2,
            backoff_factor: 2.0,
        })
        .with_breaker(BreakerPolicy::default());

    let mut mediator = Mediator::new().with_options(MediatorOptions {
        parallel_submits: true,
        ..Default::default()
    });
    // Registration happens over the wire; the archive endpoint is only
    // faulty for submitted subqueries, so all three register.
    mediator.connect(client)?;
    println!(
        "registered {} collections over the wire",
        mediator.catalog().collection_count()
    );

    let sql = "SELECT label FROM Shipment UNION ALL \
               SELECT label FROM Customer UNION ALL \
               SELECT label FROM Invoice";
    let result = mediator.query(sql)?;

    println!("\nquery: {sql}");
    println!("tuples returned: {}", result.tuples.len());
    if result.is_partial() {
        println!("PARTIAL ANSWER — missing collections:");
        for missing in &result.trace.missing {
            println!("  - {missing}");
        }
    }
    for submit in &result.trace.submits {
        println!(
            "submit to {:10} attempts={} {}",
            submit.wrapper,
            submit.attempts,
            if submit.failed { "FAILED" } else { "ok" }
        );
    }
    assert!(result.is_partial());
    assert_eq!(result.tuples.len(), 300 + 120);

    // A second query fails fast: the breaker for `archive` is open, so
    // the dead endpoint is no longer even attempted.
    let again = mediator.query(sql)?;
    println!(
        "\nsecond query: {} tuples, archive breaker: {:?}",
        again.tuples.len(),
        mediator
            .transport()
            .unwrap()
            .breaker_state("archive")
            .unwrap(),
    );
    Ok(())
}

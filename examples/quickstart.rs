//! Quickstart: build a simulated source, wrap it, register it with the
//! mediator, and run federated SQL.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::Mediator;
use disco::sources::{CollectionBuilder, CostProfile, PagedStore};
use disco::wrapper::SourceWrapper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A data source: a small simulated object database with one
    //    collection, an index on `id`, and the ObjectStore cost profile
    //    (25 ms per page fault, 9 ms per delivered object).
    let schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("name", DataType::Str),
        AttributeDef::new("salary", DataType::Long),
    ]);
    let mut store = PagedStore::new("hr", CostProfile::object_store());
    store.add_collection(
        "Employee",
        CollectionBuilder::new(schema)
            .rows((0..1_000i64).map(|i| {
                vec![
                    Value::Long(i),
                    Value::Str(format!("employee {i}")),
                    Value::Long(1_000 + (i * 31) % 2_000),
                ]
            }))
            .object_size(64)
            .index("id"),
    )?;

    // 2. A wrapper: the wrapper implementor exports statistics (derived
    //    from the data) and — optionally — cost rules. Here: one rule
    //    improving the estimate for indexed selections, in the cost
    //    communication language.
    let wrapper = SourceWrapper::new("hr", store).with_cost_rules(
        r#"
        let IO = 25.0;
        let Output = 9.0;
        rule select(Employee, id < $V) {
            CountObject = Employee.CountObject * selectivity("id", $V);
            TotalSize = CountObject * Employee.ObjectSize;
            TimeFirst = Overhead + IO;
            TimeNext = Output;
            TotalTime = Overhead + IO * yao(CountObject, 16) + CountObject * Output;
        }
        "#,
    );

    // 3. The registration phase (Figure 1 of the paper): schema,
    //    capabilities, statistics and compiled cost rules are uploaded.
    let mut mediator = Mediator::new();
    mediator.register(Box::new(wrapper))?;

    // 4. The query phase (Figure 2): declarative SQL in, optimized
    //    decomposition, execution at the source, combined answer out.
    let sql = "SELECT name, salary FROM Employee WHERE id < 10 ORDER BY salary DESC";
    println!("query: {sql}\n");
    println!("{}", mediator.explain(sql)?);

    let result = mediator.query(sql)?;
    println!("rows ({}):", result.tuples.len());
    for t in &result.tuples {
        println!("  {t}");
    }
    println!(
        "\nestimated total time: {:.1} ms",
        result.estimated.total_time
    );
    println!("measured  total time: {:.1} ms", result.measured_ms);
    Ok(())
}

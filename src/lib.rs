//! `disco` — facade crate for the DISCO extensible mediator cost model
//! reproduction.
//!
//! Re-exports the public API of every workspace crate so examples and
//! downstream users need a single dependency. See the README for a
//! quickstart and `DESIGN.md` for the system inventory.

pub use disco_algebra as algebra;
pub use disco_catalog as catalog;
pub use disco_common as common;
pub use disco_core as cost;
pub use disco_costlang as costlang;
pub use disco_mediator as mediator;
pub use disco_obs as obs;
pub use disco_oo7 as oo7;
pub use disco_sources as sources;
pub use disco_transport as transport;
pub use disco_wrapper as wrapper;

//! Differential suite for the pipelined streaming engine: across
//! randomized seeded federations — fault-free, fault-injected, and
//! hedged — a streamed execution must produce answers byte-identical to
//! the two-phase fetch-then-combine engine, degrade to the same partial
//! answers, and fail over to the same replicas. Only the *timing* story
//! may differ between the engines (first rows surface earlier, and an
//! abandoned stream ships fewer bytes), so the comparisons here cover
//! schema, tuples, completeness, missing collections, per-submit
//! failure flags and attempts — never `measured_ms` or byte counts.

use std::collections::BTreeSet;

use disco::common::rng::seeded;
use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::{Mediator, MediatorOptions, QueryResult, ResiliencePolicy};
use disco::sources::{CollectionBuilder, CostProfile, PagedStore};
use disco::transport::{
    ChannelTransport, FaultKind, FaultPlan, NetProfile, RetryPolicy, TransportClient,
};
use disco::wrapper::SourceWrapper;

/// Endpoints and the collection each serves. `R` is replicated (`ra`,
/// `rb`) so the hedging cases have a failover target.
const ENDPOINTS: &[(&str, &str)] = &[("ra", "R"), ("rb", "R"), ("sa", "S"), ("ua", "U")];

/// The query mix: scans, pushed selections, cross-wrapper joins, a
/// union, aggregation, and ORDER BY / LIMIT shapes (LIMIT also flips
/// the optimizer to the `TimeFirst` objective).
const QUERIES: &[&str] = &[
    "SELECT v FROM R",
    "SELECT id, v FROM R WHERE id < 23",
    "SELECT sid FROM S WHERE w = 2",
    "SELECT r.v, s.w FROM R r, S s WHERE r.id = s.sid",
    "SELECT r.id FROM R r, S s WHERE r.id = s.sid AND s.w < 4",
    "SELECT r.v, u.t FROM R r, U u WHERE r.id = u.uid ORDER BY r.v",
    "SELECT v FROM R UNION ALL SELECT w FROM S",
    "SELECT id FROM R WHERE v = 1 UNION SELECT uid FROM U",
    "SELECT v, COUNT(*) AS n FROM R GROUP BY v ORDER BY n DESC",
    "SELECT id, v FROM R ORDER BY id LIMIT 7",
    "SELECT r.v, s.w FROM R r, S s WHERE r.id = s.sid LIMIT 5",
];

fn schema_for(collection: &str) -> Schema {
    let (key, val) = match collection {
        "R" => ("id", "v"),
        "S" => ("sid", "w"),
        _ => ("uid", "t"),
    };
    Schema::new(vec![
        AttributeDef::new(key, DataType::Long),
        AttributeDef::new(val, DataType::Long),
    ])
}

/// Seeded rows — the same seed yields identical data on every replica
/// and in both federations under comparison.
fn rows_for(seed: u64, collection: &str) -> Vec<Vec<Value>> {
    let mut rng = seeded(seed, &format!("stream-eq:{collection}"));
    let count = rng.gen_range(10usize..60);
    let modulus = rng.gen_range(2i64..8);
    (0..count as i64)
        .map(|i| vec![Value::Long(i), Value::Long(i % modulus)])
        .collect()
}

/// The deterministic resilience posture of the chaos harness: simulated
/// deadlines catch delay faults, the straggler timer can never fire
/// inside a test run (hedging is failover-only), and there is no query
/// budget.
fn policy() -> ResiliencePolicy {
    ResiliencePolicy {
        predicted_deadlines: true,
        sim_deadlines: true,
        time_scale: 0.02,
        max_deadline_ms: 50.0,
        min_straggler_wait_ms: 30_000.0,
        ..ResiliencePolicy::default()
    }
}

/// Build one federation over a `ChannelTransport`. Both engines get the
/// same data, profiles, and fault schedules; only `streaming` differs.
fn federation<F: Fn(&str) -> FaultPlan>(seed: u64, faults: F, streaming: bool) -> Mediator {
    let mut t = ChannelTransport::new();
    for (endpoint, collection) in ENDPOINTS {
        let mut s = PagedStore::new(*endpoint, CostProfile::relational());
        s.add_collection(
            *collection,
            CollectionBuilder::new(schema_for(collection)).rows(rows_for(seed, collection)),
        )
        .expect("collection registers");
        t.add_wrapper_with(
            Box::new(SourceWrapper::new(*endpoint, s)),
            NetProfile::lan(),
            faults(endpoint),
        );
    }
    let client = TransportClient::new(Box::new(t)).with_retry(RetryPolicy {
        max_attempts: 2,
        deadline_ms: 200,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
    });
    let mut m = Mediator::new().with_options(MediatorOptions {
        partial_answers: true,
        resilience: policy(),
        streaming,
        streaming_chunk_rows: 7,
        ..MediatorOptions::default()
    });
    m.connect(client).expect("all wrappers register");
    m.declare_replicas("R", &["ra", "rb"]).expect("R replicas");
    m
}

/// Assert everything that must be identical between the engines for one
/// executed query. Timing fields (`measured_ms`, per-submit wall/comm
/// times, byte counts) are deliberately not compared.
fn assert_equivalent(sql: &str, ctx: &str, two_phase: &QueryResult, streamed: &QueryResult) {
    assert_eq!(two_phase.schema, streamed.schema, "{ctx} `{sql}`: schema");
    assert_eq!(two_phase.tuples, streamed.tuples, "{ctx} `{sql}`: answer");
    assert_eq!(
        two_phase.is_partial(),
        streamed.is_partial(),
        "{ctx} `{sql}`: completeness"
    );
    let missing = |r: &QueryResult| -> BTreeSet<String> {
        r.trace.missing.iter().map(|q| q.to_string()).collect()
    };
    assert_eq!(
        missing(two_phase),
        missing(streamed),
        "{ctx} `{sql}`: missing collections"
    );
    assert_eq!(
        two_phase.trace.submits.len(),
        streamed.trace.submits.len(),
        "{ctx} `{sql}`: submit count"
    );
    for (a, b) in two_phase.trace.submits.iter().zip(&streamed.trace.submits) {
        assert_eq!(a.wrapper, b.wrapper, "{ctx} `{sql}`: submit target");
        assert_eq!(a.failed, b.failed, "{ctx} `{sql}`: {} failed", a.wrapper);
        assert_eq!(
            a.attempts, b.attempts,
            "{ctx} `{sql}`: {} attempts",
            a.wrapper
        );
        assert_eq!(
            a.served_by, b.served_by,
            "{ctx} `{sql}`: {} served_by",
            a.wrapper
        );
    }
}

#[test]
fn fault_free_streamed_answers_are_byte_identical() {
    for seed in 0..12u64 {
        let mut two_phase = federation(seed, |_| FaultPlan::none(), false);
        let mut streamed = federation(seed, |_| FaultPlan::none(), true);
        for sql in QUERIES {
            let a = two_phase.query(sql).unwrap();
            let b = streamed.query(sql).unwrap();
            assert!(!a.is_partial(), "seed {seed} `{sql}` degraded faultlessly");
            assert_equivalent(sql, &format!("seed {seed}"), &a, &b);
        }
    }
}

/// Seeded fault schedule: windows of unavailability, huge delays
/// (caught by the simulated deadline) and dropped messages, keyed off
/// per-endpoint submit sequence numbers — identical in both engines
/// because streaming submits consume the same sequence numbers.
fn fault_schedule(seed: u64, endpoint: &str) -> FaultPlan {
    let mut rng = seeded(seed, &format!("stream-eq-fault:{endpoint}"));
    let mut plan = FaultPlan::none();
    for _ in 0..rng.gen_range(0usize..=2) {
        let from = rng.gen_range(0usize..25) as u64;
        let len = rng.gen_range(1usize..=4) as u64;
        let kind = match rng.gen_range(0usize..10) {
            0..=3 => FaultKind::Unavailable,
            4..=7 => FaultKind::Delay(1e6 * (1.0 + rng.gen_f64())),
            _ => FaultKind::Drop,
        };
        plan = plan.window(from, from.saturating_add(len), kind);
    }
    plan
}

#[test]
fn injected_faults_degrade_both_engines_identically() {
    for seed in 0..10u64 {
        let mut two_phase = federation(seed, |e| fault_schedule(seed, e), false);
        let mut streamed = federation(seed, |e| fault_schedule(seed, e), true);
        for (q, sql) in QUERIES.iter().cycle().take(2 * QUERIES.len()).enumerate() {
            let a = two_phase.query(sql).unwrap();
            let b = streamed.query(sql).unwrap();
            assert_equivalent(sql, &format!("seed {seed} query {q}"), &a, &b);
        }
    }
}

#[test]
fn hedged_failover_matches_two_phase() {
    // `ra` (the healthier-looking primary) is always down: every submit
    // of `R` must fail over to `rb` — identically in both engines.
    let faults = |e: &str| {
        if e == "ra" {
            FaultPlan::always(FaultKind::Unavailable)
        } else {
            FaultPlan::none()
        }
    };
    let mut two_phase = federation(99, faults, false);
    let mut streamed = federation(99, faults, true);
    let mut failovers = 0;
    for sql in QUERIES {
        let a = two_phase.query(sql).unwrap();
        let b = streamed.query(sql).unwrap();
        assert!(!a.is_partial(), "`{sql}`: replica must cover the outage");
        assert_equivalent(sql, "hedged", &a, &b);
        failovers += b
            .trace
            .submits
            .iter()
            .filter(|s| !s.failed && !s.served_by.is_empty() && s.served_by != s.wrapper)
            .count();
    }
    assert!(failovers > 0, "no submit ever failed over to `rb`");
}

//! Workspace-level integration tests: the full register→query→answer
//! pipeline through the `disco` facade, checked against straightforward
//! reference computations over the same data.

use disco::catalog::Capabilities;
use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::Mediator;
use disco::sources::{CollectionBuilder, CostProfile, FlatFile, PagedStore};
use disco::wrapper::SourceWrapper;

/// Raw data used both to load the sources and to compute expected
/// answers.
struct Data {
    parts: Vec<(i64, &'static str, i64)>, // id, kind, weight
    offers: Vec<(i64, i64, i64)>,         // part, supplier, price
    notes: Vec<(i64, String)>,            // part, note
}

fn data() -> Data {
    Data {
        parts: (0..300)
            .map(|i| {
                (
                    i,
                    ["bolt", "nut", "rod"][(i % 3) as usize],
                    10 + (i * 13) % 90,
                )
            })
            .collect(),
        offers: (0..900)
            .map(|i| (i % 300, i % 25, 50 + (i * 7) % 450))
            .collect(),
        notes: (0..60).map(|i| (i * 5, format!("note {i}"))).collect(),
    }
}

fn mediator(d: &Data) -> Mediator {
    let mut parts_db = PagedStore::new("pdb", CostProfile::object_store());
    parts_db
        .add_collection(
            "Part",
            CollectionBuilder::new(Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("kind", DataType::Str),
                AttributeDef::new("weight", DataType::Long),
            ]))
            .rows(
                d.parts.iter().map(|(i, k, w)| {
                    vec![Value::Long(*i), Value::Str((*k).into()), Value::Long(*w)]
                }),
            )
            .object_size(48)
            .index("id"),
        )
        .unwrap();

    let mut erp = PagedStore::new("erp", CostProfile::relational());
    erp.add_collection(
        "Offer",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("part", DataType::Long),
            AttributeDef::new("supplier", DataType::Long),
            AttributeDef::new("price", DataType::Long),
        ]))
        .rows(
            d.offers
                .iter()
                .map(|(p, s, pr)| vec![Value::Long(*p), Value::Long(*s), Value::Long(*pr)]),
        )
        .object_size(24)
        .index("part"),
    )
    .unwrap();

    let notes = FlatFile::new(
        "docs",
        "Note",
        Schema::new(vec![
            AttributeDef::new("part_ref", DataType::Long),
            AttributeDef::new("text", DataType::Str),
        ]),
        d.notes
            .iter()
            .map(|(p, t)| vec![Value::Long(*p), Value::Str(t.clone())]),
    );

    let mut m = Mediator::new();
    m.register(Box::new(SourceWrapper::new("pdb", parts_db)))
        .unwrap();
    m.register(Box::new(SourceWrapper::new("erp", erp)))
        .unwrap();
    m.register(Box::new(
        SourceWrapper::new("docs", notes).with_capabilities(Capabilities::scan_only()),
    ))
    .unwrap();
    m
}

#[test]
fn selection_matches_reference() {
    let d = data();
    let mut m = mediator(&d);
    let r = m
        .query("SELECT id, weight FROM Part WHERE weight >= 80 AND kind = 'bolt'")
        .unwrap();
    let expected: Vec<(i64, i64)> = d
        .parts
        .iter()
        .filter(|(_, k, w)| *w >= 80 && *k == "bolt")
        .map(|(i, _, w)| (*i, *w))
        .collect();
    assert_eq!(r.tuples.len(), expected.len());
    for t in &r.tuples {
        let id = t.get(0).unwrap().as_i64().unwrap();
        let w = t.get(1).unwrap().as_i64().unwrap();
        assert!(expected.contains(&(id, w)));
    }
}

#[test]
fn two_way_join_matches_reference() {
    let d = data();
    let mut m = mediator(&d);
    let r = m
        .query(
            "SELECT p.id, o.price FROM Part p, Offer o \
             WHERE p.id = o.part AND p.weight > 90 AND o.price < 100",
        )
        .unwrap();
    let mut expected = 0usize;
    for (pid, _, w) in &d.parts {
        if *w <= 90 {
            continue;
        }
        for (op, _, price) in &d.offers {
            if op == pid && *price < 100 {
                expected += 1;
            }
        }
    }
    assert_eq!(r.tuples.len(), expected);
}

#[test]
fn three_way_cross_wrapper_join() {
    let d = data();
    let mut m = mediator(&d);
    let r = m
        .query(
            "SELECT p.id, o.price, n.text FROM Part p, Offer o, Note n \
             WHERE p.id = o.part AND p.id = n.part_ref AND o.price >= 400",
        )
        .unwrap();
    let mut expected = 0usize;
    for (pid, _, _) in &d.parts {
        let has_note = d.notes.iter().any(|(np, _)| np == pid);
        if !has_note {
            continue;
        }
        for (op, _, price) in &d.offers {
            if op == pid && *price >= 400 {
                expected += 1;
            }
        }
    }
    assert_eq!(r.tuples.len(), expected);
    assert!(expected > 0, "test data produced an empty answer");
    // All three wrappers were contacted.
    assert_eq!(r.trace.submits.len(), 3);
}

#[test]
fn aggregation_matches_reference() {
    let d = data();
    let mut m = mediator(&d);
    let r = m
        .query(
            "SELECT kind, COUNT(*) AS n, MIN(weight) AS lightest \
             FROM Part GROUP BY kind ORDER BY kind",
        )
        .unwrap();
    assert_eq!(r.tuples.len(), 3);
    for t in &r.tuples {
        let kind = t.get(0).unwrap().as_str().unwrap();
        let n = t.get(1).unwrap().as_i64().unwrap();
        let lightest = t.get(2).unwrap().as_i64().unwrap();
        let expect_n = d.parts.iter().filter(|(_, k, _)| *k == kind).count() as i64;
        let expect_min = d
            .parts
            .iter()
            .filter(|(_, k, _)| *k == kind)
            .map(|(_, _, w)| *w)
            .min()
            .unwrap();
        assert_eq!(n, expect_n, "{kind}");
        assert_eq!(lightest, expect_min, "{kind}");
    }
    // kinds sorted ascending.
    let kinds: Vec<&str> = r
        .tuples
        .iter()
        .map(|t| t.get(0).unwrap().as_str().unwrap())
        .collect();
    assert_eq!(kinds, vec!["bolt", "nut", "rod"]);
}

#[test]
fn estimates_track_measurements_with_stats() {
    let d = data();
    let mut m = mediator(&d);
    let sql = "SELECT id FROM Part WHERE id < 30";
    let plan = m.plan(sql).unwrap();
    let result = m.query(sql).unwrap();
    assert_eq!(result.tuples.len(), 30);
    // Cardinality estimate is exact with full statistics and uniform ids.
    assert!(
        (plan.estimated.count_object - 30.0).abs() < 1.5,
        "{}",
        plan.estimated.count_object
    );
    // Time estimate within 3x (generic model, no wrapper rules).
    let ratio = plan.estimated.total_time / result.measured_ms;
    assert!(
        ratio > 0.3 && ratio < 3.0,
        "estimate/measured ratio {ratio}"
    );
}

#[test]
fn distinct_ordering_and_expressions_compose() {
    let d = data();
    let mut m = mediator(&d);
    let r = m
        .query("SELECT DISTINCT kind FROM Part WHERE weight > 95 ORDER BY kind DESC")
        .unwrap();
    let mut expected: Vec<&str> = d
        .parts
        .iter()
        .filter(|(_, _, w)| *w > 95)
        .map(|(_, k, _)| *k)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    expected.reverse();
    let got: Vec<&str> = r
        .tuples
        .iter()
        .map(|t| t.get(0).unwrap().as_str().unwrap())
        .collect();
    assert_eq!(got, expected);
}

// Gated: requires the `proptest` cargo feature (and the proptest
// dev-dependency, removed so offline builds succeed — see Cargo.toml).
#![cfg(feature = "proptest")]

//! Workspace-level property tests: the user-facing text interfaces never
//! panic, and query answers agree with reference filtering under random
//! predicates.

use proptest::prelude::*;

use disco::algebra::CompareOp;
use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::costlang::parse_document;
use disco::mediator::{parse_query, Mediator};
use disco::sources::{CollectionBuilder, CostProfile, PagedStore};
use disco::wrapper::SourceWrapper;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The cost-language parser returns errors, never panics, on
    /// arbitrary input.
    #[test]
    fn cost_parser_never_panics(src in ".{0,200}") {
        let _ = parse_document(&src);
    }

    /// Same for the SQL parser.
    #[test]
    fn sql_parser_never_panics(src in ".{0,200}") {
        let _ = parse_query(&src);
    }

    /// Near-miss documents built from language fragments also never panic.
    #[test]
    fn cost_parser_handles_fragment_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "rule", "select", "($C", ", $A = $V)", "{", "}", "TotalTime",
                "=", "1", ";", "interface", "cardinality", "extent", "let",
                "min(", ")", "$C.TotalSize", "/", "\"str\"", "77",
            ]),
            0..24,
        )
    ) {
        let src = parts.join(" ");
        let _ = parse_document(&src);
    }
}

fn tiny_mediator(rows: &[(i64, i64)]) -> Mediator {
    let mut store = PagedStore::new("s", CostProfile::relational());
    store
        .add_collection(
            "T",
            CollectionBuilder::new(Schema::new(vec![
                AttributeDef::new("a", DataType::Long),
                AttributeDef::new("b", DataType::Long),
            ]))
            .rows(
                rows.iter()
                    .map(|(a, b)| vec![Value::Long(*a), Value::Long(*b)]),
            )
            .object_size(16)
            .index("a"),
        )
        .unwrap();
    let mut m = Mediator::new();
    m.register(Box::new(SourceWrapper::new("s", store)))
        .unwrap();
    m
}

fn op_sql(op: CompareOp) -> &'static str {
    op.symbol()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mediator answers equal reference filtering for random data and
    /// random single-attribute predicates, through the whole pipeline
    /// (pushdown, index or scan access, execution).
    #[test]
    fn selection_agrees_with_reference(
        rows in prop::collection::vec((0i64..50, -20i64..20), 1..120),
        use_a in any::<bool>(),
        op_idx in 0usize..6,
        value in -25i64..60,
    ) {
        let ops = [
            CompareOp::Eq, CompareOp::Ne, CompareOp::Lt,
            CompareOp::Le, CompareOp::Gt, CompareOp::Ge,
        ];
        let op = ops[op_idx];
        let col = if use_a { "a" } else { "b" };
        let mut m = tiny_mediator(&rows);
        let sql = format!("SELECT a, b FROM T WHERE {col} {} {value}", op_sql(op));
        let result = m.query(&sql).unwrap();
        let expected: Vec<(i64, i64)> = rows
            .iter()
            .filter(|(a, b)| {
                let lhs = if use_a { *a } else { *b };
                op.eval(&Value::Long(lhs), &Value::Long(value))
            })
            .copied()
            .collect();
        prop_assert_eq!(result.tuples.len(), expected.len());
        // Multiset equality.
        let mut got: Vec<(i64, i64)> = result
            .tuples
            .iter()
            .map(|t| {
                (
                    t.get(0).unwrap().as_i64().unwrap(),
                    t.get(1).unwrap().as_i64().unwrap(),
                )
            })
            .collect();
        let mut want = expected;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Self-joins agree with the quadratic reference.
    #[test]
    fn join_agrees_with_reference(
        rows in prop::collection::vec((0i64..12, -5i64..5), 1..40),
    ) {
        let mut m = tiny_mediator(&rows);
        let result = m
            .query("SELECT x.a FROM T x, T y WHERE x.a = y.b")
            .unwrap();
        let expected = rows
            .iter()
            .flat_map(|(a, _)| rows.iter().filter(move |(_, b2)| a == b2))
            .count();
        prop_assert_eq!(result.tuples.len(), expected);
    }
}

//! Randomized differential suite: a disco-store-backed collection must
//! return *byte-identical* answers to the in-memory simulated source,
//! for the same seed, across sequential scans, index point lookups,
//! index range scans, non-indexed (scan + filter) selects, and
//! projections over selects.
//!
//! Both engines are built from identical rows, layout knobs, and
//! placement seed, so they hold the same objects on the same modelled
//! pages. Answers are compared through the store's own record codec —
//! tuple-for-tuple byte equality, not just `PartialEq` — and, cold, the
//! two pagers must report the *same fault count*: the disk engine
//! replicates the simulated placement number for number.

use disco_algebra::{CompareOp, LogicalPlan, PlanBuilder};
use disco_common::rng::{seeded, StdRng};
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
use disco_sources::{CollectionBuilder, CostProfile, DataSource, PagedStore, StoreSource};
use disco_store::codec::encode_tuple;
use disco_store::{DiskCollectionBuilder, DiskStoreBuilder};

const SEEDS: u64 = 15;

fn schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("grp", DataType::Long),
        AttributeDef::new("name", DataType::Str),
        AttributeDef::new("score", DataType::Double),
    ])
}

/// Random rows: unique uniform `id`, low-cardinality `grp`, strings of
/// varying length, doubles (some negative), occasional NULL score.
fn rows(rng: &mut StdRng, n: usize) -> Vec<Vec<Value>> {
    (0..n as i64)
        .map(|i| {
            let score = if rng.gen_range(0..10usize) == 0 {
                Value::Null
            } else {
                Value::Double(rng.gen_f64() * 200.0 - 100.0)
            };
            vec![
                Value::Long(i),
                Value::Long(rng.gen_range(0..7i64)),
                Value::Str(format!(
                    "row-{i:04}-{}",
                    "x".repeat(rng.gen_range(0..9usize))
                )),
                score,
            ]
        })
        .collect()
}

struct Pair {
    sim: PagedStore,
    disk: StoreSource,
    n: usize,
}

/// Build the simulated and disk-backed twins from one seed. Both use
/// store name `s`, collection `T`, and the same placement seed, so the
/// object→page map is identical.
fn build_pair(seed: u64) -> Pair {
    let mut rng = seeded(seed, "store-equivalence");
    let n = rng.gen_range(60..400usize);
    let clustered = seed.is_multiple_of(3);
    let data = rows(&mut rng, n);
    // The modelled object size must cover the largest encoded record
    // (plus its 4-byte slot entry), or the physical page fills before
    // the modelled per-page count and the build rejects the layout.
    let encoded_max = data
        .iter()
        .map(|r| encode_tuple(&disco_common::Tuple::new(r.clone())).len() as u64 + 4)
        .max()
        .unwrap_or(0);
    let object_size = rng.gen_range(24..120u64).max(encoded_max);

    let mut sim_builder = CollectionBuilder::new(schema())
        .rows(data.clone())
        .object_size(object_size)
        .index("id");
    let mut disk_builder = DiskCollectionBuilder::new(schema())
        .rows(data)
        .object_size(object_size)
        .index("id");
    if clustered {
        sim_builder = sim_builder.cluster_on("id");
        disk_builder = disk_builder.cluster_on("id");
    }

    let mut sim = PagedStore::new("s", CostProfile::object_store()).with_seed(seed);
    sim.add_collection("T", sim_builder).unwrap();
    let disk = DiskStoreBuilder::new("s")
        .seed(seed)
        .collection("T", disk_builder)
        .build()
        .unwrap();
    Pair {
        sim,
        disk: StoreSource::new(disk, CostProfile::object_store()),
        n,
    }
}

fn scan() -> PlanBuilder {
    PlanBuilder::scan(QualifiedName::new("s", "T"), schema())
}

/// The query mix for one seeded pair: full scan, every comparison the
/// index serves (point lookups and range scans, including empty and
/// total ranges), the `Ne` fallback, non-indexed selects on both a Long
/// and a Str column, and a projection over an index range.
fn queries(rng: &mut StdRng, n: usize) -> Vec<(String, LogicalPlan)> {
    let mut qs: Vec<(String, LogicalPlan)> = vec![("scan".into(), scan().build())];
    for op in [
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ] {
        // In-domain, below-domain, and above-domain bounds.
        let bounds = [
            rng.gen_range(0..n as i64),
            -1,
            n as i64 + rng.gen_range(0..5i64),
        ];
        for v in bounds {
            qs.push((
                format!("id {} {v}", op.symbol()),
                scan().select("id", op, v).build(),
            ));
        }
    }
    qs.push((
        "grp = 3 (unindexed)".into(),
        scan().select("grp", CompareOp::Eq, 3i64).build(),
    ));
    qs.push((
        "name >= row-0100 (unindexed)".into(),
        scan()
            .select("name", CompareOp::Ge, Value::Str("row-0100".into()))
            .build(),
    ));
    let hi = rng.gen_range(1..n as i64);
    qs.push((
        format!("project(id<{hi})"),
        scan()
            .select("id", CompareOp::Lt, hi)
            .project_attrs(&["name", "score"])
            .build(),
    ));
    qs
}

fn tuple_bytes(tuples: &[disco_common::Tuple]) -> Vec<Vec<u8>> {
    tuples.iter().map(encode_tuple).collect()
}

#[test]
fn disk_engine_answers_are_byte_identical_to_the_simulated_engine() {
    for seed in 0..SEEDS {
        let pair = build_pair(seed);
        let mut rng = seeded(seed, "store-equivalence-queries");
        for (label, plan) in queries(&mut rng, pair.n) {
            pair.disk.clear_cache().unwrap();
            let sim = pair.sim.execute(&plan).unwrap();
            let disk = pair.disk.execute(&plan).unwrap();
            assert_eq!(
                sim.schema, disk.schema,
                "seed {seed}, query `{label}`: schemas diverge"
            );
            assert_eq!(
                tuple_bytes(&sim.tuples),
                tuple_bytes(&disk.tuples),
                "seed {seed}, query `{label}`: answers diverge"
            );
            // Identical placement, cold pools on both sides: the real
            // engine faults exactly the pages the simulation modelled.
            assert_eq!(
                sim.stats.pages_read, disk.stats.pages_read,
                "seed {seed}, query `{label}`: fault counts diverge"
            );
        }
    }
}

#[test]
fn warm_disk_answers_match_cold_answers() {
    let pair = build_pair(1);
    let plan = scan().select("id", CompareOp::Le, 50i64).build();
    pair.disk.clear_cache().unwrap();
    let cold = pair.disk.execute(&plan).unwrap();
    let warm = pair.disk.execute(&plan).unwrap();
    assert_eq!(tuple_bytes(&cold.tuples), tuple_bytes(&warm.tuples));
    assert!(cold.stats.pages_read > 0);
    assert_eq!(warm.stats.pages_read, 0, "everything resident second time");
    assert!(warm.stats.buffer_hits > 0);
}

//! Workspace-level serving-layer tests: concurrent sessions through one
//! [`SharedMediator`] must produce answers byte-identical to a private
//! single-session mediator over the same sources, whether the plan came
//! from the cache (decision replay) or a fresh optimization.

use std::sync::Arc;

use disco::common::{AttributeDef, DataType, Schema, Value};
use disco::mediator::{Mediator, MediatorOptions, PlanSource, SharedMediator};
use disco::sources::{CollectionBuilder, CostProfile, PagedStore};
use disco::wrapper::SourceWrapper;

fn mediator(record_history: bool) -> Mediator {
    let mut parts_db = PagedStore::new("pdb", CostProfile::object_store());
    parts_db
        .add_collection(
            "Part",
            CollectionBuilder::new(Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("kind", DataType::Str),
                AttributeDef::new("weight", DataType::Long),
            ]))
            .rows((0..300).map(|i| {
                vec![
                    Value::Long(i),
                    Value::Str(["bolt", "nut", "rod"][(i % 3) as usize].into()),
                    Value::Long(10 + (i * 13) % 90),
                ]
            }))
            .object_size(48)
            .index("id"),
        )
        .unwrap();
    let mut erp = PagedStore::new("erp", CostProfile::relational());
    erp.add_collection(
        "Offer",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("part", DataType::Long),
            AttributeDef::new("supplier", DataType::Long),
            AttributeDef::new("price", DataType::Long),
        ]))
        .rows((0..900).map(|i| {
            vec![
                Value::Long(i % 300),
                Value::Long(i % 25),
                Value::Long(50 + (i * 7) % 450),
            ]
        }))
        .object_size(24)
        .index("part"),
    )
    .unwrap();
    let mut m = Mediator::new().with_options(MediatorOptions {
        record_history,
        ..MediatorOptions::default()
    });
    m.register(Box::new(SourceWrapper::new("pdb", parts_db)))
        .unwrap();
    m.register(Box::new(SourceWrapper::new("erp", erp)))
        .unwrap();
    m
}

fn rendered(tuples: &[disco::common::Tuple]) -> String {
    tuples
        .iter()
        .map(|t| format!("{t:?}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Four concurrent sessions replaying one cached plan must all answer
/// byte-identically to a private single-session mediator.
#[test]
fn cross_session_cached_answers_are_byte_identical() {
    let queries = [
        "SELECT id, weight FROM Part WHERE weight >= 80 ORDER BY id",
        "SELECT p.id, o.price FROM Part p, Offer o \
         WHERE p.id = o.part AND o.price < 100",
    ];
    for sql in queries {
        let reference = rendered(&mediator(false).query(sql).unwrap().tuples);
        let shared = Arc::new(SharedMediator::new(mediator(false)));
        // Populate the cache once, then fan out.
        let first = shared.query(sql).unwrap();
        assert_eq!(first.source, PlanSource::CacheMiss, "{sql}");
        assert_eq!(rendered(&first.result.tuples), reference, "{sql}");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let served = shared.query(sql).unwrap();
                    (served.source, rendered(&served.result.tuples))
                })
            })
            .collect();
        for h in handles {
            let (source, answer) = h.join().unwrap();
            assert_eq!(source, PlanSource::CacheHit, "{sql}");
            assert_eq!(answer, reference, "{sql}");
        }
    }
}

/// Replaying a cached plan with different constants must answer exactly
/// like a fresh single-session optimization of that query.
#[test]
fn replayed_constants_answer_like_fresh_optimization() {
    let shared = SharedMediator::new(mediator(false));
    let (_, source) = shared
        .plan("SELECT id FROM Part WHERE weight > 40 AND id < 100")
        .unwrap();
    assert_eq!(source, PlanSource::CacheMiss);
    for (lo, hi) in [(20, 250), (85, 7), (0, 300)] {
        let sql = format!("SELECT id FROM Part WHERE weight > {lo} AND id < {hi}");
        let served = shared.query(&sql).unwrap();
        assert_eq!(served.source, PlanSource::CacheHit, "{sql}");
        let reference = rendered(&mediator(false).query(&sql).unwrap().tuples);
        assert_eq!(rendered(&served.result.tuples), reference, "{sql}");
    }
}

/// Historical feedback invalidates the cached decision, and the
/// re-optimized plan still answers byte-identically.
#[test]
fn history_invalidation_preserves_answers() {
    let shared = SharedMediator::new(mediator(true));
    let sql = "SELECT p.id, o.price FROM Part p, Offer o WHERE p.id = o.part";
    let reference = rendered(&mediator(false).query(sql).unwrap().tuples);
    let first = shared.query(sql).unwrap();
    assert_eq!(first.source, PlanSource::CacheMiss);
    // Executing recorded §4.3 history, so the next plan re-optimizes.
    let second = shared.query(sql).unwrap();
    assert_eq!(second.source, PlanSource::CacheMiss);
    assert_eq!(rendered(&first.result.tuples), reference);
    assert_eq!(rendered(&second.result.tuples), reference);
    assert!(shared.cache_stats().invalidations >= 1);
}
